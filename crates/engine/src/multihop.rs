//! The multi-hop per-station backend: per-neighborhood slot resolution
//! over an interference [`Topology`].
//!
//! The single-channel backends resolve one global [`SlotTruth`] per slot.
//! Here each node perceives its **own** channel: the transmitter count
//! over its closed neighborhood `N[i]`, fed through the same shared
//! arithmetic ([`jle_radio::topology::resolve`]) as the global rule, plus
//! the slot's (global) jam flag. On [`Topology::Complete`] every closed
//! neighborhood is the whole network, so the local rule degenerates to the
//! global one and this backend is **bit-identical** to the single-channel
//! engines — the refactor's contract, locked by the golden fixtures in
//! `tests/topology_identity.rs`.
//!
//! # Message delivery
//!
//! The paper's model says a `Single` delivers the message ("exactly one
//! station transmits (all listeners receive the message)"). Multi-hop
//! election protocols need that payload, so a station that perceives a
//! clean local `Single` while listening also receives a [`MeshMessage`]
//! naming the transmitter and carrying its 64-bit payload. Transmitters
//! never hear (half-duplex); the existing single-channel protocols ignore
//! messages entirely through the [`StdMesh`] adapter.
//!
//! # Determinism and sharding
//!
//! Two RNG disciplines ([`RngDiscipline`]):
//!
//! * `Shared` — per-station draws from the engine's sequential stream in
//!   station-index order, exactly like [`crate::ExactStations`];
//! * `Counter` — per-station counter-based streams
//!   ([`crate::streams::StationRng`]), exactly like
//!   [`crate::FastExactStations`].
//!
//! Stations are stored component-major (the identity permutation on
//! `Complete` and on connected graphs), so connected components occupy
//! contiguous storage ranges. Above [`MultihopStations::DEFAULT_PAR_THRESHOLD`]
//! stations, the feedback phase (and, under `Counter`, the action phase)
//! shards those ranges across `rayon` workers via `split_at_mut`; chunk
//! aggregates fold in chunk order, so the parallel path is bit-identical
//! to the serial one (unit-tested). The jam decision is global — the
//! adversary hits every neighborhood at once — which is what keeps the
//! `Complete` case exactly the single-channel model.

use crate::config::{SimConfig, StopRule};
use crate::core::{SimCore, SlotActions, StationSet};
use crate::protocol::{Action, Protocol, Status};
use crate::report::{ClusterOutcome, MultihopReport, RunReport};
use crate::streams::{station_key, StationRng};
use jle_adversary::AdversarySpec;
use jle_radio::topology::resolve;
use jle_radio::{cd, CdModel, Graph, SlotTruth, Topology};
use rand::rngs::SmallRng;
use rand::RngCore;

/// A message delivered to a listener that perceived a clean local
/// `Single`: the lone transmitter in its closed neighborhood, plus that
/// transmitter's declared payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshMessage {
    /// Station id of the transmitter.
    pub from: u64,
    /// The transmitter's payload for this slot ([`MeshProtocol::payload`]).
    pub payload: u64,
}

/// What a mesh station currently believes about the election, polled once
/// per slot (only when a cluster assignment is attached) and at
/// finalization to fill the [`MultihopReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStatus {
    /// The station this one believes leads its own cluster.
    pub cluster_leader: Option<u64>,
    /// The station this one believes leads the whole network.
    pub network_leader: Option<u64>,
    /// Whether this station claims its own cluster's leadership.
    pub is_cluster_leader: bool,
}

/// A per-station protocol for multi-hop runs: [`Protocol`] plus message
/// payloads, message reception, and election beliefs.
///
/// The engine calls [`MeshProtocol::act`] for every running station (under
/// the active discipline's RNG), queries [`MeshProtocol::payload`]
/// immediately when the action is `Transmit`, resolves every node's local
/// channel, and calls [`MeshProtocol::feedback`] with the station-specific
/// observation plus the received message, if any.
pub trait MeshProtocol: Send {
    /// Decide the action for the slot about to be played.
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action;

    /// The 64-bit payload carried by this slot's transmission. Queried
    /// right after [`MeshProtocol::act`] returns [`Action::Transmit`].
    fn payload(&self) -> u64 {
        0
    }

    /// Receive the end-of-slot observation for this node's *local*
    /// channel, plus the delivered message when the station listened into
    /// a clean local `Single`.
    fn feedback(
        &mut self,
        slot: u64,
        transmitted: bool,
        obs: jle_radio::Observation,
        heard: Option<&MeshMessage>,
    );

    /// Current election status (mirrors [`Protocol::status`]).
    fn status(&self) -> Status;

    /// Whether the station finished without terminating (mirrors
    /// [`Protocol::finished`]).
    fn finished(&self) -> bool {
        false
    }

    /// Optional protocol-internal scalar for traces.
    fn estimate(&self) -> Option<f64> {
        None
    }

    /// Current state as a `(label, scalar)` pair for replay timelines;
    /// mirrors [`Protocol::state_probe`].
    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        None
    }

    /// Election beliefs for convergence tracking and the report.
    fn mesh_status(&self) -> MeshStatus {
        MeshStatus::default()
    }
}

/// Adapter running any single-channel [`Protocol`] as a [`MeshProtocol`]
/// that ignores messages. This is how the complete-graph identity tests
/// drive the existing protocols through the multi-hop backend.
pub struct StdMesh {
    inner: Box<dyn Protocol>,
}

impl StdMesh {
    /// Wrap a single-channel protocol.
    pub fn new(inner: Box<dyn Protocol>) -> Self {
        StdMesh { inner }
    }
}

impl MeshProtocol for StdMesh {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        self.inner.act(slot, rng)
    }

    fn feedback(
        &mut self,
        slot: u64,
        transmitted: bool,
        obs: jle_radio::Observation,
        _heard: Option<&MeshMessage>,
    ) {
        self.inner.feedback(slot, transmitted, obs);
    }

    fn status(&self) -> Status {
        self.inner.status()
    }

    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        self.inner.state_probe()
    }
}

/// Which RNG stream discipline the action phase uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RngDiscipline {
    /// The engine's sequential stream, drawn in station-index order —
    /// bit-identical to [`crate::ExactStations`] on `Complete`.
    #[default]
    Shared,
    /// Counter-based per-station streams — bit-identical to
    /// [`crate::FastExactStations`] on `Complete` (for protocols honoring
    /// the wake-hint draw contract).
    Counter,
}

/// Per-slot action codes, indexed by storage position.
const ACT_LISTEN: u8 = 0;
const ACT_TRANSMIT: u8 = 1;
const ACT_SLEEP: u8 = 2;
const ACT_TERM: u8 = 3;

/// Cluster-election tracking attached via
/// [`MultihopStations::with_clusters`].
struct ClusterTracking<'c> {
    assign: &'c [u32],
    /// Member ids per cluster, in id order.
    members: Vec<Vec<u32>>,
    resolved_at: Vec<Option<u64>>,
    unresolved: usize,
    converged_at: Option<u64>,
    network_leader: Option<u64>,
}

/// The multi-hop [`StationSet`] backend: per-neighborhood truth, message
/// delivery, and per-component sharding over a validated [`Topology`].
pub struct MultihopStations<'t> {
    /// Station boxes in component-major storage order.
    stations: Vec<Box<dyn MeshProtocol>>,
    /// Storage position → station id.
    order: Vec<u32>,
    /// Station id → storage position.
    pos: Vec<u32>,
    /// Shard boundaries in storage (component ranges; `[0, n]` on
    /// `Complete`), ascending, first 0, last n.
    bounds: Vec<usize>,
    /// Action code per storage position.
    acts: Vec<u8>,
    /// Payload per storage position (valid where `acts == ACT_TRANSMIT`).
    payloads: Vec<u64>,
    /// Counter-stream key per station id.
    keys: Vec<u64>,
    topology: &'t Topology,
    discipline: RngDiscipline,
    par_threshold: usize,
    clusters: Option<ClusterTracking<'t>>,
    /// Lone transmitter of the last slot (for complete-path delivery).
    last_lone: Option<u64>,
    cross_cluster: u64,
}

impl<'t> MultihopStations<'t> {
    /// Station count at which the per-component phases shard across
    /// threads. Lower than the fast backend's threshold because a
    /// multi-hop slot does O(degree) work per station, not one Bernoulli.
    pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 12;

    /// Build a station set over `topology`; `factory(i)` builds station
    /// `i` (called in id order).
    ///
    /// # Panics
    /// Panics with the [`jle_radio::TopologyError`] message when the
    /// topology does not fit `config.n`.
    pub fn new(
        config: &SimConfig,
        topology: &'t Topology,
        mut factory: impl FnMut(u64) -> Box<dyn MeshProtocol>,
    ) -> Self {
        if let Err(e) = topology.validate_for(config.n) {
            panic!("invalid topology for this run: {e}");
        }
        let n = config.n as usize;
        let (order, bounds) = match topology.graph() {
            Some(g) => {
                let mut order = Vec::with_capacity(n);
                let mut bounds = Vec::with_capacity(g.component_count() as usize + 1);
                bounds.push(0);
                for c in 0..g.component_count() {
                    order.extend_from_slice(g.component_members(c));
                    bounds.push(order.len());
                }
                (order, bounds)
            }
            None => ((0..n as u32).collect(), vec![0, n]),
        };
        let mut pos = vec![0u32; n];
        for (p, &id) in order.iter().enumerate() {
            pos[id as usize] = p as u32;
        }
        // Build in id order (factories may be stateful), then permute.
        let mut by_id: Vec<Option<Box<dyn MeshProtocol>>> =
            (0..config.n).map(|i| Some(factory(i))).collect();
        let stations = order
            .iter()
            .map(|&id| by_id[id as usize].take().expect("order is a permutation"))
            .collect();
        let keys = (0..config.n).map(|i| station_key(config.seed, i)).collect();
        MultihopStations {
            stations,
            order,
            pos,
            bounds,
            acts: vec![ACT_LISTEN; n],
            payloads: vec![0; n],
            keys,
            topology,
            discipline: RngDiscipline::Shared,
            par_threshold: Self::DEFAULT_PAR_THRESHOLD,
            clusters: None,
            last_lone: None,
            cross_cluster: 0,
        }
    }

    /// Attach a cluster assignment (station id → cluster index). Enables
    /// per-cluster resolution tracking, network-convergence tracking, and
    /// cross-cluster interference accounting in the [`MultihopReport`].
    ///
    /// # Panics
    /// Panics if `assign.len()` differs from the station count.
    pub fn with_clusters(mut self, assign: &'t [u32]) -> Self {
        assert_eq!(assign.len(), self.order.len(), "cluster assignment must cover every station");
        let n_clusters = assign.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut members = vec![Vec::new(); n_clusters];
        for (id, &c) in assign.iter().enumerate() {
            members[c as usize].push(id as u32);
        }
        self.clusters = Some(ClusterTracking {
            assign,
            resolved_at: vec![None; n_clusters],
            unresolved: n_clusters,
            members,
            converged_at: None,
            network_leader: None,
        });
        self
    }

    /// Select the RNG discipline (default [`RngDiscipline::Shared`]).
    pub fn with_discipline(mut self, discipline: RngDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Override the sharding threshold
    /// ([`MultihopStations::DEFAULT_PAR_THRESHOLD`]). The serial and
    /// parallel paths are bit-identical, so this only trades thread
    /// startup against per-slot work.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.par_threshold = threshold.max(1);
        self
    }

    /// Storage-range chunks for the parallel phases, or `None` when the
    /// workload should stay serial.
    fn chunk_plan(&self) -> Option<Vec<(usize, usize)>> {
        let n = self.order.len();
        let workers = rayon::current_num_threads().max(1);
        if n < self.par_threshold || workers < 2 {
            return None;
        }
        let chunks = plan_chunks(&self.bounds, workers);
        if chunks.len() < 2 {
            None
        } else {
            Some(chunks)
        }
    }

    /// Feedback for the complete topology: every station observes the
    /// global truth — the exact semantics of [`crate::ExactStations`],
    /// plus message delivery on the run's clean `Single`s.
    fn feedback_complete(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        let lone_msg = if truth.is_clean_single() {
            self.last_lone.map(|id| MeshMessage {
                from: id,
                payload: self.payloads[self.pos[id as usize] as usize],
            })
        } else {
            None
        };
        for id in 0..self.order.len() {
            let p = self.pos[id] as usize;
            let a = self.acts[p];
            let transmitted = a == ACT_TRANSMIT;
            if !transmitted && a != ACT_LISTEN {
                continue; // sleeping and terminated stations observe nothing
            }
            let obs = cd::observe(config.cd, transmitted, truth);
            let heard = if transmitted { None } else { lone_msg.as_ref() };
            self.stations[p].feedback(slot, transmitted, obs, heard);
        }
    }

    /// Feedback over a graph topology: each node's channel is resolved
    /// over its closed neighborhood, sharded by component ranges above the
    /// threshold.
    fn feedback_graph(&mut self, g: &Graph, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        let assign = self.clusters.as_ref().map(|c| c.assign);
        let events = match self.chunk_plan() {
            Some(chunks) => {
                let mut partials = vec![0u64; chunks.len()];
                let (order, pos) = (&self.order[..], &self.pos[..]);
                let (acts, payloads) = (&self.acts[..], &self.payloads[..]);
                let (cd_model, jammed) = (config.cd, truth.jammed);
                let mut rest = &mut self.stations[..];
                let mut consumed = 0usize;
                rayon::scope(|s| {
                    for (part, &(start, end)) in partials.iter_mut().zip(&chunks) {
                        debug_assert_eq!(start, consumed, "chunks must tile storage");
                        let (chunk, tail) = rest.split_at_mut(end - start);
                        rest = tail;
                        consumed = end;
                        s.spawn(move |_| {
                            *part = feedback_chunk(
                                chunk, start, order, pos, acts, payloads, g, assign, cd_model,
                                jammed, slot,
                            );
                        });
                    }
                });
                // Chunk-order fold: deterministic regardless of worker
                // scheduling (the counters are sums, but keep the habit).
                partials.iter().sum()
            }
            None => feedback_chunk(
                &mut self.stations,
                0,
                &self.order,
                &self.pos,
                &self.acts,
                &self.payloads,
                g,
                assign,
                config.cd,
                truth.jammed,
                slot,
            ),
        };
        self.cross_cluster += events;
    }

    /// Post-feedback election polling: per-cluster resolution slots and
    /// network-wide convergence. Only runs when a cluster assignment is
    /// attached, so plain multi-hop runs pay nothing.
    fn poll_mesh(&mut self, slot: u64) {
        let Some(tr) = self.clusters.as_mut() else { return };
        if tr.unresolved > 0 {
            for (c, resolved) in tr.resolved_at.iter_mut().enumerate() {
                if resolved.is_some() {
                    continue;
                }
                let all_know = tr.members[c].iter().all(|&id| {
                    self.stations[self.pos[id as usize] as usize]
                        .mesh_status()
                        .cluster_leader
                        .is_some()
                });
                if all_know {
                    *resolved = Some(slot);
                    tr.unresolved -= 1;
                }
            }
        }
        let mut leader = None;
        let mut all_agree = true;
        for st in &self.stations {
            match st.mesh_status().network_leader {
                None => {
                    all_agree = false;
                    break;
                }
                Some(l) => {
                    if *leader.get_or_insert(l) != l {
                        all_agree = false;
                        break;
                    }
                }
            }
        }
        if all_agree {
            // First slot of the *current* stable agreement: divergence
            // (a new, smaller leader id still flooding) resets the mark.
            if tr.converged_at.is_none() {
                tr.converged_at = Some(slot);
            }
            tr.network_leader = leader;
        } else {
            tr.converged_at = None;
            tr.network_leader = None;
        }
    }
}

impl std::fmt::Debug for MultihopStations<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultihopStations")
            .field("n", &self.order.len())
            .field("topology", &self.topology.descriptor())
            .field("discipline", &self.discipline)
            .finish_non_exhaustive()
    }
}

/// Merge component ranges into at most ~`workers` contiguous chunks of
/// roughly equal size. Chunks always respect component boundaries, so a
/// worker owns whole components.
fn plan_chunks(bounds: &[usize], workers: usize) -> Vec<(usize, usize)> {
    let n = *bounds.last().expect("bounds include the end");
    let target = n.div_ceil(workers.max(1)).max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    for w in bounds.windows(2) {
        let end = w[1];
        if end - start >= target {
            chunks.push((start, end));
            start = end;
        }
    }
    if start < n {
        chunks.push((start, n));
    }
    chunks
}

/// The per-chunk feedback kernel: resolve each station's closed
/// neighborhood, deliver observation + message, and count cross-cluster
/// interference events. Returns the event count for the chunk-order fold.
///
/// A cross-cluster interference event is a node-slot where the local
/// channel read `Collision`, the slot was not jammed, and the node's own
/// cluster contributed at most one transmitter to its neighborhood — i.e.
/// a `Null`/`Single` the node *would* have perceived was destroyed by
/// foreign-cluster transmitters. Jammed slots are attributed to the
/// adversary, not to neighbors.
#[allow(clippy::too_many_arguments)]
fn feedback_chunk(
    stations: &mut [Box<dyn MeshProtocol>],
    start: usize,
    order: &[u32],
    pos: &[u32],
    acts: &[u8],
    payloads: &[u64],
    g: &Graph,
    assign: Option<&[u32]>,
    cd_model: CdModel,
    jammed: bool,
    slot: u64,
) -> u64 {
    let mut events = 0u64;
    let is_tx = |j: u32| acts[pos[j as usize] as usize] == ACT_TRANSMIT;
    for (k, st) in stations.iter_mut().enumerate() {
        let p = start + k;
        let id = order[p];
        let a = acts[p];
        let transmitted = a == ACT_TRANSMIT;
        if !transmitted && a != ACT_LISTEN {
            continue; // sleeping and terminated stations observe nothing
        }
        let (count, lone) = g.closed_neighborhood_tx(id, is_tx);
        let local = SlotTruth::new(count, jammed);
        debug_assert_eq!(local.observed(), resolve(count, jammed));
        let obs = cd::observe(cd_model, transmitted, &local);
        let msg;
        let heard = if !transmitted && local.is_clean_single() {
            let from = lone.expect("a clean local Single has a lone transmitter");
            msg = MeshMessage { from: from as u64, payload: payloads[pos[from as usize] as usize] };
            Some(&msg)
        } else {
            None
        };
        st.feedback(slot, transmitted, obs, heard);
        if let Some(assign) = assign {
            if !jammed && count >= 2 {
                let mine = assign[id as usize];
                let mut own = u64::from(transmitted);
                for &j in g.neighbors(id) {
                    if is_tx(j) && assign[j as usize] == mine {
                        own += 1;
                    }
                }
                if own <= 1 {
                    events += 1;
                }
            }
        }
    }
    events
}

/// Per-chunk action kernel for the `Counter` discipline: every station
/// draws from its own counter stream, so chunks are order-independent and
/// the parallel phase is bit-identical to the serial one.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkAgg {
    tx: u64,
    listen: u64,
    lone: Option<u64>,
}

fn act_chunk(
    stations: &mut [Box<dyn MeshProtocol>],
    acts: &mut [u8],
    payloads: &mut [u64],
    order: &[u32],
    keys: &[u64],
    slot: u64,
) -> ChunkAgg {
    let mut agg = ChunkAgg::default();
    for (k, st) in stations.iter_mut().enumerate() {
        let id = order[k];
        if st.status().terminal() {
            acts[k] = ACT_TERM;
            continue;
        }
        let mut rng = StationRng::for_slot(keys[id as usize], slot);
        match st.act(slot, &mut rng) {
            Action::Transmit => {
                acts[k] = ACT_TRANSMIT;
                payloads[k] = st.payload();
                agg.tx += 1;
                agg.lone = if agg.tx == 1 { Some(id as u64) } else { None };
            }
            Action::Listen => {
                acts[k] = ACT_LISTEN;
                agg.listen += 1;
            }
            Action::Sleep => acts[k] = ACT_SLEEP,
        }
    }
    agg
}

impl StationSet for MultihopStations<'_> {
    fn finished(&self) -> bool {
        self.stations.iter().any(|s| s.finished())
            && self.stations.iter().all(|s| s.status().terminal() || s.finished())
    }

    fn act(&mut self, slot: u64, _config: &SimConfig, rng: &mut SmallRng) -> SlotActions {
        let mut actions = SlotActions::default();
        match self.discipline {
            RngDiscipline::Shared => {
                // Station-index draw order on the engine's sequential
                // stream: the ExactStations contract, so Complete runs
                // replay bit-for-bit.
                for id in 0..self.order.len() {
                    let p = self.pos[id] as usize;
                    let st = &mut self.stations[p];
                    if st.status().terminal() {
                        self.acts[p] = ACT_TERM;
                        continue;
                    }
                    match st.act(slot, rng) {
                        Action::Transmit => {
                            self.acts[p] = ACT_TRANSMIT;
                            self.payloads[p] = st.payload();
                            actions.transmitters += 1;
                            actions.lone_transmitter =
                                if actions.transmitters == 1 { Some(id as u64) } else { None };
                        }
                        Action::Listen => {
                            self.acts[p] = ACT_LISTEN;
                            actions.listeners += 1;
                        }
                        Action::Sleep => self.acts[p] = ACT_SLEEP,
                    }
                }
            }
            RngDiscipline::Counter => match self.chunk_plan() {
                Some(chunks) => {
                    let mut partials = vec![ChunkAgg::default(); chunks.len()];
                    let (order, keys) = (&self.order[..], &self.keys[..]);
                    let mut st_rest = &mut self.stations[..];
                    let mut act_rest = &mut self.acts[..];
                    let mut pay_rest = &mut self.payloads[..];
                    let mut order_rest = order;
                    rayon::scope(|s| {
                        for (part, &(start, end)) in partials.iter_mut().zip(&chunks) {
                            let take = end - start;
                            let (st_chunk, st_tail) = st_rest.split_at_mut(take);
                            let (act_chunkb, act_tail) = act_rest.split_at_mut(take);
                            let (pay_chunk, pay_tail) = pay_rest.split_at_mut(take);
                            let (ord_chunk, ord_tail) = order_rest.split_at(take);
                            st_rest = st_tail;
                            act_rest = act_tail;
                            pay_rest = pay_tail;
                            order_rest = ord_tail;
                            s.spawn(move |_| {
                                *part = act_chunk(
                                    st_chunk, act_chunkb, pay_chunk, ord_chunk, keys, slot,
                                );
                            });
                        }
                    });
                    // Chunk-order fold (deterministic): totals are sums;
                    // the lone transmitter exists only when exactly one
                    // chunk saw exactly one.
                    for part in &partials {
                        actions.transmitters += part.tx;
                        actions.listeners += part.listen;
                    }
                    actions.lone_transmitter = if actions.transmitters == 1 {
                        partials.iter().find_map(|p| p.lone)
                    } else {
                        None
                    };
                }
                None => {
                    let agg = act_chunk(
                        &mut self.stations,
                        &mut self.acts,
                        &mut self.payloads,
                        &self.order,
                        &self.keys,
                        slot,
                    );
                    actions.transmitters = agg.tx;
                    actions.listeners = agg.listen;
                    actions.lone_transmitter = if agg.tx == 1 { agg.lone } else { None };
                }
            },
        }
        self.last_lone = actions.lone_transmitter;
        actions
    }

    fn pick_winner(
        &mut self,
        actions: &SlotActions,
        _config: &SimConfig,
        _rng: &mut SmallRng,
    ) -> Option<u64> {
        // Identities are known: no randomness drawn (both exact backends
        // behave this way, so Complete runs stay bit-identical).
        actions.lone_transmitter
    }

    fn feedback(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        match self.topology.graph() {
            None => self.feedback_complete(slot, truth, config),
            Some(g) => {
                // Cloning the &Graph out of self sidesteps a borrow of
                // `self.topology` across the &mut self call.
                let g: &Graph = g;
                self.feedback_graph(g, slot, truth, config)
            }
        }
        self.poll_mesh(slot);
    }

    fn estimate(&self) -> Option<f64> {
        (0..self.order.len())
            .map(|id| &self.stations[self.pos[id] as usize])
            .find(|s| !s.status().terminal())
            .and_then(|s| s.estimate())
    }

    fn collect_probes(&self, out: &mut Vec<crate::observer::StateProbe>) {
        for id in 0..self.order.len() {
            let st = &self.stations[self.pos[id] as usize];
            if let Some((state, value)) = st.state_probe() {
                out.push(crate::observer::StateProbe { station: id as u64, state, value });
            }
        }
    }

    fn should_stop(
        &mut self,
        _truth: &SlotTruth,
        config: &SimConfig,
        report: &mut RunReport,
    ) -> bool {
        match config.stop {
            StopRule::FirstCleanSingle => report.resolved_at.is_some(),
            StopRule::AllTerminated => {
                if self.stations.iter().all(|s| s.status().terminal()) {
                    report.all_terminated = true;
                    true
                } else {
                    false
                }
            }
            StopRule::Horizon => false,
        }
    }

    fn finalize(&mut self, config: &SimConfig, report: &mut RunReport) {
        report.timed_out = match config.stop {
            StopRule::FirstCleanSingle => report.resolved_at.is_none() && !self.finished(),
            StopRule::AllTerminated => !report.all_terminated,
            StopRule::Horizon => false,
        };
        report.cap_hit = report.timed_out && report.slots == config.max_slots;
        report.leaders = (0..self.order.len() as u64)
            .filter(|&id| self.stations[self.pos[id as usize] as usize].status() == Status::Leader)
            .collect();
        // Complete-topology runs without cluster tracking serialize
        // exactly like single-channel runs: no multihop block at all.
        if self.topology.is_complete() && self.clusters.is_none() {
            return;
        }
        let components = self.topology.graph().map_or(1, Graph::component_count);
        let clusters = match &self.clusters {
            None => Vec::new(),
            Some(tr) => tr
                .members
                .iter()
                .enumerate()
                .map(|(c, members)| {
                    let status_of =
                        |id: u32| self.stations[self.pos[id as usize] as usize].mesh_status();
                    let leader = members
                        .iter()
                        .find(|&&id| status_of(id).is_cluster_leader)
                        .map(|&id| id as u64)
                        .or_else(|| members.iter().find_map(|&id| status_of(id).cluster_leader));
                    ClusterOutcome {
                        cluster: c as u32,
                        size: members.len() as u64,
                        resolved_at: tr.resolved_at[c],
                        leader,
                    }
                })
                .collect(),
        };
        report.multihop = Some(MultihopReport {
            topology: self.topology.descriptor(),
            components,
            clusters,
            converged_at: self.clusters.as_ref().and_then(|tr| tr.converged_at),
            network_leader: self.clusters.as_ref().and_then(|tr| tr.network_leader),
            cross_cluster_interference: self.cross_cluster,
        });
    }
}

/// Run one multi-hop simulation with a fresh mesh station set.
///
/// `clusters`, when given, maps station id → cluster index and enables
/// the election tracking in [`MultihopReport`].
///
/// # Panics
/// Panics when the topology or cluster assignment does not fit `config.n`.
pub fn run_multihop(
    config: &SimConfig,
    adversary: &AdversarySpec,
    topology: &Topology,
    clusters: Option<&[u32]>,
    factory: impl FnMut(u64) -> Box<dyn MeshProtocol>,
) -> RunReport {
    run_multihop_with(config, adversary, topology, clusters, RngDiscipline::Shared, factory)
}

/// [`run_multihop`] with an explicit RNG discipline.
///
/// # Panics
/// Panics when the topology or cluster assignment does not fit `config.n`.
pub fn run_multihop_with(
    config: &SimConfig,
    adversary: &AdversarySpec,
    topology: &Topology,
    clusters: Option<&[u32]>,
    discipline: RngDiscipline,
    factory: impl FnMut(u64) -> Box<dyn MeshProtocol>,
) -> RunReport {
    let mut stations = MultihopStations::new(config, topology, factory).with_discipline(discipline);
    if let Some(assign) = clusters {
        stations = stations.with_clusters(assign);
    }
    SimCore::new(config, adversary).run(&mut stations)
}

/// Run single-channel [`Protocol`]s through the multi-hop backend via
/// [`StdMesh`] — the complete-graph identity entry point.
///
/// # Panics
/// Panics when the topology does not fit `config.n`.
pub fn run_multihop_std(
    config: &SimConfig,
    adversary: &AdversarySpec,
    topology: &Topology,
    discipline: RngDiscipline,
    mut factory: impl FnMut(u64) -> Box<dyn Protocol>,
) -> RunReport {
    run_multihop_with(config, adversary, topology, None, discipline, |i| {
        Box::new(StdMesh::new(factory(i)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::run_exact;
    use crate::fast::run_fast_exact;
    use crate::protocol::{PerStation, UniformProtocol};
    use jle_adversary::{JamStrategyKind, Rate};
    use jle_radio::ChannelState;

    /// Fixed-probability uniform protocol.
    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    /// LESK-shaped backoff, so the equivalence checks exercise
    /// history-dependent probabilities.
    #[derive(Debug, Clone)]
    struct Backoff(f64);
    impl UniformProtocol for Backoff {
        fn tx_prob(&mut self, _: u64) -> f64 {
            2f64.powf(-self.0)
        }
        fn on_state(&mut self, _: u64, state: ChannelState) {
            match state {
                ChannelState::Null => self.0 = (self.0 - 1.0).max(0.0),
                ChannelState::Collision => self.0 += 0.5,
                ChannelState::Single => {}
            }
        }
        fn estimate(&self) -> Option<f64> {
            Some(self.0)
        }
    }

    fn jammer() -> AdversarySpec {
        AdversarySpec::new(Rate::from_f64(0.3), 16, JamStrategyKind::Saturating)
    }

    fn assert_reports_identical(a: &RunReport, b: &RunReport) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "reports must serialize identically"
        );
    }

    #[test]
    fn complete_shared_is_bit_identical_to_exact() {
        for cd in [CdModel::Strong, CdModel::Weak, CdModel::NoCd] {
            let config = SimConfig::new(12, cd).with_seed(0xA11CE).with_max_slots(4_000);
            let exact = run_exact(&config, &jammer(), |_| Box::new(PerStation::new(Backoff(3.0))));
            let mesh = run_multihop_std(
                &config,
                &jammer(),
                &Topology::Complete,
                RngDiscipline::Shared,
                |_| Box::new(PerStation::new(Backoff(3.0))),
            );
            assert_reports_identical(&exact, &mesh);
            assert!(mesh.multihop.is_none(), "complete runs carry no multihop block");
        }
    }

    #[test]
    fn complete_counter_is_bit_identical_to_fast_exact() {
        for cd in [CdModel::Strong, CdModel::Weak, CdModel::NoCd] {
            let config =
                SimConfig::new(12, cd).with_seed(0xA11CE).with_max_slots(4_000).with_trace(true);
            let fast =
                run_fast_exact(&config, &jammer(), |_| Box::new(PerStation::new(Backoff(3.0))));
            let mesh = run_multihop_std(
                &config,
                &jammer(),
                &Topology::Complete,
                RngDiscipline::Counter,
                |_| Box::new(PerStation::new(Backoff(3.0))),
            );
            assert_reports_identical(&fast, &mesh);
        }
    }

    #[test]
    fn complete_disk_matches_complete_topology_outcomes() {
        // A unit-disk with radius > sqrt(2) is K_n: same resolution slot
        // and winner as Topology::Complete (local truth == global truth),
        // though the report gains a multihop block.
        let config = SimConfig::new(10, CdModel::Strong).with_seed(7).with_max_slots(4_000);
        let complete = run_multihop_std(
            &config,
            &jammer(),
            &Topology::Complete,
            RngDiscipline::Shared,
            |_| Box::new(PerStation::new(Fixed(0.3))),
        );
        let disk = Topology::unit_disk(10, 1.5, 3).unwrap();
        let mesh = run_multihop_std(&config, &jammer(), &disk, RngDiscipline::Shared, |_| {
            Box::new(PerStation::new(Fixed(0.3)))
        });
        assert_eq!(complete.resolved_at, mesh.resolved_at);
        assert_eq!(complete.winner, mesh.winner);
        assert_eq!(complete.leaders, mesh.leaders);
        let mh = mesh.multihop.expect("graph runs carry the multihop block");
        assert_eq!(mh.components, 1);
        assert_eq!(mh.topology, "unit-disk(n=10,r=1.5,seed=3)");
    }

    #[test]
    fn isolated_components_elect_independently() {
        // Two disjoint pairs: a global clean Single needs exactly one
        // transmitter network-wide, but each pair resolves locally; with
        // always-transmitting stations every node sees a local collision
        // inside its own pair and never a single.
        let topo = Topology::explicit(4, &[(0, 1), (2, 3)]).unwrap();
        let config = SimConfig::new(4, CdModel::Strong)
            .with_seed(5)
            .with_max_slots(200)
            .with_stop(StopRule::Horizon);
        let report = run_multihop_std(
            &config,
            &AdversarySpec::passive(),
            &topo,
            RngDiscipline::Shared,
            |_| Box::new(PerStation::new(Fixed(1.0))),
        );
        assert!(report.leaders.is_empty(), "pairs always collide locally");
        assert_eq!(report.multihop.unwrap().components, 2);

        // With exactly one transmitter per pair, *both* transmitters see
        // their own local Single in the same slot: two leaders at once —
        // impossible on a single channel.
        let mut station = 0u64;
        let report = run_multihop_std(
            &config,
            &AdversarySpec::passive(),
            &topo,
            RngDiscipline::Shared,
            |i| {
                station = i;
                Box::new(PerStation::new(Fixed(if i % 2 == 0 { 1.0 } else { 0.0 })))
            },
        );
        assert_eq!(report.leaders, vec![0, 2], "one leader per component");
    }

    #[test]
    fn sharded_feedback_is_bit_identical_to_serial() {
        // 8 disjoint triangles; threshold 1 forces the parallel path.
        let mut edges = Vec::new();
        for c in 0..8u64 {
            let b = c * 3;
            edges.extend_from_slice(&[(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
        }
        let topo = Topology::explicit(24, &edges).unwrap();
        let clusters: Vec<u32> = (0..24).map(|i| i / 3).collect();
        let config = SimConfig::new(24, CdModel::Strong)
            .with_seed(11)
            .with_max_slots(500)
            .with_stop(StopRule::Horizon)
            .with_trace(true);
        let run = |threshold: usize| {
            let mut stations = MultihopStations::new(&config, &topo, |_| {
                Box::new(StdMesh::new(Box::new(PerStation::new(Backoff(2.0)))))
                    as Box<dyn MeshProtocol>
            })
            .with_discipline(RngDiscipline::Counter)
            .with_clusters(&clusters)
            .with_parallel_threshold(threshold);
            SimCore::new(&config, &jammer()).run(&mut stations)
        };
        let serial = run(usize::MAX);
        let parallel = run(1);
        assert_reports_identical(&serial, &parallel);
    }

    #[test]
    fn cross_cluster_interference_is_counted() {
        // Path 0-1-2, clusters {0,1} and {2}. Stations 0 and 2 always
        // transmit, 1 always listens: node 1 sees a 2-collision with only
        // one own-cluster transmitter => every slot is one event at node
        // 1. Nodes 0 and 2 see clean local Singles of their own.
        let topo = Topology::explicit(3, &[(0, 1), (1, 2)]).unwrap();
        let clusters = [0u32, 0, 1];
        let config = SimConfig::new(3, CdModel::Strong)
            .with_seed(1)
            .with_max_slots(10)
            .with_stop(StopRule::Horizon);
        let report =
            run_multihop(&config, &AdversarySpec::passive(), &topo, Some(&clusters), |i| {
                let p = if i == 1 { 0.0 } else { 1.0 };
                Box::new(StdMesh::new(Box::new(PerStation::new(Fixed(p)))))
            });
        let mh = report.multihop.unwrap();
        // Stations 0 and 2 lead after slot 0 (own local Single) and then
        // sleep terminally; node 1 keeps observing the cross-cluster
        // transmissions... but 0's transmission stops once it terminates.
        // Slot 0 is the only full slot: one event at node 1.
        assert!(mh.cross_cluster_interference >= 1);
        assert_eq!(report.leaders, vec![0, 2]);
    }

    #[test]
    fn messages_are_delivered_on_local_singles() {
        use std::sync::{Arc, Mutex};

        type Log = Arc<Mutex<Vec<(u64, MeshMessage)>>>;

        /// Listener that records every heard message into a shared log.
        struct Recorder {
            id: u64,
            log: Log,
        }
        impl MeshProtocol for Recorder {
            fn act(&mut self, _: u64, _: &mut dyn RngCore) -> Action {
                Action::Listen
            }
            fn feedback(
                &mut self,
                _: u64,
                _: bool,
                _: jle_radio::Observation,
                heard: Option<&MeshMessage>,
            ) {
                if let Some(m) = heard {
                    self.log.lock().unwrap().push((self.id, *m));
                }
            }
            fn status(&self) -> Status {
                Status::Running
            }
        }
        /// Beacon transmitting its id+100 as payload every slot.
        struct Beacon(u64);
        impl MeshProtocol for Beacon {
            fn act(&mut self, _: u64, _: &mut dyn RngCore) -> Action {
                Action::Transmit
            }
            fn payload(&self) -> u64 {
                self.0 + 100
            }
            fn feedback(
                &mut self,
                _: u64,
                _: bool,
                _: jle_radio::Observation,
                _: Option<&MeshMessage>,
            ) {
            }
            fn status(&self) -> Status {
                Status::Running
            }
        }
        // Path 0-1-2-3: beacons at 0 and 3, recorders at 1 and 2. Node 1's
        // closed neighborhood {0,1,2} has the one transmitter 0 (a clean
        // local Single), node 2's {1,2,3} has only transmitter 3 — so each
        // recorder hears exactly its adjacent beacon, every slot. Neither
        // beacon hears anything (transmitters never receive).
        let topo = Topology::explicit(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let config = SimConfig::new(4, CdModel::Strong)
            .with_seed(2)
            .with_max_slots(3)
            .with_stop(StopRule::Horizon);
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let factory_log = Arc::clone(&log);
        let mut stations = MultihopStations::new(&config, &topo, |i| match i {
            0 | 3 => Box::new(Beacon(i)) as Box<dyn MeshProtocol>,
            _ => Box::new(Recorder { id: i, log: Arc::clone(&factory_log) }),
        });
        let report = SimCore::new(&config, &AdversarySpec::passive()).run(&mut stations);
        assert_eq!(report.slots, 3);
        let mut heard = log.lock().unwrap().clone();
        heard.sort_unstable_by_key(|(id, m)| (*id, m.from));
        let expect: Vec<(u64, MeshMessage)> = [
            (1, MeshMessage { from: 0, payload: 100 }),
            (2, MeshMessage { from: 3, payload: 103 }),
        ]
        .into_iter()
        .flat_map(|e| std::iter::repeat_n(e, 3))
        .collect();
        assert_eq!(heard, expect);
    }

    #[test]
    #[should_panic(expected = "topology has 5 nodes but the simulation has 4 stations")]
    fn size_mismatch_panics_with_descriptive_error() {
        let topo = Topology::explicit(5, &[(0, 1)]).unwrap();
        let config = SimConfig::new(4, CdModel::Strong);
        let _ = run_multihop_std(
            &config,
            &AdversarySpec::passive(),
            &topo,
            RngDiscipline::Shared,
            |_| Box::new(PerStation::new(Fixed(0.5))),
        );
    }

    #[test]
    fn plan_chunks_respects_component_bounds() {
        // Components of sizes 4, 1, 1, 6 over n = 12, 3 workers: target 4.
        let chunks = plan_chunks(&[0, 4, 5, 6, 12], 3);
        assert_eq!(chunks, vec![(0, 4), (4, 12)]);
        for w in chunks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "chunks tile the range");
        }
        // One worker: everything in one chunk.
        assert_eq!(plan_chunks(&[0, 4, 5, 6, 12], 1), vec![(0, 12)]);
        // Many small components merge.
        assert_eq!(plan_chunks(&[0, 1, 2, 3, 4], 2), vec![(0, 2), (2, 4)]);
    }
}
