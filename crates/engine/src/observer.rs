//! Per-slot instrumentation layers for the unified core.
//!
//! A [`SlotObserver`] sees every played slot (ground truth plus aggregate
//! actions) and may fill report fields when the run ends. Instrumentation
//! that used to be inlined in each engine loop — energy accounting, trace
//! recording — is now an observer, and new layers (live throughput for
//! the orchestrator, slot taxonomy in `jle-protocols`) compose the same
//! way without touching the loop.
//!
//! Observers are strictly passive: they run after the slot's randomness
//! is drawn and before resolution/feedback, and must not influence the
//! simulation (the golden-seed suite pins this — attaching or detaching
//! observers never changes a report's simulation fields).

use crate::core::SlotActions;
use crate::report::{EnergyStats, RunReport};
use jle_radio::{SlotTruth, Trace};

/// One station's protocol-internal state, sampled at the end of a slot
/// (after feedback) for replay timelines and state-transition debugging.
///
/// Produced by [`crate::Protocol::state_probe`] implementations and
/// collected by [`crate::StationSet::collect_probes`]; delivered to
/// observers that opted in via [`SlotObserver::wants_probes`]. `state` is
/// a protocol-chosen static label (e.g. LESK's `"electing"`, a lease
/// protocol's `"leading"`); `value` an optional scalar (LESK's estimate
/// `u`, a lease epoch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateProbe {
    /// Station id the probe describes.
    pub station: u64,
    /// Protocol-chosen state label.
    pub state: &'static str,
    /// Optional protocol-internal scalar.
    pub value: Option<f64>,
}

/// A passive per-slot instrumentation layer (see the module docs).
pub trait SlotObserver {
    /// Whether this observer consumes the per-slot protocol estimate. The
    /// core queries [`crate::StationSet::estimate`] — an O(n) scan on the
    /// exact engine — only if some attached observer wants it.
    fn wants_estimate(&self) -> bool {
        false
    }

    /// Whether this observer consumes per-station [`StateProbe`]s. The
    /// core collects probes — an O(n) scan — only if some attached
    /// observer wants them; the disabled path costs one branch per slot.
    fn wants_probes(&self) -> bool {
        false
    }

    /// Called once per played slot, after feedback has been delivered,
    /// with every station's [`StateProbe`] (stations whose protocol
    /// returns `None` are absent). Only called when
    /// [`SlotObserver::wants_probes`] held for this observer.
    fn on_probes(&mut self, slot: u64, probes: &[StateProbe]) {
        let _ = (slot, probes);
    }

    /// Called once per played slot, after the slot's randomness is fully
    /// drawn and before resolution and feedback. `estimate` is `Some`
    /// only if [`SlotObserver::wants_estimate`] held for some observer.
    fn on_slot(
        &mut self,
        slot: u64,
        truth: &SlotTruth,
        actions: &SlotActions,
        estimate: Option<f64>,
    );

    /// Called once when the run ends, before backend finalization; the
    /// observer may deposit its accumulated result on the report.
    fn finish(&mut self, report: &mut RunReport) {
        let _ = report;
    }

    /// Called once after backend finalization, with the *final* report —
    /// every field (`cap_hit`, `leader_crashed`, `leaders`, …) is settled.
    /// Read-only by design: this is where telemetry layers classify
    /// anomalies and update metrics without being able to perturb the
    /// result.
    fn after_run(&mut self, report: &RunReport) {
        let _ = report;
    }
}

/// Blanket impl so `&mut O` can be attached where an observer is expected.
impl<O: SlotObserver + ?Sized> SlotObserver for &mut O {
    fn wants_estimate(&self) -> bool {
        (**self).wants_estimate()
    }
    fn wants_probes(&self) -> bool {
        (**self).wants_probes()
    }
    fn on_probes(&mut self, slot: u64, probes: &[StateProbe]) {
        (**self).on_probes(slot, probes)
    }
    fn on_slot(
        &mut self,
        slot: u64,
        truth: &SlotTruth,
        actions: &SlotActions,
        estimate: Option<f64>,
    ) {
        (**self).on_slot(slot, truth, actions, estimate)
    }
    fn finish(&mut self, report: &mut RunReport) {
        (**self).finish(report)
    }
    fn after_run(&mut self, report: &RunReport) {
        (**self).after_run(report)
    }
}

/// Energy accounting: sums station-slot expenditures into
/// [`RunReport::energy`]. Installed by every shim (energy is part of the
/// report contract), but an ordinary observer nonetheless.
#[derive(Debug, Default)]
pub struct EnergyObserver {
    stats: EnergyStats,
}

impl SlotObserver for EnergyObserver {
    fn on_slot(&mut self, _: u64, _: &SlotTruth, actions: &SlotActions, _: Option<f64>) {
        self.stats.transmissions += actions.transmitters;
        self.stats.listens += actions.listeners;
    }

    fn finish(&mut self, report: &mut RunReport) {
        report.energy = self.stats;
    }
}

/// Trace recording: packs every slot (and the protocol estimate, when one
/// is exposed) into a [`Trace`] deposited on [`RunReport::trace`].
#[derive(Debug)]
pub struct TraceObserver {
    trace: Trace,
}

impl TraceObserver {
    /// Record into `trace` (possibly recycled from a
    /// [`crate::SimArena`]).
    pub fn new(trace: Trace) -> Self {
        TraceObserver { trace }
    }
}

impl SlotObserver for TraceObserver {
    fn wants_estimate(&self) -> bool {
        true
    }

    fn on_slot(&mut self, _: u64, truth: &SlotTruth, _: &SlotActions, estimate: Option<f64>) {
        match estimate {
            Some(u) => self.trace.push_with_estimate(truth, u),
            None => self.trace.push(truth),
        }
    }

    fn finish(&mut self, report: &mut RunReport) {
        report.trace = Some(std::mem::take(&mut self.trace));
    }
}

/// Live slots/sec telemetry: batches played slots and hands the count to a
/// sink every `interval` slots (plus a final flush), so a long run reports
/// progress while it is still inside the loop. The orchestrator wires the
/// sink to its atomic [`Stats`] counters — see
/// `jle_orchestrator::telemetry`.
///
/// The batching keeps the per-slot cost to one increment; pick `interval`
/// large enough that the sink (typically an atomic add) stays off the hot
/// path.
pub struct ThroughputObserver<F: FnMut(u64)> {
    interval: u64,
    pending: u64,
    sink: F,
}

impl<F: FnMut(u64)> ThroughputObserver<F> {
    /// Flush `sink` every `interval` played slots (minimum 1).
    pub fn new(interval: u64, sink: F) -> Self {
        ThroughputObserver { interval: interval.max(1), pending: 0, sink }
    }
}

impl<F: FnMut(u64)> std::fmt::Debug for ThroughputObserver<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThroughputObserver")
            .field("interval", &self.interval)
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(u64)> SlotObserver for ThroughputObserver<F> {
    fn on_slot(&mut self, _: u64, _: &SlotTruth, _: &SlotActions, _: Option<f64>) {
        self.pending += 1;
        if self.pending >= self.interval {
            (self.sink)(self.pending);
            self.pending = 0;
        }
    }

    fn finish(&mut self, _: &mut RunReport) {
        if self.pending > 0 {
            (self.sink)(self.pending);
            self.pending = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_observer_accumulates_and_deposits() {
        let mut e = EnergyObserver::default();
        let truth = SlotTruth::new(3, false);
        let actions = SlotActions { transmitters: 3, listeners: 5, lone_transmitter: None };
        e.on_slot(0, &truth, &actions, None);
        e.on_slot(1, &truth, &actions, None);
        let mut report = RunReport::default();
        e.finish(&mut report);
        assert_eq!(report.energy.transmissions, 6);
        assert_eq!(report.energy.listens, 10);
    }

    #[test]
    fn trace_observer_records_estimates_when_present() {
        let mut t = TraceObserver::new(Trace::with_capacity(4));
        assert!(t.wants_estimate());
        let actions = SlotActions::default();
        t.on_slot(0, &SlotTruth::new(0, false), &actions, Some(1.5));
        t.on_slot(1, &SlotTruth::new(2, true), &actions, None);
        let mut report = RunReport::default();
        t.finish(&mut report);
        let trace = report.trace.expect("deposited");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.estimates, vec![1.5]);
    }

    #[test]
    fn throughput_observer_batches_and_flushes() {
        let mut seen: Vec<u64> = Vec::new();
        {
            let mut t = ThroughputObserver::new(4, |k| seen.push(k));
            let actions = SlotActions::default();
            for slot in 0..10 {
                t.on_slot(slot, &SlotTruth::IDLE, &actions, None);
            }
            t.finish(&mut RunReport::default());
            // A second finish must not double-flush.
            t.finish(&mut RunReport::default());
        }
        assert_eq!(seen, vec![4, 4, 2]);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut total = 0u64;
        let mut t = ThroughputObserver::new(0, |k| total += k);
        t.on_slot(0, &SlotTruth::IDLE, &SlotActions::default(), None);
        assert_eq!(total, 1, "interval 0 behaves as 1");
    }
}
