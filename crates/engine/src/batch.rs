//! Batched lockstep trials: K runs of the same experiment per slot pass.
//!
//! Monte-Carlo sweeps over election-scale configurations are dominated by
//! *short* runs — a few dozen slots of work wrapped in per-trial setup
//! (station boxes, scratch vectors, key derivation) that the
//! [`FastExactStations`](crate::FastExactStations) backend pays once per
//! trial. The counter-based streams of [`crate::streams`] make every draw
//! a pure function of `(run_seed, station, slot, draw_index)`, so nothing
//! couples one trial's randomness to another's — K trials of the same
//! experiment can advance through the *same* slot loop together:
//!
//! * **Structure-of-arrays state.** Protocol states live in one
//!   `[station-major × trial]` vector; per-station trial membership
//!   (awake / engaged / finished / transmitted / asleep) lives in
//!   bitplanes where one `u64` word covers 64 trials, so the per-slot
//!   bookkeeping walks words, not stations × trials.
//! * **One pass per slot.** Station iteration, `station_key` material
//!   ([`slot_material`] is mixed once per slot for the whole batch), and
//!   protocol-state touching amortize across every live trial.
//! * **Early retirement.** A trial that resolves (or stops) leaves the
//!   live set by clearing one bit; because draws are coordinate-pure,
//!   retirement cannot shift any other trial's streams — the survivors'
//!   bits are identical to what a solo run would produce.
//!
//! **Bit-identity contract:** trial `k` of a batch over `seeds` produces
//! exactly the [`RunReport`] of
//! `run_fast_exact(&config.with_seed(seeds[k]), …)`. The `seed` field of
//! the config handed to the batch entry points is *ignored* — the seed
//! slice is the per-trial authority. The fast backend's awake-prefix
//! permutation order is unobservable (all of its per-slot effects are
//! set-level: transmitter counts, lone-transmitter identity, per-station
//! feedback independence, min-id estimates, sorted leader lists), which
//! is what lets the batch backend fuse the two feedback passes and walk
//! stations in id order while staying on the fast backend's exact bits.
//! Because the bits agree, batch results may share the fast backend's
//! cache entries (the orchestrator aliases the engine salt — see
//! `DESIGN.md` §17).
//!
//! Two entry families share the lockstep loop:
//!
//! * [`run_batch_exact`] / [`run_batch_exact_with`] /
//!   [`run_batch_exact_faulty`] — the general backend
//!   ([`BatchExactStations`]), one protocol state per `(station, trial)`;
//!   correct for *any* [`Protocol`], including fault-wrapped and
//!   duty-cycled stations (a merged wake calendar buckets
//!   `(station, trial)` pairs by wake slot).
//! * [`run_batch_uniform`] — the uniform-protocol fast path
//!   ([`BatchUniformStations`]): every running station of a trial
//!   provably carries *identical* [`PerStation`](crate::PerStation)-wrapped state (the same
//!   invariant the cohort backend rests on), so the batch keeps **one**
//!   shared state per trial, touches it once per slot, and resolves
//!   degenerate transmission probabilities (`p ∈ {0, 1}`) at word
//!   granularity with no per-station draw at all — the `≥10×` sweep
//!   throughput lever on the `exact_short_runs`-scale workloads.

use crate::config::{SimConfig, StopRule};
use crate::core::{trace_capacity, ADV_SEED_XOR};
use crate::faults::{FaultPlan, FaultyStation};
use crate::protocol::{Action, Protocol, Status, UniformProtocol};
use crate::report::{EnergyStats, RunReport};
use crate::streams::{slot_material, station_key, StationRng};
use jle_adversary::AdversarySpec;
use jle_radio::{cd, ChannelHistory, ChannelState, HistoryView, SlotTruth, Trace};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything one trial owns that is *not* station state: the adversary
/// instruments, the channel history, the accumulating report, and the
/// per-slot scratch the station passes fill in. Field-for-field this is
/// the per-run state `SimCore::run` keeps on its stack, so the per-slot
/// methods below replay the core loop's draw order exactly.
struct TrialLane {
    strategy: Box<dyn jle_adversary::JamStrategy>,
    budget: jle_adversary::JamBudget,
    adv_rng: SmallRng,
    noise_rng: SmallRng,
    history: ChannelHistory,
    report: RunReport,
    energy: EnergyStats,
    trace: Option<Trace>,
    /// Non-terminal stations (awake or parked).
    active: u64,
    /// Non-terminal stations currently reporting `finished()`.
    finished_active: u64,
    /// All stations (terminal included) reporting `finished()`.
    finished_total: u64,
    // Per-slot scratch.
    want: bool,
    tx_count: u64,
    listen_count: u64,
    lone: Option<u64>,
    truth: SlotTruth,
}

impl TrialLane {
    fn new(config: &SimConfig, adversary: &AdversarySpec, seed: u64) -> Self {
        TrialLane {
            strategy: adversary.strategy(),
            budget: adversary.budget(),
            adv_rng: SmallRng::seed_from_u64(seed ^ ADV_SEED_XOR),
            noise_rng: SmallRng::seed_from_u64(seed),
            history: ChannelHistory::new(config.effective_retention(adversary.t_window)),
            report: RunReport::default(),
            energy: EnergyStats::default(),
            trace: if config.record_trace {
                Some(Trace::with_capacity(trace_capacity(config)))
            } else {
                None
            },
            active: config.n,
            finished_active: 0,
            finished_total: 0,
            want: false,
            tx_count: 0,
            listen_count: 0,
            lone: None,
            truth: SlotTruth::IDLE,
        }
    }

    /// The stop-before-playing predicate `SimCore` checks at the top of
    /// every slot (incremental form, same as the fast backend).
    fn finished(&self) -> bool {
        self.finished_total > 0 && self.finished_active == self.active
    }

    /// Top-of-slot: the commit-first adversary decides before any action
    /// draw; per-slot scratch resets.
    fn begin_slot(&mut self) {
        self.want = self.strategy.decide(&self.history, &self.budget, &mut self.adv_rng);
        self.tx_count = 0;
        self.listen_count = 0;
        self.lone = None;
    }

    /// Post-action: budget clamp, noise draw, ground truth, energy/trace
    /// accounting, and first-clean-single resolution — steps 3–5 of the
    /// core loop, in its exact draw order.
    fn commit_slot(&mut self, config: &SimConfig, slot: u64, estimate: Option<f64>) {
        let jam = self.want && self.budget.can_jam();
        self.budget.advance(jam);
        let noisy = config.noise_prob > 0.0 && self.noise_rng.gen_bool(config.noise_prob);
        if noisy {
            self.report.noise_slots += 1;
        }
        self.truth = SlotTruth::new(self.tx_count, jam || noisy);
        self.energy.transmissions += self.tx_count;
        self.energy.listens += self.listen_count;
        if let Some(t) = self.trace.as_mut() {
            match estimate {
                Some(u) => t.push_with_estimate(&self.truth, u),
                None => t.push(&self.truth),
            }
        }
        if self.truth.is_clean_single() && self.report.resolved_at.is_none() {
            self.report.resolved_at = Some(slot);
            self.report.winner = self.lone;
        }
    }

    /// End-of-slot bookkeeping and stop rules; returns whether the trial
    /// retires after this slot.
    fn end_slot(&mut self, config: &SimConfig, slot: u64) -> bool {
        self.history.push(&self.truth);
        self.report.slots = slot + 1;
        match config.stop {
            StopRule::FirstCleanSingle => self.report.resolved_at.is_some(),
            StopRule::AllTerminated => {
                if self.active == 0 {
                    self.report.all_terminated = true;
                    true
                } else {
                    false
                }
            }
            StopRule::Horizon => false,
        }
    }

    /// Post-loop report assembly (core finalization + the fast backend's
    /// `timed_out`/`cap_hit` rules); `leaders` is filled by the caller.
    fn finalize(&mut self, config: &SimConfig) -> RunReport {
        self.report.counts = self.history.counts();
        self.report.adv_budget_spent = self.budget.spent_fraction();
        self.report.energy = self.energy;
        if let Some(t) = self.trace.take() {
            self.report.trace = Some(t);
        }
        let fin = self.finished();
        self.report.timed_out = match config.stop {
            StopRule::FirstCleanSingle => self.report.resolved_at.is_none() && !fin,
            StopRule::AllTerminated => !self.report.all_terminated,
            StopRule::Horizon => false,
        };
        self.report.cap_hit = self.report.timed_out && self.report.slots == config.max_slots;
        std::mem::take(&mut self.report)
    }
}

/// Estimate semantics shared with the fast backend: the estimate of the
/// lowest-indexed non-terminal station of `trial`.
fn min_engaged_estimate<P: Protocol>(
    engaged: &[u64],
    protos: &[P],
    words: usize,
    k: usize,
    trial: usize,
) -> Option<f64> {
    let (w, bit) = (trial / 64, trial % 64);
    let n = protos.len().checked_div(k).unwrap_or(0);
    for i in 0..n {
        if engaged[i * words + w] >> bit & 1 != 0 {
            return protos[i * k + trial].estimate();
        }
    }
    None
}

/// The general batched lockstep backend: K trials of the same experiment
/// advance through one slot loop over structure-of-arrays state.
///
/// Layout: `protos`/`keys` are station-major (`[station * K + trial]`);
/// the `awake`/`engaged`/`finished`/`tx`/`sleep` bitplanes are indexed
/// `[station * words + word]` with one bit per trial; `live` is one word
/// row of still-running trials. Padding bits (trial ≥ K in the last
/// word) stay clear in every plane.
///
/// See the module docs for the bit-identity contract. Construct with
/// [`BatchExactStations::new`] and drive to completion with
/// [`BatchExactStations::run`]; the `run_batch_*` shims do both.
pub struct BatchExactStations<P> {
    config: SimConfig,
    n: usize,
    k: usize,
    words: usize,
    protos: Vec<P>,
    keys: Vec<u64>,
    awake: Vec<u64>,
    engaged: Vec<u64>,
    finished: Vec<u64>,
    tx: Vec<u64>,
    sleep: Vec<u64>,
    live: Vec<u64>,
    /// Merged wake calendar: `(station, trial)` pairs bucketed by wake
    /// slot — the batch-wide image of the fast backend's per-run
    /// `WakeQueue` (drain order within a bucket is unobservable because
    /// waking only sets membership bits).
    calendar: BTreeMap<u64, Vec<(u32, u32)>>,
    lanes: Vec<TrialLane>,
}

impl<P: Protocol> BatchExactStations<P> {
    /// Build the lockstep state for one trial per entry of `seeds`.
    /// `factory(trial, station)` builds each protocol instance; it must
    /// construct the same station identically for every trial (the
    /// per-trial variation comes from the seeds, not the factory), which
    /// every pure factory does by construction.
    pub fn new(
        config: &SimConfig,
        adversary: &AdversarySpec,
        seeds: &[u64],
        mut factory: impl FnMut(u64, u64) -> P,
    ) -> Self {
        assert!(config.n >= 1, "need at least one station");
        let n = config.n as usize;
        assert!(n <= u32::MAX as usize, "batch backend indexes stations with u32");
        let k = seeds.len();
        assert!(k <= u32::MAX as usize, "batch backend indexes trials with u32");
        let words = k.div_ceil(64);

        let mut protos = Vec::with_capacity(n * k);
        let mut keys = Vec::with_capacity(n * k);
        for station in 0..n as u64 {
            for (trial, &seed) in seeds.iter().enumerate() {
                protos.push(factory(trial as u64, station));
                keys.push(station_key(seed, station));
            }
        }
        let lanes: Vec<TrialLane> =
            seeds.iter().map(|&s| TrialLane::new(config, adversary, s)).collect();

        let mut live = vec![u64::MAX; words];
        if let Some(last) = live.last_mut() {
            if !k.is_multiple_of(64) {
                *last = (1u64 << (k % 64)) - 1;
            }
        }
        let planes = |full: bool| -> Vec<u64> {
            if full {
                (0..n).flat_map(|_| live.iter().copied()).collect()
            } else {
                vec![0u64; n * words]
            }
        };
        let (awake, engaged) = (planes(true), planes(true));
        let (finished, tx, sleep) = (planes(false), planes(false), planes(false));

        let mut set = BatchExactStations {
            config: config.clone(),
            n,
            k,
            words,
            protos,
            keys,
            awake,
            engaged,
            finished,
            tx,
            sleep,
            live,
            calendar: BTreeMap::new(),
            lanes,
        };
        // Construction-time fold, mirroring the fast backend: stations
        // already `finished()` count toward the stop condition; stations
        // already terminal never enter the loop.
        for i in 0..n {
            let base = i * set.words;
            for trial in 0..k {
                let (w, b) = (trial / 64, trial % 64);
                let idx = i * k + trial;
                let mut fin = false;
                if set.protos[idx].finished() {
                    fin = true;
                    set.finished[base + w] |= 1u64 << b;
                    set.lanes[trial].finished_total += 1;
                    set.lanes[trial].finished_active += 1;
                }
                if set.protos[idx].status().terminal() {
                    let lane = &mut set.lanes[trial];
                    lane.active -= 1;
                    if fin {
                        lane.finished_active -= 1;
                    }
                    set.awake[base + w] &= !(1u64 << b);
                    set.engaged[base + w] &= !(1u64 << b);
                }
            }
        }
        set
    }

    /// Drive every trial to completion and return the per-trial reports
    /// in seed order. Each is bit-identical to the corresponding solo
    /// fast-exact run.
    pub fn run(mut self) -> Vec<RunReport> {
        let config = self.config.clone();
        let (n, k, words) = (self.n, self.k, self.words);
        for slot in 0..config.max_slots {
            // 0. Retire trials whose stations all finished — before the
            // slot is played, like the core loop's top-of-slot check.
            let mut any_live = false;
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if self.lanes[(w << 6) | b].finished() {
                        self.live[w] &= !(1u64 << b);
                    } else {
                        any_live = true;
                    }
                }
            }
            if !any_live {
                break;
            }

            // 1. Adversary pre-decisions + scratch reset per live trial.
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.lanes[(w << 6) | b].begin_slot();
                }
            }
            self.tx.fill(0);
            self.sleep.fill(0);

            // 2. Wake phase: pull every (station, trial) whose declared
            // wake slot has arrived back into the awake planes. Bits of
            // retired trials are masked by `live` everywhere they could
            // be read, so the calendar need not know about retirement.
            loop {
                match self.calendar.first_key_value() {
                    Some((&wake, _)) if wake <= slot => {
                        let (_, entries) = self.calendar.pop_first().expect("peeked entry exists");
                        for (station, trial) in entries {
                            let (w, b) = (trial as usize / 64, trial as usize % 64);
                            self.awake[station as usize * words + w] |= 1u64 << b;
                        }
                    }
                    _ => break,
                }
            }

            // 3. Action phase, station-major: the slot's key material is
            // mixed once for the whole batch.
            let slot_mat = slot_material(slot);
            for i in 0..n {
                let base = i * words;
                for w in 0..words {
                    let mut m = self.awake[base + w] & self.live[w];
                    while m != 0 {
                        let b = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let kk = (w << 6) | b;
                        let idx = i * k + kk;
                        let mut rng = StationRng::with_slot_material(self.keys[idx], slot_mat);
                        match self.protos[idx].act(slot, &mut rng) {
                            Action::Transmit => {
                                self.tx[base + w] |= 1u64 << b;
                                let lane = &mut self.lanes[kk];
                                lane.tx_count += 1;
                                lane.lone = if lane.tx_count == 1 { Some(i as u64) } else { None };
                            }
                            Action::Listen => self.lanes[kk].listen_count += 1,
                            Action::Sleep => self.sleep[base + w] |= 1u64 << b,
                        }
                    }
                }
            }

            // 4. Commit + noise + truth + observers + resolution.
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let kk = (w << 6) | b;
                    let estimate = if self.lanes[kk].trace.is_some() {
                        min_engaged_estimate(&self.engaged, &self.protos, words, k, kk)
                    } else {
                        None
                    };
                    self.lanes[kk].commit_slot(&config, slot, estimate);
                }
            }

            // 5. Feedback, station-major, with the fast backend's two
            // passes fused per (station, trial) — legal because every
            // per-station effect is independent of the pass order.
            for i in 0..n {
                let base = i * words;
                for w in 0..words {
                    let mut m = self.awake[base + w] & self.live[w];
                    while m != 0 {
                        let b = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let bit = 1u64 << b;
                        let kk = (w << 6) | b;
                        let idx = i * k + kk;
                        let slept = self.sleep[base + w] & bit != 0;
                        if !slept {
                            let transmitted = self.tx[base + w] & bit != 0;
                            let obs = cd::observe(config.cd, transmitted, &self.lanes[kk].truth);
                            self.protos[idx].feedback(slot, transmitted, obs);
                        }
                        let fin = self.protos[idx].finished();
                        if fin != (self.finished[base + w] & bit != 0) {
                            self.finished[base + w] ^= bit;
                            let lane = &mut self.lanes[kk];
                            if fin {
                                lane.finished_total += 1;
                                lane.finished_active += 1;
                            } else {
                                lane.finished_total -= 1;
                                lane.finished_active -= 1;
                            }
                        }
                        if self.protos[idx].status().terminal() {
                            let lane = &mut self.lanes[kk];
                            lane.active -= 1;
                            if fin {
                                lane.finished_active -= 1;
                            }
                            self.awake[base + w] &= !bit;
                            self.engaged[base + w] &= !bit;
                        } else if slept {
                            // `max(slot + 1)` hardens against hints in the
                            // past; u64::MAX parks the pair forever — it
                            // stays engaged (and in `active`) without ever
                            // re-entering the calendar.
                            let wake = self.protos[idx].wake_hint(slot).max(slot + 1);
                            self.awake[base + w] &= !bit;
                            if wake != u64::MAX {
                                self.calendar.entry(wake).or_default().push((i as u32, kk as u32));
                            }
                        }
                    }
                }
            }

            // 6. History, slot count, stop rules; stopping trials retire.
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if self.lanes[(w << 6) | b].end_slot(&config, slot) {
                        self.live[w] &= !(1u64 << b);
                    }
                }
            }
        }

        // Finalization: statuses are frozen once a trial retires, so one
        // pass at the end serves every trial.
        let mut reports = Vec::with_capacity(k);
        for trial in 0..k {
            let mut leaders = Vec::new();
            for i in 0..n {
                if self.protos[i * k + trial].status() == Status::Leader {
                    leaders.push(i as u64);
                }
            }
            let mut report = self.lanes[trial].finalize(&config);
            report.leaders = leaders;
            reports.push(report);
        }
        reports
    }
}

impl<P> std::fmt::Debug for BatchExactStations<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchExactStations")
            .field("n", &self.n)
            .field("trials", &self.k)
            .field("live", &self.live.iter().map(|w| w.count_ones()).sum::<u32>())
            .finish_non_exhaustive()
    }
}

/// Run `seeds.len()` lockstep trials with statically-dispatched stations
/// (`factory(trial, station)` builds each one). Returns per-trial reports
/// in seed order, each bit-identical to
/// `run_fast_exact(&config.with_seed(seeds[trial]), …)`; the config's own
/// `seed` field is ignored.
pub fn run_batch_exact_with<P: Protocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    seeds: &[u64],
    factory: impl FnMut(u64, u64) -> P,
) -> Vec<RunReport> {
    BatchExactStations::new(config, adversary, seeds, factory).run()
}

/// Boxed-factory shim over [`run_batch_exact_with`] — the same factory
/// shape as [`run_fast_exact`](crate::run_fast_exact), applied to every
/// trial of the batch.
pub fn run_batch_exact(
    config: &SimConfig,
    adversary: &AdversarySpec,
    seeds: &[u64],
    factory: impl Fn(u64) -> Box<dyn Protocol>,
) -> Vec<RunReport> {
    run_batch_exact_with(config, adversary, seeds, |_trial, station| factory(station))
}

/// Batched twin of [`run_fast_exact_faulty`](crate::run_fast_exact_faulty):
/// planned stations are wrapped in [`FaultyStation`] per `(station,
/// trial)` and the post-run leader-crash verdict comes from the plan.
pub fn run_batch_exact_faulty<F>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    plan: &FaultPlan,
    seeds: &[u64],
    factory: F,
) -> Vec<RunReport>
where
    F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
{
    let factory = Arc::new(factory);
    let mut reports =
        run_batch_exact_with(config, adversary, seeds, |_trial, i| match plan.get(i) {
            None => factory(i),
            Some(f) => {
                let fac = Arc::clone(&factory);
                Box::new(FaultyStation::new(
                    f.clone(),
                    plan.station_seed(i),
                    Box::new(move || fac(i)),
                )) as Box<dyn Protocol>
            }
        });
    for report in &mut reports {
        if report.leaders.len() <= 1 {
            if let Some(w) = report.leaders.first().copied().or(report.winner) {
                // Same full-horizon judgement as the per-trial faulty
                // backends: crash schedules are wall-clock.
                let horizon = config.max_slots.max(report.slots);
                if plan.leader_crashed(w, horizon) {
                    report.leader_crashed = true;
                }
            }
        }
    }
    reports
}

/// The uniform-protocol fast path: K trials of a [`PerStation`](crate::PerStation)-wrapped
/// [`UniformProtocol`] with **one** shared protocol state per trial.
///
/// # The uniform-path invariant
///
/// Running a uniform protocol through [`FastExactStations`] gives every
/// station its own `PerStation<U>` copy, but those copies can never
/// diverge while their stations run: per slot each running copy receives
/// exactly one `tx_prob` call (identical mutation) and then either
/// (a) a non-clean-single slot, where every running station — transmitter
/// or listener, under all three CD models — applies the *same* single
/// `on_state` update (a weak/no-CD transmitter's `TxAssumedCollision`
/// collapses to `Collision`, which is also what every listener hears on
/// any slot with transmitters or jamming; no-CD listeners collapse `Null`
/// to `Collision` too), or (b) a clean single, where every
/// divergently-updated station *terminates on the spot* (strong CD: the
/// transmitter becomes `Leader`, listeners `NonLeader`; weak/no-CD:
/// listeners become `NonLeader` and the transmitter — the only survivor —
/// absorbs one `on_state(Collision)`). Divergence and termination
/// coincide, so one shared `U` plus per-station status bitplanes
/// reproduce the fast backend's bits exactly; a terminating station's
/// `finished()` freezes at the shared state's pre-`on_state` value.
///
/// # Degenerate-probability word path
///
/// With the state shared, `tx_prob` is called once per trial per slot.
/// When it returns `p ≤ 0` every running station listens and when it
/// returns `p ≥ 1` every running station transmits — in both cases
/// *without consuming a draw*: `PerStation::act` skips the draw at
/// `p = 0`, and at `p = 1` the vendored `gen_bool(1.0)` is
/// unconditionally `true` while the per-slot [`StationRng`] stream is
/// discarded at slot end, so the skipped draw is unobservable. The
/// election-scale workloads (`AlwaysCollide`-style saturation phases)
/// spend almost every slot here, which is where the batch backend's
/// `≥10×` sweep throughput comes from: per-slot cost collapses from
/// `O(n)` draws to word-granularity bookkeeping.
///
/// Bit-identity contract: trial `k` matches
/// `run_fast_exact(&config.with_seed(seeds[k]), adversary, |_| PerStation::new(factory()))`
/// exactly, for any pure `factory` (same initial state per call).
pub struct BatchUniformStations<U> {
    config: SimConfig,
    n: usize,
    k: usize,
    words: usize,
    keys: Vec<u64>,
    /// Non-terminal membership, `[station * words + word]`.
    running: Vec<u64>,
    /// Elected leaders (strong-CD clean singles), same layout.
    leader: Vec<u64>,
    live: Vec<u64>,
    lanes: Vec<TrialLane>,
    /// One shared protocol state per trial — the invariant above is what
    /// makes this sufficient.
    shared: Vec<U>,
    /// Per trial: terminal stations whose frozen `finished()` was `true`.
    frozen_finished: Vec<u64>,
    /// Per-slot scratch: per-trial transmission probability, and the
    /// word-mask of trials needing per-station draws (`0 < p < 1`).
    ps: Vec<f64>,
    mid: Vec<u64>,
}

/// Lowest-indexed station still running in `trial` (only called when the
/// trial has exactly one).
fn find_single_running(running: &[u64], n: usize, words: usize, trial: usize) -> u64 {
    let (w, bit) = (trial / 64, trial % 64);
    for i in 0..n {
        if running[i * words + w] >> bit & 1 != 0 {
            return i as u64;
        }
    }
    unreachable!("caller guarantees a running station exists");
}

impl<U: UniformProtocol> BatchUniformStations<U> {
    /// Build the lockstep state; `factory()` must yield the same initial
    /// protocol state on every call (one call per trial).
    pub fn new(
        config: &SimConfig,
        adversary: &AdversarySpec,
        seeds: &[u64],
        mut factory: impl FnMut() -> U,
    ) -> Self {
        assert!(config.n >= 1, "need at least one station");
        let n = config.n as usize;
        assert!(n <= u32::MAX as usize, "batch backend indexes stations with u32");
        let k = seeds.len();
        assert!(k <= u32::MAX as usize, "batch backend indexes trials with u32");
        let words = k.div_ceil(64);

        let mut keys = Vec::with_capacity(n * k);
        for station in 0..n as u64 {
            for &seed in seeds {
                keys.push(station_key(seed, station));
            }
        }
        let shared: Vec<U> = (0..k).map(|_| factory()).collect();
        let mut lanes: Vec<TrialLane> =
            seeds.iter().map(|&s| TrialLane::new(config, adversary, s)).collect();
        // Construction-time fold: every station of a finished-at-birth
        // uniform protocol reports finished (and Running), so the trial
        // retires before slot 0 — exactly the fast backend's fold.
        for (lane, state) in lanes.iter_mut().zip(shared.iter()) {
            if state.finished() {
                lane.finished_active = config.n;
                lane.finished_total = config.n;
            }
        }

        let mut live = vec![u64::MAX; words];
        if let Some(last) = live.last_mut() {
            if !k.is_multiple_of(64) {
                *last = (1u64 << (k % 64)) - 1;
            }
        }
        let running: Vec<u64> = (0..n).flat_map(|_| live.iter().copied()).collect();

        BatchUniformStations {
            config: config.clone(),
            n,
            k,
            words,
            keys,
            running,
            leader: vec![0u64; n * words],
            live,
            lanes,
            shared,
            frozen_finished: vec![0u64; k],
            ps: vec![0.0; k],
            mid: vec![0u64; words],
        }
    }

    /// Drive every trial to completion; per-trial reports in seed order,
    /// bit-identical to solo fast-exact runs over `PerStation`.
    pub fn run(mut self) -> Vec<RunReport> {
        let config = self.config.clone();
        let (n, k, words) = (self.n, self.k, self.words);
        for slot in 0..config.max_slots {
            // 0. Retire all-finished trials before playing the slot.
            let mut any_live = false;
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if self.lanes[(w << 6) | b].finished() {
                        self.live[w] &= !(1u64 << b);
                    } else {
                        any_live = true;
                    }
                }
            }
            if !any_live {
                break;
            }

            // 1. Adversary pre-decisions + scratch reset.
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.lanes[(w << 6) | b].begin_slot();
                }
            }

            // 2. Action phase. One `tx_prob` call per trial resolves the
            // degenerate probabilities at word granularity; only trials
            // with 0 < p < 1 fall through to per-station draws.
            let slot_mat = slot_material(slot);
            let mut any_mid = false;
            self.mid.fill(0);
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let kk = (w << 6) | b;
                    if self.lanes[kk].active == 0 {
                        continue; // no running stations: nobody acts
                    }
                    // Same clamp-then-gate as PerStation::act, so NaN and
                    // negative probabilities take the no-draw listen path.
                    let p = self.shared[kk].tx_prob(slot).clamp(0.0, 1.0);
                    self.ps[kk] = p;
                    let lane = &mut self.lanes[kk];
                    if p == 1.0 {
                        lane.tx_count = lane.active;
                        if lane.active == 1 {
                            lane.lone = Some(find_single_running(&self.running, n, words, kk));
                        }
                    } else if p > 0.0 {
                        self.mid[w] |= 1u64 << b;
                        any_mid = true;
                    } else {
                        // NaN falls through `p > 0.0` to land here too.
                        lane.listen_count = lane.active;
                    }
                }
            }
            if any_mid {
                for i in 0..n {
                    let (base, ik) = (i * words, i * k);
                    for w in 0..words {
                        let mut m = self.running[base + w] & self.live[w] & self.mid[w];
                        while m != 0 {
                            let b = m.trailing_zeros() as usize;
                            m &= m - 1;
                            let kk = (w << 6) | b;
                            let mut rng =
                                StationRng::with_slot_material(self.keys[ik + kk], slot_mat);
                            let p = self.ps[kk];
                            let lane = &mut self.lanes[kk];
                            if rng.gen_bool(p) {
                                lane.tx_count += 1;
                                lane.lone = if lane.tx_count == 1 { Some(i as u64) } else { None };
                            } else {
                                lane.listen_count += 1;
                            }
                        }
                    }
                }
            }

            // 3. Commit + noise + truth + observers + resolution. The
            // estimate of the lowest-indexed non-terminal station is the
            // shared state's estimate (all running copies are identical).
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let kk = (w << 6) | b;
                    let estimate = if self.lanes[kk].trace.is_some() && self.lanes[kk].active > 0 {
                        self.shared[kk].estimate()
                    } else {
                        None
                    };
                    self.lanes[kk].commit_slot(&config, slot, estimate);
                }
            }

            // 4. Feedback: one shared-state update per trial, except on
            // clean singles where the divergently-updated stations all
            // terminate (see the invariant in the type docs).
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let kk = (w << 6) | b;
                    let active = self.lanes[kk].active;
                    if active == 0 {
                        continue; // nobody listens; nothing updates
                    }
                    let truth = self.lanes[kk].truth;
                    let bit = 1u64 << b;
                    if truth.is_clean_single() {
                        // Terminating stations freeze `finished()` at the
                        // shared state's pre-on_state value.
                        let pre_sf = self.shared[kk].finished();
                        let tx =
                            self.lanes[kk].lone.expect("clean single has exactly one transmitter")
                                as usize;
                        if matches!(config.cd, jle_radio::CdModel::Strong) {
                            if pre_sf {
                                self.frozen_finished[kk] += active;
                            }
                            for i in 0..n {
                                self.running[i * words + w] &= !bit;
                            }
                            self.leader[tx * words + w] |= bit;
                            self.lanes[kk].active = 0;
                        } else {
                            // Weak/no-CD: listeners terminate NonLeader;
                            // the transmitter absorbs one Collision.
                            if pre_sf {
                                self.frozen_finished[kk] += active - 1;
                            }
                            for i in 0..n {
                                if i != tx {
                                    self.running[i * words + w] &= !bit;
                                }
                            }
                            self.lanes[kk].active = 1;
                            self.shared[kk].on_state(slot, ChannelState::Collision);
                        }
                    } else {
                        // Every running station hears the same effective
                        // state: Null only on empty unjammed slots under
                        // a CD model that can tell (no-CD collapses Null
                        // to Collision).
                        let state = if !truth.jammed
                            && truth.transmitters == 0
                            && !matches!(config.cd, jle_radio::CdModel::NoCd)
                        {
                            ChannelState::Null
                        } else {
                            ChannelState::Collision
                        };
                        self.shared[kk].on_state(slot, state);
                    }
                    let sf = self.shared[kk].finished();
                    let lane = &mut self.lanes[kk];
                    lane.finished_active = if sf { lane.active } else { 0 };
                    lane.finished_total = self.frozen_finished[kk] + lane.finished_active;
                }
            }

            // 5. History, slot count, stop rules.
            for w in 0..words {
                let mut m = self.live[w];
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if self.lanes[(w << 6) | b].end_slot(&config, slot) {
                        self.live[w] &= !(1u64 << b);
                    }
                }
            }
        }

        let mut reports = Vec::with_capacity(k);
        for trial in 0..k {
            let (w, b) = (trial / 64, trial % 64);
            let mut leaders = Vec::new();
            for i in 0..n {
                if self.leader[i * words + w] >> b & 1 != 0 {
                    leaders.push(i as u64);
                }
            }
            let mut report = self.lanes[trial].finalize(&config);
            report.leaders = leaders;
            reports.push(report);
        }
        reports
    }
}

impl<U> std::fmt::Debug for BatchUniformStations<U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchUniformStations")
            .field("n", &self.n)
            .field("trials", &self.k)
            .field("live", &self.live.iter().map(|w| w.count_ones()).sum::<u32>())
            .finish_non_exhaustive()
    }
}

/// Run `seeds.len()` lockstep trials of a uniform protocol with one
/// shared state per trial. Bit-identical per trial to
/// `run_fast_exact(&config.with_seed(seeds[k]), adversary, |_| Box::new(PerStation::new(factory())))`
/// for any pure `factory`; this is the `≥10×` sweep path the
/// `batch_throughput` bench group and sweepd's `exact_election` units
/// ride.
pub fn run_batch_uniform<U: UniformProtocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    seeds: &[u64],
    factory: impl FnMut() -> U,
) -> Vec<RunReport> {
    BatchUniformStations::new(config, adversary, seeds, factory).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopRule;
    use crate::fast::{run_fast_exact, run_fast_exact_faulty};
    use crate::protocol::PerStation;
    use jle_adversary::{JamStrategyKind, Rate};
    use jle_radio::CdModel;

    /// Uniform fixed-probability protocol with state-update counters, so
    /// identity checks cover the `on_state` path, plus a working reset.
    #[derive(Debug, Clone)]
    struct Fixed {
        p: f64,
        nulls: u64,
        collisions: u64,
    }

    impl Fixed {
        fn new(p: f64) -> Self {
            Fixed { p, nulls: 0, collisions: 0 }
        }
    }

    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.p
        }
        fn on_state(&mut self, _: u64, state: ChannelState) {
            match state {
                ChannelState::Null => self.nulls += 1,
                ChannelState::Collision => self.collisions += 1,
                ChannelState::Single => {}
            }
        }
        fn estimate(&self) -> Option<f64> {
            Some((self.nulls as f64) - (self.collisions as f64))
        }
    }

    /// Duty-cycled non-uniform protocol exercising the sleep/wake
    /// calendar: transmit on its own phase, sleep through a stride.
    #[derive(Debug)]
    struct Pulse {
        phase: u64,
        stride: u64,
        status: Status,
    }

    impl Protocol for Pulse {
        fn act(&mut self, slot: u64, _rng: &mut dyn rand::RngCore) -> Action {
            if slot % self.stride == self.phase {
                Action::Transmit
            } else {
                Action::Sleep
            }
        }
        fn feedback(&mut self, _slot: u64, transmitted: bool, obs: jle_radio::Observation) {
            if obs.heard_single() {
                self.status = if transmitted { Status::Leader } else { Status::NonLeader };
            }
        }
        fn status(&self) -> Status {
            self.status
        }
        fn wake_hint(&self, slot: u64) -> u64 {
            let next = slot + 1;
            let offset = (self.phase + self.stride - next % self.stride) % self.stride;
            next + offset
        }
    }

    fn jammer() -> AdversarySpec {
        AdversarySpec::new(Rate::from_f64(0.4), 16, JamStrategyKind::Random { prob: 0.6 })
    }

    fn seeds(k: usize) -> Vec<u64> {
        (0..k as u64).map(|t| crate::streams::mix64(t ^ 0xBA7C_4EED)).collect()
    }

    fn assert_reports_match_fast(
        config: &SimConfig,
        adv: &AdversarySpec,
        seeds: &[u64],
        reports: &[RunReport],
        factory: impl Fn(u64) -> Box<dyn Protocol>,
    ) {
        assert_eq!(reports.len(), seeds.len());
        for (trial, (&seed, got)) in seeds.iter().zip(reports.iter()).enumerate() {
            let want = run_fast_exact(&config.clone().with_seed(seed), adv, &factory);
            assert_eq!(got, &want, "trial {trial} (seed {seed:#x}) diverged from fast-exact");
        }
    }

    #[test]
    fn general_path_matches_fast_exact_across_cd_models() {
        for cd in [CdModel::Strong, CdModel::Weak, CdModel::NoCd] {
            let config = SimConfig::new(9, cd).with_max_slots(600).with_trace(true);
            let adv = jammer();
            let seeds = seeds(10);
            let reports = run_batch_exact(&config, &adv, &seeds, |_| {
                Box::new(PerStation::new(Fixed::new(0.22)))
            });
            assert_reports_match_fast(&config, &adv, &seeds, &reports, |_| {
                Box::new(PerStation::new(Fixed::new(0.22)))
            });
        }
    }

    #[test]
    fn general_path_matches_fast_exact_with_noise_and_horizon() {
        let config = SimConfig::new(5, CdModel::Weak)
            .with_max_slots(96)
            .with_stop(StopRule::Horizon)
            .with_noise(0.15)
            .with_trace(true);
        let adv = jammer();
        let seeds = seeds(7);
        let reports =
            run_batch_exact(&config, &adv, &seeds, |_| Box::new(PerStation::new(Fixed::new(0.3))));
        assert_reports_match_fast(&config, &adv, &seeds, &reports, |_| {
            Box::new(PerStation::new(Fixed::new(0.3)))
        });
    }

    #[test]
    fn sleep_wake_calendar_matches_fast_exact() {
        // Duty-cycled stations route through the merged wake calendar;
        // station 0 never wins (phase collision with station 3).
        let config = SimConfig::new(6, CdModel::Strong)
            .with_max_slots(64)
            .with_stop(StopRule::FirstCleanSingle);
        let adv = AdversarySpec::passive();
        let seeds = seeds(5);
        let factory = |i: u64| -> Box<dyn Protocol> {
            Box::new(Pulse { phase: i % 3, stride: 3, status: Status::Running })
        };
        let reports = run_batch_exact(&config, &adv, &seeds, factory);
        assert_reports_match_fast(&config, &adv, &seeds, &reports, factory);
    }

    #[test]
    fn uniform_path_matches_fast_exact_across_cd_models_and_probs() {
        for cd in [CdModel::Strong, CdModel::Weak, CdModel::NoCd] {
            for p in [0.0_f64, 0.18, 0.5, 1.0] {
                let config = SimConfig::new(7, cd)
                    .with_max_slots(200)
                    .with_stop(StopRule::FirstCleanSingle)
                    .with_trace(true);
                let adv = jammer();
                let seeds = seeds(9);
                let reports = run_batch_uniform(&config, &adv, &seeds, || Fixed::new(p));
                assert_reports_match_fast(&config, &adv, &seeds, &reports, |_| {
                    Box::new(PerStation::new(Fixed::new(p)))
                });
            }
        }
    }

    #[test]
    fn uniform_path_matches_fast_exact_under_horizon_and_noise() {
        // Horizon runs continue past the election; the post-single tail
        // (zero or one running station) must stay in lockstep too.
        for cd in [CdModel::Strong, CdModel::Weak] {
            let config = SimConfig::new(4, cd)
                .with_max_slots(80)
                .with_stop(StopRule::Horizon)
                .with_noise(0.1)
                .with_trace(true);
            let adv = jammer();
            let seeds = seeds(6);
            let reports = run_batch_uniform(&config, &adv, &seeds, || Fixed::new(0.45));
            assert_reports_match_fast(&config, &adv, &seeds, &reports, |_| {
                Box::new(PerStation::new(Fixed::new(0.45)))
            });
        }
    }

    #[test]
    fn uniform_path_single_station_weak_cd() {
        // n = 1 exercises the "transmitter is the only survivor" branch
        // with zero listeners on the clean single.
        let config =
            SimConfig::new(1, CdModel::Weak).with_max_slots(50).with_stop(StopRule::Horizon);
        let adv = AdversarySpec::passive();
        let seeds = seeds(3);
        let reports = run_batch_uniform(&config, &adv, &seeds, || Fixed::new(1.0));
        assert_reports_match_fast(&config, &adv, &seeds, &reports, |_| {
            Box::new(PerStation::new(Fixed::new(1.0)))
        });
    }

    #[test]
    fn faulty_batch_matches_fast_exact_faulty_per_trial() {
        let config = SimConfig::new(8, CdModel::Strong).with_max_slots(400);
        let adv = jammer();
        let plan = FaultPlan::new(0xFA_57);
        let seeds = seeds(6);
        let factory = |_i: u64| -> Box<dyn Protocol> { Box::new(PerStation::new(Fixed::new(0.3))) };
        let reports = run_batch_exact_faulty(&config, &adv, &plan, &seeds, factory);
        assert_eq!(reports.len(), seeds.len());
        for (trial, (&seed, got)) in seeds.iter().zip(reports.iter()).enumerate() {
            let want = run_fast_exact_faulty(&config.clone().with_seed(seed), &adv, &plan, factory);
            assert_eq!(got, &want, "faulty trial {trial} diverged");
        }
    }

    #[test]
    fn empty_seed_slice_yields_no_reports() {
        let config = SimConfig::new(3, CdModel::Strong);
        let reports = run_batch_exact(&config, &AdversarySpec::passive(), &[], |_| {
            Box::new(PerStation::new(Fixed::new(0.5)))
        });
        assert!(reports.is_empty());
        let reports =
            run_batch_uniform(&config, &AdversarySpec::passive(), &[], || Fixed::new(0.5));
        assert!(reports.is_empty());
    }
}
