//! Fault injection: running elections beyond the paper's perfect-station
//! model.
//!
//! The paper's stations are flawless: always awake, always sensing, never
//! crashing. Real radios are not. This module injects deterministic,
//! seed-driven station faults into the exact engine without touching the
//! protocols themselves:
//!
//! * **crash** at a slot, with optional recovery (a recovered station
//!   reboots with *fresh* protocol state — crashes lose memory);
//! * **late wakeup** (staggered start): the station sleeps until its wake
//!   slot;
//! * **transient deafness**: observations in an interval are dropped
//!   before the protocol sees them;
//! * **sensing flips**: each received `Null`/`Collision` observation is
//!   independently flipped to the other with a per-station probability.
//!   A flip never fabricates or destroys a `Single` — sensing errors
//!   distort energy, not successful receptions — so validity (a `Leader`
//!   only on a heard `Single`) is preserved by construction.
//!
//! The injection points are [`FaultyStation`], an adapter wrapping any
//! [`Protocol`], and [`FaultyStations`], the [`StationSet`] backend that
//! wraps the whole station set (delegating the slot semantics to
//! [`ExactStations`]) and fills the report's degradation fields;
//! [`run_exact_faulty`] is the thin shim over [`crate::core::SimCore`].
//! Fault randomness comes from a dedicated per-station RNG derived from
//! the [`FaultPlan`] seed, so an empty plan leaves the engine's random
//! stream — and therefore the whole run — bit-for-bit identical to a
//! pristine [`crate::run_exact`] run.

use crate::config::SimConfig;
use crate::core::{SimCore, SlotActions, StationSet};
use crate::exact::ExactStations;
use crate::observer::StateProbe;
use crate::protocol::{Action, Protocol, Status};
use crate::report::RunReport;
use jle_adversary::AdversarySpec;
use jle_radio::{cd::Observation, ChannelState, SlotTruth};
use rand::{rngs::SmallRng, Rng, RngCore, SeedableRng};
use serde::{value::Error, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The faults scheduled for one station.
#[derive(Debug, Clone, PartialEq)]
pub struct StationFaults {
    /// First slot the station is awake (0 = from the start).
    pub wake_at: u64,
    /// Slot at which the station crashes (powers off mid-run).
    pub crash_at: Option<u64>,
    /// Slot at which a crashed station reboots — with fresh protocol
    /// state. Ignored without `crash_at`.
    pub recover_at: Option<u64>,
    /// Half-open interval `[from, until)` of slots whose observations are
    /// dropped before the protocol sees them.
    pub deaf: Option<(u64, u64)>,
    /// Probability that a received `Null`/`Collision` observation is
    /// flipped to the other (never touches `Single`s).
    pub sensing_flip_prob: f64,
}

impl Default for StationFaults {
    fn default() -> Self {
        StationFaults {
            wake_at: 0,
            crash_at: None,
            recover_at: None,
            deaf: None,
            sensing_flip_prob: 0.0,
        }
    }
}

impl StationFaults {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: crash (permanently) at `slot`.
    pub fn crash(mut self, slot: u64) -> Self {
        self.crash_at = Some(slot);
        self
    }

    /// Builder: crash at `slot`, reboot (fresh state) at `recover`.
    pub fn crash_with_recovery(mut self, slot: u64, recover: u64) -> Self {
        assert!(recover > slot, "recovery must follow the crash");
        self.crash_at = Some(slot);
        self.recover_at = Some(recover);
        self
    }

    /// Builder: sleep until `slot` (staggered wakeup).
    pub fn wake_at(mut self, slot: u64) -> Self {
        self.wake_at = slot;
        self
    }

    /// Builder: drop all observations in `[from, until)`.
    pub fn deaf_between(mut self, from: u64, until: u64) -> Self {
        assert!(until > from, "deaf interval must be non-empty");
        self.deaf = Some((from, until));
        self
    }

    /// Builder: flip each received `Null`/`Collision` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn flip_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "flip probability must be in [0,1], got {p}");
        self.sensing_flip_prob = p;
        self
    }

    /// Whether this entry schedules no fault at all.
    pub fn is_benign(&self) -> bool {
        *self == StationFaults::default()
    }

    /// Whether the station is down (asleep or crashed) in `slot`.
    pub fn down_at(&self, slot: u64) -> bool {
        if slot < self.wake_at {
            return true;
        }
        match self.crash_at {
            Some(c) if slot >= c => match self.recover_at {
                Some(r) => slot < r,
                None => true,
            },
            _ => false,
        }
    }

    /// Whether the station is deaf in `slot`.
    pub fn deaf_at(&self, slot: u64) -> bool {
        matches!(self.deaf, Some((a, b)) if slot >= a && slot < b)
    }

    /// Whether the station is crashed (and not yet recovered) at the end
    /// of a run of `end_slots` slots.
    pub fn crashed_at_end(&self, end_slots: u64) -> bool {
        match self.crash_at {
            Some(c) if c < end_slots => match self.recover_at {
                Some(r) => r >= end_slots,
                None => true,
            },
            _ => false,
        }
    }
}

/// SplitMix64 finalizer: decorrelates nearby seeds.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream tags for the seed-driven plan generators, so composed
/// generators draw from independent streams regardless of call order.
const TAG_CRASH: u64 = 0xC1;
const TAG_WAKE: u64 = 0xC2;
const TAG_DEAF: u64 = 0xC3;

/// A deterministic, seed-driven schedule of per-station faults.
///
/// Build one either explicitly ([`FaultPlan::with_station`]) or with the
/// random generators, which draw from streams derived from the plan seed
/// — the same `(seed, parameters)` always yields the same plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<u64, StationFaults>,
}

// Hand-written (de)serialization: the vendored derive handles neither
// `BTreeMap` nor tuple-typed fields, and fault plans must serialize
// canonically so the orchestrator can fingerprint them (BTreeMap iteration
// is already sorted by station index, so the rendering is deterministic).
impl Serialize for StationFaults {
    fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("wake_at".to_string(), self.wake_at.to_json_value()),
            ("crash_at".to_string(), self.crash_at.to_json_value()),
            ("recover_at".to_string(), self.recover_at.to_json_value()),
            ("deaf".to_string(), self.deaf.to_json_value()),
            ("sensing_flip_prob".to_string(), self.sensing_flip_prob.to_json_value()),
        ])
    }
}

impl Deserialize for StationFaults {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| Error::missing_field("StationFaults", name)).cloned()
        };
        Ok(StationFaults {
            wake_at: u64::from_json_value(&field("wake_at")?)?,
            crash_at: Option::<u64>::from_json_value(&field("crash_at")?)?,
            recover_at: Option::<u64>::from_json_value(&field("recover_at")?)?,
            deaf: Option::<(u64, u64)>::from_json_value(&field("deaf")?)?,
            sensing_flip_prob: f64::from_json_value(&field("sensing_flip_prob")?)?,
        })
    }
}

impl Serialize for FaultPlan {
    fn to_json_value(&self) -> Value {
        let faults = self
            .faults
            .iter()
            .map(|(station, f)| (station.to_string(), f.to_json_value()))
            .collect();
        Value::Map(vec![
            ("seed".to_string(), self.seed.to_json_value()),
            ("faults".to_string(), Value::Map(faults)),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let seed_v = v.get("seed").ok_or_else(|| Error::missing_field("FaultPlan", "seed"))?;
        let faults_v =
            v.get("faults").ok_or_else(|| Error::missing_field("FaultPlan", "faults"))?;
        let entries =
            faults_v.as_map().ok_or_else(|| Error::custom("FaultPlan.faults must be an object"))?;
        let mut faults = BTreeMap::new();
        for (station, f) in entries {
            let idx: u64 = station
                .parse()
                .map_err(|_| Error::custom(format!("bad station index key {station:?}")))?;
            faults.insert(idx, StationFaults::from_json_value(f)?);
        }
        Ok(FaultPlan { seed: u64::from_json_value(seed_v)?, faults })
    }
}

impl FaultPlan {
    /// An empty plan with the given seed for its generators.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: BTreeMap::new() }
    }

    /// An empty plan (seed 0). Running with it is bit-identical to a
    /// pristine run.
    pub fn empty() -> Self {
        Self::new(0)
    }

    /// Whether no station has any fault scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.values().all(StationFaults::is_benign)
    }

    /// Number of stations with a (possibly benign) fault entry.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The faults of station `i`, if any are scheduled.
    pub fn get(&self, i: u64) -> Option<&StationFaults> {
        self.faults.get(&i)
    }

    /// Builder: schedule explicit faults for station `i`.
    pub fn with_station(mut self, i: u64, faults: StationFaults) -> Self {
        self.faults.insert(i, faults);
        self
    }

    fn entry(&mut self, i: u64) -> &mut StationFaults {
        self.faults.entry(i).or_default()
    }

    fn tag_rng(&self, tag: u64) -> SmallRng {
        SmallRng::seed_from_u64(mix(self.seed ^ mix(tag)))
    }

    /// The seed of station `i`'s private fault RNG (sensing flips).
    pub fn station_seed(&self, i: u64) -> u64 {
        mix(self.seed ^ mix(i.wrapping_add(1)))
    }

    /// Builder: each of the `n` stations independently crashes with
    /// probability `prob`, at a uniform slot in `[0, window)`.
    pub fn with_random_crashes(mut self, n: u64, prob: f64, window: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "crash probability must be in [0,1]");
        let mut rng = self.tag_rng(TAG_CRASH);
        for i in 0..n {
            if prob > 0.0 && rng.gen_bool(prob) {
                let at = rng.gen_range(0..window.max(1));
                self.entry(i).crash_at = Some(at);
            }
        }
        self
    }

    /// Builder: every station already scheduled to crash reboots
    /// `downtime` slots after its crash (fresh protocol state).
    pub fn with_recoveries(mut self, downtime: u64) -> Self {
        let downtime = downtime.max(1);
        for f in self.faults.values_mut() {
            if let Some(c) = f.crash_at {
                f.recover_at = Some(c + downtime);
            }
        }
        self
    }

    /// Builder: each of the `n` stations wakes at a uniform slot in
    /// `[0, max_stagger]`.
    pub fn with_staggered_wakeups(mut self, n: u64, max_stagger: u64) -> Self {
        if max_stagger == 0 {
            return self;
        }
        let mut rng = self.tag_rng(TAG_WAKE);
        for i in 0..n {
            let at = rng.gen_range(0..=max_stagger);
            if at > 0 {
                self.entry(i).wake_at = at;
            }
        }
        self
    }

    /// Builder: each of the `n` stations independently goes deaf with
    /// probability `prob`, for `duration` slots starting at a uniform slot
    /// in `[0, onset_window)`.
    pub fn with_random_deafness(
        mut self,
        n: u64,
        prob: f64,
        onset_window: u64,
        duration: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&prob), "deafness probability must be in [0,1]");
        let duration = duration.max(1);
        let mut rng = self.tag_rng(TAG_DEAF);
        for i in 0..n {
            if prob > 0.0 && rng.gen_bool(prob) {
                let from = rng.gen_range(0..onset_window.max(1));
                self.entry(i).deaf = Some((from, from + duration));
            }
        }
        self
    }

    /// Builder: give all `n` stations the same sensing-flip probability.
    pub fn with_sensing_flips(mut self, n: u64, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "flip probability must be in [0,1]");
        if prob > 0.0 {
            for i in 0..n {
                self.entry(i).sensing_flip_prob = prob;
            }
        }
        self
    }

    /// Whether the station holding `Leader` (or the recorded winner) is
    /// crashed at the end of a run of `end_slots` slots.
    pub fn leader_crashed(&self, leader: u64, end_slots: u64) -> bool {
        self.get(leader).is_some_and(|f| f.crashed_at_end(end_slots))
    }
}

/// An adapter wrapping any [`Protocol`] with a [`StationFaults`] schedule.
///
/// While down (pre-wakeup or crashed) the station sleeps: it neither
/// draws from the engine RNG nor receives observations — exactly what the
/// exact engine does for a voluntarily sleeping station. On recovery the
/// inner protocol is rebuilt from the respawn factory (crash = state
/// loss). Deaf slots drop the observation before the inner protocol sees
/// it; sensing flips exchange `Null`/`Collision` using the adapter's
/// private RNG (so the engine's stream is untouched).
pub struct FaultyStation {
    inner: Box<dyn Protocol>,
    respawn: Box<dyn FnMut() -> Box<dyn Protocol> + Send>,
    faults: StationFaults,
    rng: SmallRng,
    crashed: bool,
    rebooted: bool,
}

impl FaultyStation {
    /// Wrap the protocol built by `respawn` with the given fault schedule.
    /// `fault_seed` seeds the private sensing-flip RNG (use
    /// [`FaultPlan::station_seed`]).
    pub fn new(
        faults: StationFaults,
        fault_seed: u64,
        mut respawn: Box<dyn FnMut() -> Box<dyn Protocol> + Send>,
    ) -> Self {
        let inner = respawn();
        FaultyStation {
            inner,
            respawn,
            faults,
            rng: SmallRng::seed_from_u64(fault_seed),
            crashed: false,
            rebooted: false,
        }
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &StationFaults {
        &self.faults
    }
}

impl std::fmt::Debug for FaultyStation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStation")
            .field("faults", &self.faults)
            .field("crashed", &self.crashed)
            .finish_non_exhaustive()
    }
}

impl Protocol for FaultyStation {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        if self.faults.down_at(slot) {
            if self.faults.crash_at.is_some_and(|c| slot >= c) {
                self.crashed = true;
            }
            return Action::Sleep;
        }
        if self.crashed || (self.faults.crash_at.is_some_and(|c| slot >= c) && !self.rebooted) {
            // Recovery: reboot with fresh protocol state. The second
            // disjunct covers the active-set backend, which (guided by
            // `wake_hint`) never calls `act` during the crash window and
            // so never sets `crashed`; `rebooted` keeps the respawn a
            // once-only event on both paths.
            self.inner = (self.respawn)();
            self.crashed = false;
            self.rebooted = true;
        }
        self.inner.act(slot, rng)
    }

    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        if self.faults.down_at(slot) || self.faults.deaf_at(slot) {
            return; // dropped: the protocol never learns of this slot
        }
        let obs = match obs {
            Observation::State(s @ (ChannelState::Null | ChannelState::Collision))
                if self.faults.sensing_flip_prob > 0.0
                    && self.rng.gen_bool(self.faults.sensing_flip_prob) =>
            {
                Observation::State(match s {
                    ChannelState::Null => ChannelState::Collision,
                    _ => ChannelState::Null,
                })
            }
            other => other,
        };
        self.inner.feedback(slot, transmitted, obs);
    }

    fn status(&self) -> Status {
        self.inner.status()
    }

    fn finished(&self) -> bool {
        // A down station still reports its last state; `finished` only
        // matters under the exact engine's all-terminal-or-finished
        // guard, where a crashed-forever station pins the run to the cap
        // exactly as it did before `finished` existed.
        self.inner.finished()
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    fn state_probe(&self) -> Option<(&'static str, Option<f64>)> {
        if self.crashed {
            return Some(("crashed", None));
        }
        self.inner.state_probe()
    }

    fn wake_hint(&self, slot: u64) -> u64 {
        if self.faults.down_at(slot) {
            if slot < self.faults.wake_at {
                return self.faults.wake_at;
            }
            // In the crash window: sleep until recovery (or forever).
            return self.faults.recover_at.unwrap_or(u64::MAX);
        }
        let hint = self.inner.wake_hint(slot);
        match self.faults.crash_at {
            // An upcoming crash must be revisited at its boundary even if
            // the inner protocol withdrew for longer: a recovery respawns
            // *fresh* state, which may want to act again.
            Some(c) if c > slot => hint.min(c),
            _ => hint,
        }
    }
}

/// The fault-injecting [`StationSet`] backend: an [`ExactStations`] whose
/// planned stations are wrapped in [`FaultyStation`], plus the post-run
/// degradation verdict from the [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyStations<'p> {
    inner: ExactStations,
    plan: &'p FaultPlan,
}

impl<'p> FaultyStations<'p> {
    /// Build the station set: stations without a plan entry come from
    /// `factory` directly (zero overhead); stations with one are wrapped
    /// in [`FaultyStation`] seeded from [`FaultPlan::station_seed`].
    pub fn new<F>(config: &SimConfig, plan: &'p FaultPlan, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let inner = ExactStations::new(config, |i| match plan.get(i) {
            None => factory(i),
            Some(f) => {
                let fac = Arc::clone(&factory);
                Box::new(FaultyStation::new(
                    f.clone(),
                    plan.station_seed(i),
                    Box::new(move || fac(i)),
                ))
            }
        });
        FaultyStations { inner, plan }
    }
}

impl StationSet for FaultyStations<'_> {
    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn act(&mut self, slot: u64, config: &SimConfig, rng: &mut SmallRng) -> SlotActions {
        self.inner.act(slot, config, rng)
    }

    fn pick_winner(
        &mut self,
        actions: &SlotActions,
        config: &SimConfig,
        rng: &mut SmallRng,
    ) -> Option<u64> {
        self.inner.pick_winner(actions, config, rng)
    }

    fn feedback(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        self.inner.feedback(slot, truth, config)
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    fn collect_probes(&self, out: &mut Vec<StateProbe>) {
        self.inner.collect_probes(out)
    }

    fn should_stop(
        &mut self,
        truth: &SlotTruth,
        config: &SimConfig,
        report: &mut RunReport,
    ) -> bool {
        self.inner.should_stop(truth, config, report)
    }

    fn finalize(&mut self, config: &SimConfig, report: &mut RunReport) {
        self.inner.finalize(config, report);
        if report.leaders.len() <= 1 {
            if let Some(w) = report.leaders.first().copied().or(report.winner) {
                // Judge against the full horizon, not the (possibly
                // early) stop slot: crash schedules are wall-clock, so a
                // winner that resolved the election at slot 40 and
                // crashes at slot 900 still leaves the network
                // leaderless.
                let horizon = config.max_slots.max(report.slots);
                if self.plan.leader_crashed(w, horizon) {
                    report.leader_crashed = true;
                }
            }
        }
    }
}

/// Run the exact engine with the given fault plan applied on top of
/// `factory`.
///
/// Stations without a plan entry are built by `factory` directly (zero
/// overhead); stations with one are wrapped in [`FaultyStation`]. After
/// the run the report's degradation fields are filled in: if the elected
/// leader (or recorded winner) is scheduled to be crashed — and not yet
/// recovered — at the end of the simulated horizon (`max_slots`; crashes
/// are wall-clock scheduled, so a leader elected before its crash slot
/// still goes down), [`RunReport::leader_crashed`] is set and
/// [`RunReport::outcome`](crate::report::RunReport::outcome) reports
/// [`Outcome::LeaderCrashed`](crate::report::Outcome::LeaderCrashed).
pub fn run_exact_faulty<F>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    plan: &FaultPlan,
    factory: F,
) -> RunReport
where
    F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
{
    let mut stations = FaultyStations::new(config, plan, factory);
    SimCore::new(config, adversary).run(&mut stations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopRule;
    use crate::exact::run_exact;
    use crate::protocol::{PerStation, UniformProtocol};
    use crate::report::Outcome;
    use jle_radio::CdModel;

    /// Fixed-probability transmitter (uniform).
    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn fixed_factory(p: f64) -> impl Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static {
        move |_| Box::new(PerStation::new(Fixed(p)))
    }

    #[test]
    fn empty_plan_is_bit_identical_to_pristine_run() {
        let config = SimConfig::new(6, CdModel::Strong).with_seed(42).with_max_slots(5_000);
        let adv = AdversarySpec::passive();
        let pristine = run_exact(&config, &adv, |_| Box::new(PerStation::new(Fixed(0.3))));
        let faulty = run_exact_faulty(&config, &adv, &FaultPlan::empty(), fixed_factory(0.3));
        assert_eq!(pristine.resolved_at, faulty.resolved_at);
        assert_eq!(pristine.winner, faulty.winner);
        assert_eq!(pristine.counts, faulty.counts);
        assert_eq!(pristine.energy, faulty.energy);
    }

    #[test]
    fn benign_entry_is_bit_identical_too() {
        // A plan with explicit all-default entries must also leave the
        // engine stream untouched: the adapter draws nothing extra.
        let config = SimConfig::new(4, CdModel::Strong).with_seed(7).with_max_slots(5_000);
        let adv = AdversarySpec::passive();
        let plan = (0..4).fold(FaultPlan::new(9), |p, i| p.with_station(i, StationFaults::none()));
        let pristine = run_exact(&config, &adv, |_| Box::new(PerStation::new(Fixed(0.4))));
        let faulty = run_exact_faulty(&config, &adv, &plan, fixed_factory(0.4));
        assert_eq!(pristine.resolved_at, faulty.resolved_at);
        assert_eq!(pristine.winner, faulty.winner);
        assert_eq!(pristine.counts, faulty.counts);
    }

    #[test]
    fn crashed_station_goes_silent() {
        // Weak CD: a lone always-transmitter never learns it won (the
        // paper's Function 3) and keeps transmitting — until it crashes
        // at slot 3, after which the channel is silent to the cap.
        let config = SimConfig::new(1, CdModel::Weak)
            .with_seed(1)
            .with_max_slots(10)
            .with_stop(StopRule::AllTerminated);
        let plan = FaultPlan::new(0).with_station(0, StationFaults::none().crash(3));
        let r = run_exact_faulty(&config, &AdversarySpec::passive(), &plan, fixed_factory(1.0));
        assert_eq!(r.energy.transmissions, 3);
        assert_eq!(r.counts.singles, 3);
        assert_eq!(r.counts.nulls, 7);
    }

    #[test]
    fn recovery_reboots_with_fresh_state() {
        // Weak CD again; crash at 2, recover at 5: transmissions in slots
        // 0,1 and 5..10.
        let config = SimConfig::new(1, CdModel::Weak)
            .with_seed(1)
            .with_max_slots(10)
            .with_stop(StopRule::AllTerminated);
        let plan =
            FaultPlan::new(0).with_station(0, StationFaults::none().crash_with_recovery(2, 5));
        let r = run_exact_faulty(&config, &AdversarySpec::passive(), &plan, fixed_factory(1.0));
        assert_eq!(r.energy.transmissions, 7);
        assert_eq!(r.counts.nulls, 3);
    }

    #[test]
    fn late_wakeup_delays_first_transmission() {
        let config = SimConfig::new(1, CdModel::Strong).with_seed(1).with_max_slots(20);
        let plan = FaultPlan::new(0).with_station(0, StationFaults::none().wake_at(4));
        let r = run_exact_faulty(&config, &AdversarySpec::passive(), &plan, fixed_factory(1.0));
        assert_eq!(r.resolved_at, Some(4), "first possible Single is the wake slot");
    }

    #[test]
    fn deaf_station_misses_the_observation() {
        // Strong CD, 2 stations, station 1 deaf for the whole run. The
        // PerStation wrapper turns a heard Single into NonLeader — a deaf
        // station never hears it and stays Running.
        let config = SimConfig::new(2, CdModel::Strong)
            .with_seed(5)
            .with_max_slots(10_000)
            .with_stop(StopRule::FirstCleanSingle);
        let plan =
            FaultPlan::new(0).with_station(1, StationFaults::none().deaf_between(0, u64::MAX));
        let r = run_exact_faulty(&config, &AdversarySpec::passive(), &plan, fixed_factory(0.5));
        assert!(r.resolved_at.is_some());
        if r.winner == Some(0) {
            // The deaf loser never learned: exactly one Leader, station 0.
            assert_eq!(r.leaders, vec![0]);
        }
    }

    #[test]
    fn sensing_flips_never_touch_singles() {
        // A station with flip probability 1.0 flips every Null/Collision
        // — but Singles always get through: delivering one to a wrapped
        // PerStation must still terminate it as NonLeader.
        let mut flipped = FaultyStation::new(
            StationFaults::none().flip_prob(1.0),
            123,
            Box::new(|| Box::new(PerStation::new(Fixed(0.0))) as Box<dyn Protocol>),
        );
        flipped.feedback(0, false, Observation::State(ChannelState::Null));
        assert_eq!(flipped.status(), Status::Running, "flipped Null stays non-terminal");
        flipped.feedback(1, false, Observation::State(ChannelState::Single));
        assert_eq!(flipped.status(), Status::NonLeader);
    }

    #[test]
    fn all_crashed_run_hits_the_cap() {
        let config = SimConfig::new(3, CdModel::Strong).with_seed(2).with_max_slots(100);
        let plan = (0..3)
            .fold(FaultPlan::new(1), |p, i| p.with_station(i, StationFaults::none().crash(0)));
        let r = run_exact_faulty(&config, &AdversarySpec::passive(), &plan, fixed_factory(1.0));
        assert!(r.timed_out);
        assert!(r.cap_hit);
        assert_eq!(r.outcome(), Outcome::DeadlineExceeded);
        assert_eq!(r.energy.total(), 0, "crashed stations spend no energy");
    }

    #[test]
    fn leader_crash_is_reported() {
        // Station 0 elects itself at slot 0 and crashes at slot 2; the
        // run continues (station 1 is deaf and never terminates) so the
        // crash takes effect before the end: the network is leaderless
        // again and the taxonomy must say so.
        let config = SimConfig::new(2, CdModel::Strong)
            .with_seed(1)
            .with_max_slots(10)
            .with_stop(StopRule::AllTerminated);
        let plan = FaultPlan::new(0)
            .with_station(0, StationFaults::none().crash(2))
            .with_station(1, StationFaults::none().deaf_between(0, u64::MAX));
        let r = run_exact_faulty(&config, &AdversarySpec::passive(), &plan, move |i| {
            Box::new(PerStation::new(Fixed(if i == 0 { 1.0 } else { 0.0 })))
        });
        assert_eq!(r.resolved_at, Some(0));
        assert_eq!(r.leaders, vec![0]);
        assert!(r.leader_crashed);
        assert_eq!(r.outcome(), Outcome::LeaderCrashed);
    }

    #[test]
    fn plan_generators_are_deterministic() {
        let mk = || {
            FaultPlan::new(77)
                .with_random_crashes(32, 0.5, 1000)
                .with_recoveries(100)
                .with_staggered_wakeups(32, 64)
                .with_random_deafness(32, 0.25, 500, 50)
                .with_sensing_flips(32, 0.01)
        };
        assert_eq!(mk(), mk());
        assert!(!mk().is_empty());
        // A different seed gives a different plan.
        let other = FaultPlan::new(78).with_random_crashes(32, 0.5, 1000);
        assert_ne!(mk(), other);
    }

    #[test]
    fn generator_streams_are_independent_of_call_order() {
        let a = FaultPlan::new(5).with_random_crashes(16, 0.5, 100).with_staggered_wakeups(16, 8);
        let b = FaultPlan::new(5).with_staggered_wakeups(16, 8).with_random_crashes(16, 0.5, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn down_at_and_crashed_at_end_logic() {
        let f = StationFaults::none().wake_at(3).crash_with_recovery(10, 20);
        assert!(f.down_at(0) && f.down_at(2));
        assert!(!f.down_at(3) && !f.down_at(9));
        assert!(f.down_at(10) && f.down_at(19));
        assert!(!f.down_at(20));
        assert!(f.crashed_at_end(15), "crashed, not yet recovered");
        assert!(!f.crashed_at_end(21), "recovered before the end");
        assert!(!f.crashed_at_end(10), "crash never took effect");
        let g = StationFaults::none().crash(4);
        assert!(g.crashed_at_end(5));
        assert!(!g.crashed_at_end(4));
    }
}
