//! Churn: open-world station populations (join / leave / rejoin).
//!
//! Every other scenario in this repo fixes the station population at slot
//! 0. [`crate::faults`] can *remove* stations (crash, stagger, deafness)
//! but never add one mid-run. This module closes the gap with a
//! seed-driven, canonically-serializable [`ChurnPlan`]: stations *join*
//! the network mid-run with fresh protocol state and no history, *leave*
//! (power off), and optionally *rejoin* later — again with fresh state,
//! because a departure loses memory exactly like a crash does.
//!
//! Churn deliberately does not grow a third station-set backend. A churn
//! schedule lowers onto the existing fault machinery via
//! [`ChurnPlan::overlay`]:
//!
//! * **join** at slot `j` ⇒ `wake_at = j` (the station sleeps — draws no
//!   randomness, hears nothing — until it appears, so it joins with no
//!   history);
//! * **leave** at slot `l` ⇒ `crash_at = l`;
//! * **rejoin** at slot `r` ⇒ `recover_at = r` (the existing respawn path
//!   rebuilds the protocol from the factory: fresh state).
//!
//! Both exact backends therefore support churn unchanged: the legacy
//! [`crate::FaultyStations`] path and the fast backend's
//! [`crate::FaultyStation`] wake-hint path, where joins and rejoins fold
//! into the bucketed wake calendar so sleep-heavy churn runs stay fast.
//! An empty plan lowers to an empty [`FaultPlan`], which is proven
//! bit-identical to a pristine run on both engines.
//!
//! `SimConfig::n` counts every station that is ever present; a joiner
//! occupies its station index from slot 0 but is indistinguishable from a
//! sleeping station until its join slot.

use crate::config::SimConfig;
use crate::faults::{FaultPlan, StationFaults};
use crate::protocol::Protocol;
use crate::report::RunReport;
use jle_adversary::AdversarySpec;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{value::Error, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// The churn schedule of one station.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StationChurn {
    /// First slot the station is part of the network (0 = founding
    /// member, present from the start).
    pub join_at: u64,
    /// Slot at which the station leaves (powers off mid-run).
    pub leave_at: Option<u64>,
    /// Slot at which a departed station rejoins — with fresh protocol
    /// state and no history. Ignored without `leave_at`.
    pub rejoin_at: Option<u64>,
}

impl StationChurn {
    /// A founding member that never churns.
    pub fn founding() -> Self {
        Self::default()
    }

    /// Builder: join the network at `slot`.
    pub fn joining_at(mut self, slot: u64) -> Self {
        self.join_at = slot;
        self
    }

    /// Builder: leave (permanently) at `slot`.
    pub fn leaving_at(mut self, slot: u64) -> Self {
        self.leave_at = Some(slot);
        self
    }

    /// Builder: leave at `slot`, rejoin (fresh state) at `rejoin`.
    pub fn leave_and_rejoin(mut self, slot: u64, rejoin: u64) -> Self {
        assert!(rejoin > slot, "rejoin must follow the departure");
        self.leave_at = Some(slot);
        self.rejoin_at = Some(rejoin);
        self
    }

    /// Whether this entry schedules no churn at all.
    pub fn is_benign(&self) -> bool {
        *self == StationChurn::default()
    }

    /// Whether the station is part of the network in `slot`.
    pub fn present_at(&self, slot: u64) -> bool {
        if slot < self.join_at {
            return false;
        }
        match self.leave_at {
            Some(l) if slot >= l => match self.rejoin_at {
                Some(r) => slot >= r,
                None => false,
            },
            _ => true,
        }
    }
}

/// SplitMix64 finalizer: decorrelates nearby seeds (same scheme as the
/// fault-plan generators, different stream tags).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream tags for the seed-driven generators: disjoint from the
/// fault-plan tags (`0xC1..=0xC3`) so a churn plan and a fault plan built
/// from the same seed still draw from independent streams.
const TAG_JOIN: u64 = 0xC4;
const TAG_LEAVE: u64 = 0xC5;

/// A deterministic, seed-driven schedule of station churn.
///
/// Build one explicitly ([`ChurnPlan::with_station`]) or with the random
/// generators, which draw from streams derived from the plan seed — the
/// same `(seed, parameters)` always yields the same plan, and the
/// generators compose independently of call order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    seed: u64,
    churn: BTreeMap<u64, StationChurn>,
}

// Hand-written (de)serialization, mirroring `FaultPlan`'s: the vendored
// derive handles neither `BTreeMap` nor the stringified keys, and churn
// plans must serialize canonically so the orchestrator can fingerprint
// them (BTreeMap iteration is already sorted by station index).
impl Serialize for StationChurn {
    fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("join_at".to_string(), self.join_at.to_json_value()),
            ("leave_at".to_string(), self.leave_at.to_json_value()),
            ("rejoin_at".to_string(), self.rejoin_at.to_json_value()),
        ])
    }
}

impl Deserialize for StationChurn {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| Error::missing_field("StationChurn", name)).cloned()
        };
        Ok(StationChurn {
            join_at: u64::from_json_value(&field("join_at")?)?,
            leave_at: Option::<u64>::from_json_value(&field("leave_at")?)?,
            rejoin_at: Option::<u64>::from_json_value(&field("rejoin_at")?)?,
        })
    }
}

impl Serialize for ChurnPlan {
    fn to_json_value(&self) -> Value {
        let churn = self
            .churn
            .iter()
            .map(|(station, c)| (station.to_string(), c.to_json_value()))
            .collect();
        Value::Map(vec![
            ("seed".to_string(), self.seed.to_json_value()),
            ("churn".to_string(), Value::Map(churn)),
        ])
    }
}

impl Deserialize for ChurnPlan {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let seed_v = v.get("seed").ok_or_else(|| Error::missing_field("ChurnPlan", "seed"))?;
        let churn_v = v.get("churn").ok_or_else(|| Error::missing_field("ChurnPlan", "churn"))?;
        let entries =
            churn_v.as_map().ok_or_else(|| Error::custom("ChurnPlan.churn must be an object"))?;
        let mut churn = BTreeMap::new();
        for (station, c) in entries {
            let idx: u64 = station
                .parse()
                .map_err(|_| Error::custom(format!("bad station index key {station:?}")))?;
            churn.insert(idx, StationChurn::from_json_value(c)?);
        }
        Ok(ChurnPlan { seed: u64::from_json_value(seed_v)?, churn })
    }
}

impl ChurnPlan {
    /// An empty plan with the given seed for its generators.
    pub fn new(seed: u64) -> Self {
        ChurnPlan { seed, churn: BTreeMap::new() }
    }

    /// An empty plan (seed 0). Running with it is bit-identical to a
    /// pristine run on both exact backends.
    pub fn empty() -> Self {
        Self::new(0)
    }

    /// Whether no station has any churn scheduled.
    pub fn is_empty(&self) -> bool {
        self.churn.values().all(StationChurn::is_benign)
    }

    /// Number of stations with a (possibly benign) churn entry.
    pub fn len(&self) -> usize {
        self.churn.len()
    }

    /// The churn schedule of station `i`, if any.
    pub fn get(&self, i: u64) -> Option<&StationChurn> {
        self.churn.get(&i)
    }

    /// Builder: schedule explicit churn for station `i`.
    pub fn with_station(mut self, i: u64, churn: StationChurn) -> Self {
        self.churn.insert(i, churn);
        self
    }

    fn entry(&mut self, i: u64) -> &mut StationChurn {
        self.churn.entry(i).or_default()
    }

    fn tag_rng(&self, tag: u64) -> SmallRng {
        SmallRng::seed_from_u64(mix(self.seed ^ mix(tag)))
    }

    /// Builder: each of the `n` stations independently is a *late joiner*
    /// with probability `prob`, appearing at a uniform slot in
    /// `[1, window]` (slot 0 joiners are founding members, so the draw
    /// starts at 1).
    pub fn with_staggered_joins(mut self, n: u64, prob: f64, window: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "join probability must be in [0,1]");
        let mut rng = self.tag_rng(TAG_JOIN);
        for i in 0..n {
            if prob > 0.0 && rng.gen_bool(prob) {
                let at = rng.gen_range(1..=window.max(1));
                self.entry(i).join_at = at;
            }
        }
        self
    }

    /// Builder: each of the `n` stations independently leaves with
    /// probability `prob`, at a uniform slot in `[0, window)`. The draw
    /// is *not* clamped against the station's join slot (that would make
    /// the composed generators order-dependent); a departure scheduled at
    /// or before the join simply means the station never shows up until
    /// its rejoin slot, consistently in both [`StationChurn::present_at`]
    /// and the lowered fault plan.
    pub fn with_random_leaves(mut self, n: u64, prob: f64, window: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "leave probability must be in [0,1]");
        let mut rng = self.tag_rng(TAG_LEAVE);
        for i in 0..n {
            if prob > 0.0 && rng.gen_bool(prob) {
                let at = rng.gen_range(0..window.max(1));
                self.entry(i).leave_at = Some(at);
            }
        }
        self
    }

    /// Builder: every station scheduled to leave rejoins `downtime` slots
    /// after its departure (fresh protocol state).
    pub fn with_rejoins(mut self, downtime: u64) -> Self {
        let downtime = downtime.max(1);
        for c in self.churn.values_mut() {
            if let Some(l) = c.leave_at {
                c.rejoin_at = Some(l + downtime);
            }
        }
        self
    }

    /// Number of stations (out of `n`) present in `slot` — the ground
    /// truth a size-estimation protocol under churn is judged against.
    pub fn live_at(&self, slot: u64, n: u64) -> u64 {
        (0..n).filter(|i| self.get(*i).is_none_or(|c| c.present_at(slot))).count() as u64
    }

    /// The last slot at which any churn event (join, leave, rejoin)
    /// happens; `0` for an empty plan. After this slot the population is
    /// static — the convergence property is judged from here.
    pub fn last_event(&self) -> u64 {
        self.churn
            .values()
            .flat_map(|c| {
                [Some(c.join_at), c.leave_at, c.rejoin_at.filter(|_| c.leave_at.is_some())]
            })
            .flatten()
            .max()
            .unwrap_or(0)
    }

    /// Lower this churn schedule onto `base`, yielding the fault plan
    /// that both exact backends already know how to run: join ⇒ `wake_at`
    /// (kept no earlier than the base's wake), leave ⇒ `crash_at`, rejoin
    /// ⇒ `recover_at`. Where a churn entry schedules a departure it takes
    /// precedence over the base entry's crash schedule (the two encode
    /// the same mechanism); base deafness and sensing flips are kept.
    pub fn overlay(&self, base: &FaultPlan) -> FaultPlan {
        let mut plan = base.clone();
        for (&i, c) in &self.churn {
            if c.is_benign() {
                // Preserve "has an entry" (the wrapped-station topology)
                // without perturbing the base schedule.
                if plan.get(i).is_none() {
                    plan = plan.with_station(i, StationFaults::none());
                }
                continue;
            }
            let mut f = plan.get(i).cloned().unwrap_or_default();
            f.wake_at = f.wake_at.max(c.join_at);
            if let Some(l) = c.leave_at {
                f.crash_at = Some(l);
                f.recover_at = c.rejoin_at;
            }
            plan = plan.with_station(i, f);
        }
        plan
    }
}

/// Run the exact engine with `churn` lowered onto an empty fault plan.
///
/// Delegates to [`crate::run_exact_faulty`] via [`ChurnPlan::overlay`],
/// so an empty churn plan is bit-identical to a pristine
/// [`crate::run_exact`] run. To combine churn with faults, call
/// [`ChurnPlan::overlay`] on a real [`FaultPlan`] and run the overlaid
/// plan directly.
pub fn run_exact_churn<F>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    churn: &ChurnPlan,
    factory: F,
) -> RunReport
where
    F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
{
    let plan = churn.overlay(&FaultPlan::empty());
    crate::faults::run_exact_faulty(config, adversary, &plan, factory)
}

/// Run the fast exact backend with `churn` lowered onto an empty fault
/// plan; semantics match [`run_exact_churn`]. Joins and rejoins arrive
/// through [`crate::FaultyStation::wake_hint`], so absent stations fold
/// into the backend's bucketed wake calendar.
pub fn run_fast_exact_churn<F>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    churn: &ChurnPlan,
    factory: F,
) -> RunReport
where
    F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
{
    let plan = churn.overlay(&FaultPlan::empty());
    crate::fast::run_fast_exact_faulty(config, adversary, &plan, factory)
}

/// Batched twin of [`run_fast_exact_churn`]: every trial of the batch
/// runs under the same lowered churn plan, and each per-trial
/// [`RunReport`] is bit-identical to the solo fast-churn run with that
/// trial's seed.
pub fn run_batch_exact_churn<F>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    churn: &ChurnPlan,
    seeds: &[u64],
    factory: F,
) -> Vec<RunReport>
where
    F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
{
    let plan = churn.overlay(&FaultPlan::empty());
    crate::batch::run_batch_exact_faulty(config, adversary, &plan, seeds, factory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StopRule;
    use crate::exact::run_exact;
    use crate::fast::run_fast_exact;
    use crate::protocol::{PerStation, UniformProtocol};
    use jle_radio::{CdModel, ChannelState};

    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }

    fn fixed_factory(p: f64) -> impl Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static {
        move |_| Box::new(PerStation::new(Fixed(p)))
    }

    #[test]
    fn empty_plan_is_bit_identical_to_pristine_exact_run() {
        let config = SimConfig::new(6, CdModel::Strong).with_seed(42).with_max_slots(5_000);
        let adv = AdversarySpec::passive();
        let pristine = run_exact(&config, &adv, |_| Box::new(PerStation::new(Fixed(0.3))));
        let churned = run_exact_churn(&config, &adv, &ChurnPlan::empty(), fixed_factory(0.3));
        assert_eq!(pristine.resolved_at, churned.resolved_at);
        assert_eq!(pristine.winner, churned.winner);
        assert_eq!(pristine.counts, churned.counts);
        assert_eq!(pristine.energy, churned.energy);
    }

    #[test]
    fn empty_plan_is_bit_identical_to_pristine_fast_run() {
        let config = SimConfig::new(6, CdModel::Strong).with_seed(42).with_max_slots(5_000);
        let adv = AdversarySpec::passive();
        let pristine = run_fast_exact(&config, &adv, |_| Box::new(PerStation::new(Fixed(0.3))));
        let churned = run_fast_exact_churn(&config, &adv, &ChurnPlan::empty(), fixed_factory(0.3));
        assert_eq!(pristine.resolved_at, churned.resolved_at);
        assert_eq!(pristine.winner, churned.winner);
        assert_eq!(pristine.counts, churned.counts);
        assert_eq!(pristine.energy, churned.energy);
    }

    #[test]
    fn benign_entries_are_bit_identical_too() {
        let config = SimConfig::new(4, CdModel::Strong).with_seed(7).with_max_slots(5_000);
        let adv = AdversarySpec::passive();
        let plan =
            (0..4).fold(ChurnPlan::new(9), |p, i| p.with_station(i, StationChurn::founding()));
        let pristine = run_exact(&config, &adv, |_| Box::new(PerStation::new(Fixed(0.4))));
        let churned = run_exact_churn(&config, &adv, &plan, fixed_factory(0.4));
        assert_eq!(pristine.resolved_at, churned.resolved_at);
        assert_eq!(pristine.winner, churned.winner);
        assert_eq!(pristine.counts, churned.counts);
    }

    #[test]
    fn joiner_is_silent_until_its_join_slot() {
        // One station joining at slot 4, always transmitting once present:
        // the first possible Single is the join slot.
        let config = SimConfig::new(1, CdModel::Strong).with_seed(1).with_max_slots(20);
        let plan = ChurnPlan::new(0).with_station(0, StationChurn::founding().joining_at(4));
        let r = run_exact_churn(&config, &AdversarySpec::passive(), &plan, fixed_factory(1.0));
        assert_eq!(r.resolved_at, Some(4));
    }

    #[test]
    fn leaver_goes_silent_and_rejoins_fresh() {
        // Weak CD so the lone transmitter never terminates: present in
        // slots 0..3 and 7..10 ⇒ 6 transmissions, 4 silent slots.
        let config = SimConfig::new(1, CdModel::Weak)
            .with_seed(1)
            .with_max_slots(10)
            .with_stop(StopRule::Horizon);
        let plan =
            ChurnPlan::new(0).with_station(0, StationChurn::founding().leave_and_rejoin(3, 7));
        let r = run_exact_churn(&config, &AdversarySpec::passive(), &plan, fixed_factory(1.0));
        assert_eq!(r.slots, 10);
        assert!(!r.timed_out && !r.cap_hit, "Horizon runs do not time out");
        assert_eq!(r.energy.transmissions, 6);
        assert_eq!(r.counts.nulls, 4);
    }

    #[test]
    fn present_at_and_live_at() {
        let c = StationChurn::founding().joining_at(3).leave_and_rejoin(10, 20);
        assert!(!c.present_at(0) && !c.present_at(2));
        assert!(c.present_at(3) && c.present_at(9));
        assert!(!c.present_at(10) && !c.present_at(19));
        assert!(c.present_at(20));

        let plan = ChurnPlan::new(0)
            .with_station(0, c)
            .with_station(1, StationChurn::founding().leaving_at(5));
        assert_eq!(plan.live_at(0, 3), 2, "station 0 has not joined yet");
        assert_eq!(plan.live_at(4, 3), 3);
        assert_eq!(plan.live_at(5, 3), 2);
        assert_eq!(plan.live_at(15, 3), 1);
        assert_eq!(plan.live_at(25, 3), 2);
        assert_eq!(plan.last_event(), 20);
        assert_eq!(ChurnPlan::empty().last_event(), 0);
    }

    #[test]
    fn generators_are_deterministic_and_order_independent() {
        let mk = || {
            ChurnPlan::new(77)
                .with_staggered_joins(32, 0.5, 1000)
                .with_random_leaves(32, 0.25, 2000)
                .with_rejoins(100)
        };
        assert_eq!(mk(), mk());
        assert!(!mk().is_empty());
        let other = ChurnPlan::new(78)
            .with_staggered_joins(32, 0.5, 1000)
            .with_random_leaves(32, 0.25, 2000)
            .with_rejoins(100);
        assert_ne!(mk(), other, "a different seed gives a different plan");
        // Stream independence: joins drawn before or after leaves give
        // identical plans.
        let a =
            ChurnPlan::new(5).with_staggered_joins(16, 0.5, 100).with_random_leaves(16, 0.5, 100);
        let b =
            ChurnPlan::new(5).with_random_leaves(16, 0.5, 100).with_staggered_joins(16, 0.5, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn overlay_maps_churn_onto_faults() {
        let churn = ChurnPlan::new(0)
            .with_station(0, StationChurn::founding().joining_at(5))
            .with_station(1, StationChurn::founding().leave_and_rejoin(10, 30));
        let base = FaultPlan::new(3).with_station(0, StationFaults::none().flip_prob(0.1));
        let plan = churn.overlay(&base);
        let f0 = plan.get(0).unwrap();
        assert_eq!(f0.wake_at, 5);
        assert_eq!(f0.sensing_flip_prob, 0.1, "base faults preserved");
        let f1 = plan.get(1).unwrap();
        assert_eq!(f1.crash_at, Some(10));
        assert_eq!(f1.recover_at, Some(30));
    }

    #[test]
    fn json_round_trip_is_canonical() {
        let plan = ChurnPlan::new(0xBEEF)
            .with_staggered_joins(8, 0.5, 100)
            .with_random_leaves(8, 0.5, 200)
            .with_rejoins(50);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ChurnPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        assert_eq!(json, serde_json::to_string(&back).unwrap(), "round trip is byte-stable");
    }
}
