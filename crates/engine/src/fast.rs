//! The fast exact backend: active-set slot loop over counter-based
//! per-station RNG streams.
//!
//! [`ExactStations`](crate::ExactStations) calls every station's `act`
//! every slot and draws all randomness from one sequential stream — O(n)
//! per slot no matter how many stations are asleep, and draw-order-welded
//! to the iteration order. [`FastExactStations`] keeps the *semantics*
//! (same feedback filtering, same CD models, same stop rules, same report
//! fields) while changing both mechanisms:
//!
//! * **Counter-based streams** ([`crate::streams`]): station `i`'s draws
//!   in slot `t` are a pure function of `(run_seed, i, t, draw_index)`.
//!   Skipping a sleeping station — or running stations on different
//!   threads — cannot perturb anyone else's randomness.
//! * **Active-set loop**: stations live in a packed *awake prefix* of the
//!   station vector. A station whose `act` returns
//!   [`Action::Sleep`](crate::Action::Sleep) is parked in a bucketed wake
//!   calendar keyed by [`Protocol::wake_hint`] and revisited only at its
//!   declared wake slot; terminated stations leave the loop entirely. A
//!   slot costs O(awake), so a duty-cycled million-station network pays
//!   for the stations that are actually up.
//! * **Sharded action phase**: above
//!   [`FastExactStations::DEFAULT_PAR_THRESHOLD`] awake stations, the
//!   prefix is split into per-worker chunks driven through
//!   `rayon::scope`. Because the streams are counter-based, the parallel
//!   action phase is *bit-identical* to the serial one (a unit test locks
//!   this); the transmitter-set reduction folds chunk aggregates in chunk
//!   order, deterministically.
//!
//! The fast backend is **statistically equivalent** to the legacy one —
//! same distributions, different bits. It is locked by its own golden
//! fixtures, and `crates/protocols/tests/cross_engine.rs` holds the
//! KS/chi-square cross-backend equivalence suite. See `DESIGN.md` §12.

use crate::config::{SimConfig, StopRule};
use crate::core::{SimArena, SimCore, SlotActions, StationSet};
use crate::faults::{FaultPlan, FaultyStation};
use crate::observer::StateProbe;
use crate::protocol::{Action, Protocol, Status};
use crate::report::RunReport;
use crate::streams::{station_key, StationRng};
use jle_adversary::AdversarySpec;
use jle_radio::{cd, SlotTruth};
use rand::rngs::SmallRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-slot action of a prefix position, recorded for the feedback phase.
const ACT_LISTEN: u8 = 0;
const ACT_TRANSMIT: u8 = 1;
const ACT_SLEEP: u8 = 2;

/// Recyclable storage for the fast backend's permutation and wake-queue
/// buffers, held by [`SimArena`] so repeated
/// [`run_fast_exact_in`] trials allocate nothing in steady state.
#[derive(Default)]
pub struct FastScratch {
    ids: Vec<u32>,
    pos: Vec<u32>,
    acts: Vec<u8>,
    keys: Vec<u64>,
    finished: Vec<bool>,
    queue: WakeQueue,
}

/// Calendar of parked stations: one bucket of ids per distinct wake
/// slot, drained in `(wake_slot, id)` order — the same order a min-heap
/// of `(wake_slot, id)` pairs would pop, which is what pins the fast
/// backend's golden fixtures.
///
/// A periodic workload (duty cycling, bounded backoff) parks thousands
/// of stations on a handful of distinct wake slots, so the calendar does
/// O(log #distinct-slots) work per park where a binary heap pays
/// O(log #parked) sift steps through a cache-hostile array — on a
/// million-station duty-cycled network that is the difference between
/// the wake machinery dominating the slot loop and it disappearing.
#[derive(Default)]
struct WakeQueue {
    buckets: BTreeMap<u64, Vec<u32>>,
    len: usize,
    /// Drained bucket vectors, recycled so steady state allocates nothing.
    spare: Vec<Vec<u32>>,
}

impl WakeQueue {
    fn push(&mut self, wake: u64, id: u32) {
        let spare = &mut self.spare;
        self.buckets.entry(wake).or_insert_with(|| spare.pop().unwrap_or_default()).push(id);
        self.len += 1;
    }

    /// Remove every id due at or before `slot` and hand them to `f` in
    /// `(wake_slot, id)` order.
    fn drain_due(&mut self, slot: u64, mut f: impl FnMut(u32)) {
        while self.buckets.first_key_value().is_some_and(|(&wake, _)| wake <= slot) {
            let (_, mut ids) = self.buckets.pop_first().expect("peeked entry exists");
            ids.sort_unstable();
            self.len -= ids.len();
            for id in ids.drain(..) {
                f(id);
            }
            self.spare.push(ids);
        }
    }

    /// Every parked id, in no particular order.
    fn iter_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.buckets.values().flatten().copied()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        while let Some((_, mut ids)) = self.buckets.pop_first() {
            ids.clear();
            self.spare.push(ids);
        }
        self.len = 0;
    }
}

/// What one action-phase chunk did, folded deterministically in chunk
/// order afterwards.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkAgg {
    tx: u64,
    listen: u64,
    /// `Some(id)` iff this chunk saw exactly one transmitter.
    lone: Option<u64>,
}

/// Drive one chunk of awake stations through the action phase. Each
/// station draws from its own counter-based stream, so chunks are
/// mutually independent and the result does not depend on which thread
/// (or in which order) chunks run.
fn run_chunk(
    stations: &mut [Box<dyn Protocol>],
    acts: &mut [u8],
    ids: &[u32],
    keys: &[u64],
    slot: u64,
) -> ChunkAgg {
    let mut agg = ChunkAgg::default();
    for ((st, a), &id) in stations.iter_mut().zip(acts.iter_mut()).zip(ids.iter()) {
        let mut rng = StationRng::for_slot(keys[id as usize], slot);
        match st.act(slot, &mut rng) {
            Action::Transmit => {
                *a = ACT_TRANSMIT;
                agg.tx += 1;
                agg.lone = if agg.tx == 1 { Some(id as u64) } else { None };
            }
            Action::Listen => {
                *a = ACT_LISTEN;
                agg.listen += 1;
            }
            Action::Sleep => *a = ACT_SLEEP,
        }
    }
    agg
}

/// The active-set per-station [`StationSet`] backend.
///
/// Invariant: positions `[0, awake_len)` of `stations` hold exactly the
/// stations that are awake this slot (non-terminal, not parked in the
/// wake calendar). `ids[p]` is the station id at position `p` and
/// `pos[id]` its position — the permutation both directions. Parked
/// stations sit in `queue` bucketed by wake slot; terminated stations sit
/// outside the prefix and in neither structure.
pub struct FastExactStations {
    stations: Vec<Box<dyn Protocol>>,
    ids: Vec<u32>,
    pos: Vec<u32>,
    acts: Vec<u8>,
    keys: Vec<u64>,
    finished: Vec<bool>,
    queue: WakeQueue,
    awake_len: usize,
    /// Non-terminal stations (awake or parked).
    active: u64,
    /// Non-terminal stations currently reporting `finished()`.
    finished_active: u64,
    /// All stations (terminal included) reporting `finished()`.
    finished_total: u64,
    par_threshold: usize,
}

impl FastExactStations {
    /// Awake-set size at which the action phase shards across threads.
    ///
    /// The vendored rayon shim spawns scoped threads per call, so
    /// parallelism only pays once a slot's action work dwarfs thread
    /// startup; below the threshold the loop stays serial (and the two
    /// paths are bit-identical regardless).
    pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 15;

    /// Build a fresh station set; `factory(i)` builds station `i`.
    pub fn new(config: &SimConfig, factory: impl FnMut(u64) -> Box<dyn Protocol>) -> Self {
        let stations: Vec<Box<dyn Protocol>> = (0..config.n).map(factory).collect();
        Self::from_parts(config, stations, FastScratch::default())
    }

    /// Like [`FastExactStations::new`], but reusing the station vector
    /// and scratch buffers held by `arena`; pair with
    /// [`FastExactStations::recycle`]. Recycling rules match
    /// [`ExactStations::new_in`](crate::ExactStations::new_in): station
    /// boxes are reused only when the count matches and every protocol
    /// supports in-place [`Protocol::reset`].
    pub fn new_in(
        config: &SimConfig,
        factory: impl FnMut(u64) -> Box<dyn Protocol>,
        arena: &mut SimArena,
    ) -> Self {
        let mut stations = std::mem::take(&mut arena.stations);
        if stations.len() != config.n as usize || !stations.iter_mut().all(|s| s.reset()) {
            stations.clear();
            stations.extend((0..config.n).map(factory));
        }
        let scratch = std::mem::take(&mut arena.fast);
        Self::from_parts(config, stations, scratch)
    }

    fn from_parts(
        config: &SimConfig,
        stations: Vec<Box<dyn Protocol>>,
        scratch: FastScratch,
    ) -> Self {
        let n = stations.len();
        assert!(n <= u32::MAX as usize, "fast backend indexes stations with u32");
        let FastScratch { mut ids, mut pos, mut acts, mut keys, mut finished, mut queue } = scratch;
        ids.clear();
        ids.extend(0..n as u32);
        pos.clear();
        pos.extend(0..n as u32);
        acts.clear();
        acts.resize(n, ACT_LISTEN);
        keys.clear();
        keys.extend((0..n as u64).map(|i| station_key(config.seed, i)));
        finished.clear();
        finished.resize(n, false);
        queue.clear();
        let mut set = FastExactStations {
            stations,
            ids,
            pos,
            acts,
            keys,
            finished,
            queue,
            awake_len: n,
            active: n as u64,
            finished_active: 0,
            finished_total: 0,
            par_threshold: Self::DEFAULT_PAR_THRESHOLD,
        };
        // Fold in construction-time state: already-terminal stations never
        // enter the loop; already-finished ones count toward the stop
        // condition (mirrors the legacy backend evaluating `finished()`
        // before slot 0).
        for p in (0..n).rev() {
            let id = set.ids[p] as usize;
            if set.stations[p].finished() {
                set.finished[id] = true;
                set.finished_total += 1;
                set.finished_active += 1;
            }
            if set.stations[p].status().terminal() {
                set.active -= 1;
                if set.finished[id] {
                    set.finished_active -= 1;
                }
                set.demote(p);
            }
        }
        set
    }

    /// Return the station boxes and scratch buffers to `arena`, restoring
    /// construction order first so a following `new_in` (fast *or*
    /// legacy) can recycle resettable boxes in place.
    pub fn recycle(self, arena: &mut SimArena) {
        let FastExactStations {
            mut stations, mut ids, pos, acts, keys, finished, mut queue, ..
        } = self;
        for p in 0..stations.len() {
            // In-place cycle sort on the permutation: each swap parks one
            // station at its home index, so the loop is O(n) total.
            while ids[p] as usize != p {
                let q = ids[p] as usize;
                stations.swap(p, q);
                ids.swap(p, q);
            }
        }
        queue.clear();
        arena.stations = stations;
        arena.fast = FastScratch { ids, pos, acts, keys, finished, queue };
    }

    /// Override the awake-set size at which the action phase goes
    /// parallel ([`FastExactStations::DEFAULT_PAR_THRESHOLD`]). The two
    /// paths are bit-identical, so this only trades thread startup
    /// against per-slot work.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.par_threshold = threshold.max(1);
        self
    }

    /// Number of stations currently awake (in the active prefix).
    pub fn awake(&self) -> usize {
        self.awake_len
    }

    /// The station with id `id`, for post-run inspection (the internal
    /// vector is permuted; this resolves the permutation).
    pub fn station(&self, id: u64) -> &dyn Protocol {
        &*self.stations[self.pos[id as usize] as usize]
    }

    /// Move `id` (currently parked outside the prefix) into the awake
    /// prefix.
    fn promote(&mut self, id: usize) {
        let p = self.pos[id] as usize;
        let q = self.awake_len;
        debug_assert!(p >= q, "promoted station must be outside the prefix");
        self.stations.swap(p, q);
        self.acts.swap(p, q);
        self.ids.swap(p, q);
        self.pos[self.ids[p] as usize] = p as u32;
        self.pos[self.ids[q] as usize] = q as u32;
        self.awake_len = q + 1;
    }

    /// Remove position `p` from the awake prefix (swap with the last
    /// awake station).
    fn demote(&mut self, p: usize) {
        let last = self.awake_len - 1;
        self.stations.swap(p, last);
        self.acts.swap(p, last);
        self.ids.swap(p, last);
        self.pos[self.ids[p] as usize] = p as u32;
        self.pos[self.ids[last] as usize] = last as u32;
        self.awake_len = last;
    }
}

impl std::fmt::Debug for FastExactStations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastExactStations")
            .field("n", &self.stations.len())
            .field("awake", &self.awake_len)
            .field("parked", &self.queue.len())
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl StationSet for FastExactStations {
    fn finished(&self) -> bool {
        // Incremental form of the legacy predicate `any(finished) &&
        // all(terminal || finished)`: some station (terminal or not)
        // finished, and every non-terminal station has.
        self.finished_total > 0 && self.finished_active == self.active
    }

    fn act(&mut self, slot: u64, _config: &SimConfig, _rng: &mut SmallRng) -> SlotActions {
        // Wake phase: pull every station whose declared wake slot has
        // arrived back into the prefix.
        // (Take the queue so its drain closure can borrow the rest of
        // `self`; the move is a few pointer copies.)
        let mut queue = std::mem::take(&mut self.queue);
        queue.drain_due(slot, |id| self.promote(id as usize));
        self.queue = queue;

        let awake = self.awake_len;
        let mut actions = SlotActions::default();
        if awake == 0 {
            return actions;
        }
        let workers = rayon::current_num_threads().max(1);
        if awake >= self.par_threshold && workers > 1 {
            let chunk_len = awake.div_ceil(workers);
            let n_chunks = awake.div_ceil(chunk_len);
            let mut partials = vec![ChunkAgg::default(); n_chunks];
            {
                let (mut st_rest, _) = self.stations.split_at_mut(awake);
                let (mut act_rest, _) = self.acts.split_at_mut(awake);
                let mut id_rest = &self.ids[..awake];
                let keys = &self.keys[..];
                rayon::scope(|s| {
                    for part in partials.iter_mut() {
                        let take = chunk_len.min(st_rest.len());
                        let (st_chunk, st_tail) = st_rest.split_at_mut(take);
                        let (act_chunk, act_tail) = act_rest.split_at_mut(take);
                        let (id_chunk, id_tail) = id_rest.split_at(take);
                        st_rest = st_tail;
                        act_rest = act_tail;
                        id_rest = id_tail;
                        s.spawn(move |_| {
                            *part = run_chunk(st_chunk, act_chunk, id_chunk, keys, slot);
                        });
                    }
                });
            }
            // Deterministic reduction in chunk order.
            for agg in &partials {
                actions.transmitters += agg.tx;
                actions.listeners += agg.listen;
            }
            actions.lone_transmitter = if actions.transmitters == 1 {
                partials.iter().find_map(|agg| agg.lone)
            } else {
                None
            };
        } else {
            let agg = run_chunk(
                &mut self.stations[..awake],
                &mut self.acts[..awake],
                &self.ids[..awake],
                &self.keys,
                slot,
            );
            actions.transmitters = agg.tx;
            actions.listeners = agg.listen;
            actions.lone_transmitter = agg.lone;
        }
        actions
    }

    fn pick_winner(
        &mut self,
        actions: &SlotActions,
        _config: &SimConfig,
        _rng: &mut SmallRng,
    ) -> Option<u64> {
        // Identities are tracked: no randomness drawn (same as legacy).
        actions.lone_transmitter
    }

    fn feedback(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        // Pass 1: deliver observations to this slot's non-sleepers.
        for p in 0..self.awake_len {
            if self.acts[p] == ACT_SLEEP {
                continue;
            }
            let transmitted = self.acts[p] == ACT_TRANSMIT;
            let obs = cd::observe(config.cd, transmitted, truth);
            self.stations[p].feedback(slot, transmitted, obs);
        }
        // Pass 2 (descending, so swap-removal never skips an entry):
        // refresh the finished counters and demote terminated stations
        // (out of the loop) and sleepers (into the wake calendar).
        for p in (0..self.awake_len).rev() {
            let id = self.ids[p] as usize;
            let f = self.stations[p].finished();
            if f != self.finished[id] {
                self.finished[id] = f;
                if f {
                    self.finished_total += 1;
                    self.finished_active += 1;
                } else {
                    self.finished_total -= 1;
                    self.finished_active -= 1;
                }
            }
            if self.stations[p].status().terminal() {
                self.active -= 1;
                if self.finished[id] {
                    self.finished_active -= 1;
                }
                self.demote(p);
            } else if self.acts[p] == ACT_SLEEP {
                // `max(slot + 1)` hardens against hints in the past;
                // u64::MAX ("never again") parks the station forever while
                // keeping it in the `active` count, exactly like a legacy
                // station that sleeps every remaining slot.
                let wake = self.stations[p].wake_hint(slot).max(slot + 1);
                self.queue.push(wake, id as u32);
                self.demote(p);
            }
        }
    }

    fn estimate(&self) -> Option<f64> {
        // Legacy semantics: the estimate of the *lowest-indexed*
        // non-terminal station. O(awake + parked); only paid when an
        // observer asks for estimates (traced runs).
        let awake_min = self.ids[..self.awake_len].iter().copied().min();
        let parked_min = self.queue.iter_ids().min();
        let id = match (awake_min, parked_min) {
            (Some(a), Some(b)) => a.min(b),
            (a, b) => a.or(b)?,
        };
        self.stations[self.pos[id as usize] as usize].estimate()
    }

    fn collect_probes(&self, out: &mut Vec<StateProbe>) {
        // Id order despite the permuted storage (parked and terminated
        // stations included — their probes show *why* they left the loop).
        for id in 0..self.pos.len() {
            let st = &self.stations[self.pos[id] as usize];
            if let Some((state, value)) = st.state_probe() {
                out.push(StateProbe { station: id as u64, state, value });
            }
        }
    }

    fn should_stop(
        &mut self,
        _truth: &SlotTruth,
        config: &SimConfig,
        report: &mut RunReport,
    ) -> bool {
        match config.stop {
            StopRule::FirstCleanSingle => report.resolved_at.is_some(),
            StopRule::AllTerminated => {
                if self.active == 0 {
                    report.all_terminated = true;
                    true
                } else {
                    false
                }
            }
            StopRule::Horizon => false,
        }
    }

    fn finalize(&mut self, config: &SimConfig, report: &mut RunReport) {
        report.timed_out = match config.stop {
            StopRule::FirstCleanSingle => report.resolved_at.is_none() && !self.finished(),
            StopRule::AllTerminated => !report.all_terminated,
            StopRule::Horizon => false,
        };
        report.cap_hit = report.timed_out && report.slots == config.max_slots;
        let mut leaders: Vec<u64> = self
            .stations
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status() == Status::Leader)
            .map(|(p, _)| self.ids[p] as u64)
            .collect();
        leaders.sort_unstable();
        report.leaders = leaders;
    }
}

/// The fault-injecting twin of [`FastExactStations`]: planned stations
/// are wrapped in [`FaultyStation`] (whose `wake_hint` folds crash
/// windows and staggered wakeups into the active-set schedule) and the
/// post-run degradation verdict comes from the [`FaultPlan`].
pub struct FastFaultyStations<'p> {
    inner: FastExactStations,
    plan: &'p FaultPlan,
}

impl<'p> FastFaultyStations<'p> {
    /// Build the station set; mirrors
    /// [`FaultyStations::new`](crate::FaultyStations::new).
    pub fn new<F>(config: &SimConfig, plan: &'p FaultPlan, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let inner = FastExactStations::new(config, |i| match plan.get(i) {
            None => factory(i),
            Some(f) => {
                let fac = Arc::clone(&factory);
                Box::new(FaultyStation::new(
                    f.clone(),
                    plan.station_seed(i),
                    Box::new(move || fac(i)),
                ))
            }
        });
        FastFaultyStations { inner, plan }
    }
}

impl std::fmt::Debug for FastFaultyStations<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastFaultyStations").field("inner", &self.inner).finish_non_exhaustive()
    }
}

impl StationSet for FastFaultyStations<'_> {
    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn act(&mut self, slot: u64, config: &SimConfig, rng: &mut SmallRng) -> SlotActions {
        self.inner.act(slot, config, rng)
    }

    fn pick_winner(
        &mut self,
        actions: &SlotActions,
        config: &SimConfig,
        rng: &mut SmallRng,
    ) -> Option<u64> {
        self.inner.pick_winner(actions, config, rng)
    }

    fn feedback(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig) {
        self.inner.feedback(slot, truth, config)
    }

    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }

    fn collect_probes(&self, out: &mut Vec<StateProbe>) {
        self.inner.collect_probes(out)
    }

    fn should_stop(
        &mut self,
        truth: &SlotTruth,
        config: &SimConfig,
        report: &mut RunReport,
    ) -> bool {
        self.inner.should_stop(truth, config, report)
    }

    fn finalize(&mut self, config: &SimConfig, report: &mut RunReport) {
        self.inner.finalize(config, report);
        if report.leaders.len() <= 1 {
            if let Some(w) = report.leaders.first().copied().or(report.winner) {
                // Same full-horizon judgement as the legacy faulty
                // backend: crash schedules are wall-clock.
                let horizon = config.max_slots.max(report.slots);
                if self.plan.leader_crashed(w, horizon) {
                    report.leader_crashed = true;
                }
            }
        }
    }
}

/// Run one simulation on the fast exact backend with a fresh station set.
///
/// Semantics match [`run_exact`](crate::run_exact); bits do not (the fast
/// backend draws from counter-based per-station streams — see the module
/// docs).
pub fn run_fast_exact(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnMut(u64) -> Box<dyn Protocol>,
) -> RunReport {
    let mut stations = FastExactStations::new(config, factory);
    SimCore::new(config, adversary).run(&mut stations)
}

/// Like [`run_fast_exact`], but reusing `arena`'s buffers across trials.
pub fn run_fast_exact_in(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnMut(u64) -> Box<dyn Protocol>,
    arena: &mut SimArena,
) -> RunReport {
    let mut stations = FastExactStations::new_in(config, factory, arena);
    let report = SimCore::new(config, adversary).with_arena(arena).run(&mut stations);
    stations.recycle(arena);
    report
}

/// Run the fast exact backend with a [`FaultPlan`] applied on top of
/// `factory`; semantics match [`run_exact_faulty`](crate::run_exact_faulty).
pub fn run_fast_exact_faulty<F>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    plan: &FaultPlan,
    factory: F,
) -> RunReport
where
    F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
{
    let mut stations = FastFaultyStations::new(config, plan, factory);
    SimCore::new(config, adversary).run(&mut stations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{run_exact, run_exact_in};
    use crate::faults::{run_exact_faulty, StationFaults};
    use crate::protocol::{PerStation, UniformProtocol};
    use jle_adversary::{JamStrategyKind, Rate};
    use jle_radio::{CdModel, ChannelState};

    /// Fixed-probability transmitter. With p ∈ {0, 1} its behavior is
    /// deterministic, so fast and legacy backends must agree *bit for
    /// bit* despite their unrelated streams.
    #[derive(Debug, Clone)]
    struct Fixed(f64);
    impl UniformProtocol for Fixed {
        fn tx_prob(&mut self, _: u64) -> f64 {
            self.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
        fn reset(&mut self) -> bool {
            true
        }
    }

    /// Deterministic duty-cycled transmitter: transmits on its phase slot
    /// once per period, sleeps otherwise, with an accurate wake hint.
    #[derive(Debug, Clone)]
    struct Pulse {
        period: u64,
        phase: u64,
        hint: bool,
        transmissions: u64,
    }

    impl Pulse {
        fn new(period: u64, phase: u64, hint: bool) -> Self {
            Pulse { period, phase, hint, transmissions: 0 }
        }
    }

    impl Protocol for Pulse {
        fn act(&mut self, slot: u64, _rng: &mut dyn rand::RngCore) -> Action {
            if slot % self.period == self.phase {
                self.transmissions += 1;
                Action::Transmit
            } else {
                Action::Sleep
            }
        }
        fn feedback(&mut self, _: u64, _: bool, _: jle_radio::cd::Observation) {}
        fn status(&self) -> Status {
            Status::Running
        }
        fn wake_hint(&self, slot: u64) -> u64 {
            if !self.hint {
                return slot + 1;
            }
            let next = slot + 1;
            let rem = next % self.period;
            next + (self.phase + self.period - rem) % self.period
        }
    }

    fn passive() -> AdversarySpec {
        AdversarySpec::passive()
    }

    #[test]
    fn deterministic_protocols_match_legacy_bit_for_bit() {
        // p=1.0 and p=0.0 stations act deterministically, so every report
        // field must agree with the legacy backend across CD models.
        for cd in [CdModel::Strong, CdModel::Weak, CdModel::NoCd] {
            let config = SimConfig::new(2, cd).with_seed(9).with_max_slots(40).with_trace(true);
            let factory = |i: u64| -> Box<dyn Protocol> {
                Box::new(PerStation::new(Fixed(if i == 0 { 1.0 } else { 0.0 })))
            };
            let legacy = run_exact(&config, &passive(), factory);
            let fast = run_fast_exact(&config, &passive(), factory);
            assert_eq!(legacy.resolved_at, fast.resolved_at, "{cd:?}");
            assert_eq!(legacy.winner, fast.winner, "{cd:?}");
            assert_eq!(legacy.leaders, fast.leaders, "{cd:?}");
            assert_eq!(legacy.counts, fast.counts, "{cd:?}");
            assert_eq!(legacy.energy, fast.energy, "{cd:?}");
            assert_eq!(legacy.timed_out, fast.timed_out, "{cd:?}");
            let (lt, ft) = (legacy.trace.unwrap(), fast.trace.unwrap());
            assert_eq!(lt.len(), ft.len(), "{cd:?}");
            assert!(lt.iter().zip(ft.iter()).all(|(a, b)| a == b), "{cd:?}");
        }
    }

    #[test]
    fn jamming_matches_legacy_on_deterministic_protocols() {
        // The adversary stream is shared engine infrastructure (same
        // SmallRng either way), so jam decisions line up exactly.
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 4, JamStrategyKind::Saturating);
        let config = SimConfig::new(1, CdModel::Strong).with_seed(3).with_max_slots(20);
        let factory = |_| -> Box<dyn Protocol> { Box::new(PerStation::new(Fixed(1.0))) };
        let legacy = run_exact(&config, &spec, factory);
        let fast = run_fast_exact(&config, &spec, factory);
        assert_eq!(legacy.resolved_at, fast.resolved_at);
        assert_eq!(legacy.counts, fast.counts);
        assert_eq!(legacy.adv_budget_spent, fast.adv_budget_spent);
    }

    #[test]
    fn wake_hint_skips_are_unobservable() {
        // The same deterministic duty-cycled stations, with and without
        // accurate wake hints: identical reports, because skipped slots
        // were Sleep-without-state-change by contract.
        for stop in [StopRule::FirstCleanSingle, StopRule::AllTerminated] {
            let config = SimConfig::new(16, CdModel::Strong)
                .with_seed(5)
                .with_max_slots(300)
                .with_stop(stop)
                .with_trace(true);
            let hinted =
                run_fast_exact(&config, &passive(), |i| Box::new(Pulse::new(8, i % 8, true)));
            let unhinted =
                run_fast_exact(&config, &passive(), |i| Box::new(Pulse::new(8, i % 8, false)));
            assert_eq!(hinted.resolved_at, unhinted.resolved_at, "{stop:?}");
            assert_eq!(hinted.counts, unhinted.counts, "{stop:?}");
            assert_eq!(hinted.energy, unhinted.energy, "{stop:?}");
            let (ht, ut) = (hinted.trace.unwrap(), unhinted.trace.unwrap());
            assert!(ht.iter().zip(ut.iter()).all(|(a, b)| a == b), "{stop:?}");
        }
    }

    #[test]
    fn wake_hint_matches_legacy_engine_on_duty_cycle() {
        // Deterministic duty-cycled stations through the *legacy* engine
        // vs the fast one with hints: the active-set loop must not change
        // what the channel sees.
        let config = SimConfig::new(12, CdModel::Strong).with_seed(2).with_max_slots(200);
        let legacy = run_exact(&config, &passive(), |i| Box::new(Pulse::new(6, i % 6, false)));
        let fast = run_fast_exact(&config, &passive(), |i| Box::new(Pulse::new(6, i % 6, true)));
        assert_eq!(legacy.resolved_at, fast.resolved_at);
        assert_eq!(legacy.counts, fast.counts);
        assert_eq!(legacy.energy, fast.energy);
    }

    #[test]
    fn parallel_action_phase_is_bit_identical_to_serial() {
        // Threshold 1 forces sharding from the first slot; counter-based
        // streams make the result independent of the split.
        let config = SimConfig::new(64, CdModel::Strong)
            .with_seed(17)
            .with_max_slots(2_000)
            .with_trace(true);
        let factory = |_| -> Box<dyn Protocol> { Box::new(PerStation::new(Fixed(0.05))) };
        let serial = {
            let mut st = FastExactStations::new(&config, factory);
            SimCore::new(&config, &passive()).run(&mut st)
        };
        let parallel = {
            let mut st = FastExactStations::new(&config, factory).with_parallel_threshold(1);
            SimCore::new(&config, &passive()).run(&mut st)
        };
        assert_eq!(serial.resolved_at, parallel.resolved_at);
        assert_eq!(serial.winner, parallel.winner);
        assert_eq!(serial.leaders, parallel.leaders);
        assert_eq!(serial.counts, parallel.counts);
        assert_eq!(serial.energy, parallel.energy);
        let (st, pt) = (serial.trace.unwrap(), parallel.trace.unwrap());
        assert_eq!(st.len(), pt.len());
        assert!(st.iter().zip(pt.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn deterministic_given_seed_and_different_across_seeds() {
        let config = SimConfig::new(8, CdModel::Strong).with_seed(11).with_max_slots(100_000);
        let factory = |_| -> Box<dyn Protocol> { Box::new(PerStation::new(Fixed(0.25))) };
        let a = run_fast_exact(&config, &passive(), factory);
        let b = run_fast_exact(&config, &passive(), factory);
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.counts, b.counts);
        let other = run_fast_exact(&config.clone().with_seed(12), &passive(), factory);
        assert!(
            other.resolved_at != a.resolved_at || other.winner != a.winner,
            "different seeds should not replay the same election"
        );
    }

    #[test]
    fn coin_flip_elects_exactly_one_leader() {
        let config = SimConfig::new(2, CdModel::Strong).with_seed(5).with_max_slots(10_000);
        let report = run_fast_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.5))));
        assert!(report.leader_elected());
        let w = report.winner.unwrap();
        assert_eq!(report.leaders, vec![w]);
    }

    #[test]
    fn arena_runs_are_bit_identical_to_fresh_runs() {
        let config = SimConfig::new(8, CdModel::Strong)
            .with_seed(21)
            .with_max_slots(50_000)
            .with_trace(true);
        let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let factory = |_: u64| -> Box<dyn Protocol> { Box::new(PerStation::new(Fixed(0.2))) };
        let fresh = run_fast_exact(&config, &spec, factory);
        let mut arena = SimArena::new();
        for seed_bump in 0..3u64 {
            // Interleave other seeds so reuse carries real dirty state
            // (permuted stations, populated wake calendar, stale keys).
            let other = config.clone().with_seed(100 + seed_bump);
            let mut r = run_fast_exact_in(&other, &spec, factory, &mut arena);
            arena.reclaim_trace(&mut r);
        }
        let mut reused = run_fast_exact_in(&config, &spec, factory, &mut arena);
        assert_eq!(fresh.slots, reused.slots);
        assert_eq!(fresh.resolved_at, reused.resolved_at);
        assert_eq!(fresh.winner, reused.winner);
        assert_eq!(fresh.counts, reused.counts);
        assert_eq!(fresh.energy, reused.energy);
        let (ft, rt) = (fresh.trace.unwrap(), reused.trace.as_ref().unwrap());
        assert!(ft.iter().zip(rt.iter()).all(|(a, b)| a == b));
        arena.reclaim_trace(&mut reused);
    }

    #[test]
    fn arena_is_shareable_between_fast_and_legacy_backends() {
        // `recycle` restores construction order, so the same arena can
        // feed both backends alternately without corrupting either.
        let config = SimConfig::new(6, CdModel::Strong).with_seed(8).with_max_slots(20_000);
        let factory = |_: u64| -> Box<dyn Protocol> { Box::new(PerStation::new(Fixed(0.3))) };
        let mut arena = SimArena::new();
        for round in 0..3u64 {
            let cfg = config.clone().with_seed(8 + round);
            let fast_fresh = run_fast_exact(&cfg, &passive(), factory);
            let fast_arena = run_fast_exact_in(&cfg, &passive(), factory, &mut arena);
            assert_eq!(fast_fresh.counts, fast_arena.counts, "round {round}");
            let legacy_fresh = run_exact(&cfg, &passive(), factory);
            let legacy_arena = run_exact_in(&cfg, &passive(), factory, &mut arena);
            assert_eq!(legacy_fresh.counts, legacy_arena.counts, "round {round}");
        }
    }

    #[test]
    fn estimate_tracks_lowest_indexed_running_station() {
        #[derive(Debug)]
        struct Withdraws {
            id: u64,
            status: Status,
        }
        impl Protocol for Withdraws {
            fn act(&mut self, slot: u64, _: &mut dyn rand::RngCore) -> Action {
                // Station 0 terminates after slot 2 (via feedback below).
                let _ = slot;
                Action::Listen
            }
            fn feedback(&mut self, slot: u64, _: bool, _: jle_radio::cd::Observation) {
                if self.id == 0 && slot >= 2 {
                    self.status = Status::NonLeader;
                }
            }
            fn status(&self) -> Status {
                self.status
            }
            fn estimate(&self) -> Option<f64> {
                Some(self.id as f64)
            }
        }
        let config =
            SimConfig::new(3, CdModel::Strong).with_seed(1).with_max_slots(6).with_trace(true);
        let report = run_fast_exact(&config, &passive(), |id| {
            Box::new(Withdraws { id, status: Status::Running })
        });
        // Slots 0..=2 report station 0's estimate; once it terminates the
        // lowest running station is 1.
        assert_eq!(report.trace.unwrap().estimates, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn faulty_deterministic_schedule_matches_legacy() {
        // Crash + recovery on a deterministic transmitter: identical
        // energy/count accounting through both faulty backends.
        let config = SimConfig::new(1, CdModel::Weak)
            .with_seed(1)
            .with_max_slots(10)
            .with_stop(StopRule::AllTerminated);
        let plan =
            FaultPlan::new(0).with_station(0, StationFaults::none().crash_with_recovery(2, 5));
        let factory = move |_| Box::new(PerStation::new(Fixed(1.0))) as Box<dyn Protocol>;
        let legacy = run_exact_faulty(&config, &passive(), &plan, factory);
        let fast = run_fast_exact_faulty(&config, &passive(), &plan, factory);
        assert_eq!(legacy.energy.transmissions, fast.energy.transmissions);
        assert_eq!(legacy.counts, fast.counts);
        assert_eq!(fast.energy.transmissions, 7, "slots 0,1 and 5..10");
    }

    #[test]
    fn faulty_leader_crash_is_reported() {
        let config = SimConfig::new(2, CdModel::Strong)
            .with_seed(1)
            .with_max_slots(10)
            .with_stop(StopRule::AllTerminated);
        let plan = FaultPlan::new(0)
            .with_station(0, StationFaults::none().crash(2))
            .with_station(1, StationFaults::none().deaf_between(0, u64::MAX));
        let r = run_fast_exact_faulty(&config, &passive(), &plan, move |i| {
            Box::new(PerStation::new(Fixed(if i == 0 { 1.0 } else { 0.0 })))
        });
        assert_eq!(r.resolved_at, Some(0));
        assert_eq!(r.leaders, vec![0]);
        assert!(r.leader_crashed);
    }

    #[test]
    fn all_crashed_run_hits_the_cap_with_empty_awake_set() {
        let config = SimConfig::new(3, CdModel::Strong).with_seed(2).with_max_slots(100);
        let plan = (0..3)
            .fold(FaultPlan::new(1), |p, i| p.with_station(i, StationFaults::none().crash(0)));
        let r = run_fast_exact_faulty(&config, &passive(), &plan, |_| {
            Box::new(PerStation::new(Fixed(1.0)))
        });
        assert!(r.timed_out);
        assert!(r.cap_hit);
        assert_eq!(r.energy.total(), 0, "crashed stations spend no energy");
    }

    #[test]
    fn late_wakeup_resolves_at_wake_slot() {
        let config = SimConfig::new(1, CdModel::Strong).with_seed(1).with_max_slots(20);
        let plan = FaultPlan::new(0).with_station(0, StationFaults::none().wake_at(4));
        let r = run_fast_exact_faulty(&config, &passive(), &plan, |_| {
            Box::new(PerStation::new(Fixed(1.0)))
        });
        assert_eq!(r.resolved_at, Some(4), "first possible Single is the wake slot");
    }

    #[test]
    fn statistical_sanity_winner_spread() {
        // Cheap in-crate check that the per-station streams do not bias
        // winner identity (the heavyweight KS/chi-square suite lives in
        // crates/protocols/tests/cross_engine.rs).
        let mut wins = [0u32; 4];
        for seed in 0..400u64 {
            let config = SimConfig::new(4, CdModel::Strong).with_seed(seed).with_max_slots(10_000);
            let r = run_fast_exact(&config, &passive(), |_| Box::new(PerStation::new(Fixed(0.25))));
            if let Some(w) = r.winner {
                wins[w as usize] += 1;
            }
        }
        let total: u32 = wins.iter().sum();
        assert!(total >= 395, "elections should resolve well before 10k slots");
        for (i, &w) in wins.iter().enumerate() {
            let share = w as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.08, "station {i} share {share}");
        }
    }
}
