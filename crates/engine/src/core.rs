//! The composable simulation core: **one** slot loop for every engine.
//!
//! Historically the exact, cohort, and faulty engines each hand-rolled the
//! same slot loop (adversary commit → action sampling → noise → resolution
//! → bookkeeping → stop rules) with visible drift between the copies. The
//! core inverts that: [`SimCore`] owns the loop once, and everything that
//! varies between engines lives behind two small interfaces:
//!
//! * [`StationSet`] answers the per-slot station-side questions — who
//!   transmits, who listens, who is the lone transmitter, what feedback
//!   the stations receive, when the run stops, and how the final report
//!   fields are computed. `exact::ExactStations`,
//!   `cohort::CohortStations`, and `faults::FaultyStations` are the three
//!   backends; a multi-hop backend would be a fourth implementation, not a
//!   fourth loop.
//! * [`crate::observer::SlotObserver`] is opt-in per-slot instrumentation
//!   (trace recording, energy accounting, live throughput) layered on the
//!   loop without touching it.
//!
//! # The RNG draw-order contract
//!
//! Bit-for-bit reproducibility (and the golden-seed suite locking it)
//! rests on a fixed per-slot draw order on exactly two `SmallRng` streams:
//!
//! 1. **adversary stream** (`seed ^ ADV_SEED_XOR`): the commit-first
//!    strategy's `decide` draws, if any;
//! 2. **station stream** (`seed`): the backend's action draws — per-station
//!    Bernoullis in index order (exact) or one binomial (cohort);
//! 3. **station stream**: the noise Bernoulli, drawn only when
//!    `noise_prob > 0`;
//! 4. **station stream**: the backend's winner draw on the first clean
//!    `Single` (cohort draws `gen_range(0..n)`; exact draws nothing).
//!
//! Budget updates, history pushes, observer calls, and feedback delivery
//! consume no randomness and may not be reordered around the draws above.

use crate::config::SimConfig;
use crate::observer::{EnergyObserver, SlotObserver, StateProbe, TraceObserver};
use crate::protocol::Protocol;
use crate::report::RunReport;
use jle_adversary::{AdversarySpec, JamBudget, JamStrategy, Rate};
use jle_radio::{ChannelHistory, HistoryView, SlotTruth, Trace};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Seed-stream separator so station randomness and adversary randomness
/// are independent. This is *the* definition — both engines used to carry
/// a private copy that could silently drift.
pub const ADV_SEED_XOR: u64 = 0x9E37_79B9_7F4A_7C15;

/// Trace preallocation, bounded so absurd `max_slots` caps do not reserve
/// gigabytes up front.
pub(crate) fn trace_capacity(config: &SimConfig) -> usize {
    config.max_slots.min(1 << 20) as usize
}

/// Word-packed per-station slot flags: the `transmitted`/`asleep` pair
/// every per-station backend needs for its feedback phase, two bits per
/// station in one `u64` word array.
///
/// Replaces the historical pair of `Vec<bool>` buffers: clearing is one
/// `memset` over `⌈n/32⌉` words per slot ([`SlotFlags::begin_slot`])
/// instead of two O(n) byte fills, and both flags for a station land on
/// the same cache line. Shared by [`crate::ExactStations`] (and therefore
/// [`crate::FaultyStations`], which delegates to it) and reusable across
/// runs through [`SimArena`].
#[derive(Debug, Clone, Default)]
pub struct SlotFlags {
    words: Vec<u64>,
    len: usize,
}

impl SlotFlags {
    /// Flags for `n` stations, all clear.
    pub fn new(n: usize) -> Self {
        SlotFlags { words: vec![0; n.div_ceil(32)], len: n }
    }

    /// Resize for `n` stations and clear everything (arena reuse).
    pub fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(32), 0);
        self.len = n;
    }

    /// Number of stations tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the flag set tracks zero stations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clear both flags of every station — the per-slot reset, one memset.
    #[inline]
    pub fn begin_slot(&mut self) {
        self.words.fill(0);
    }

    #[inline]
    fn word_bit(i: usize) -> (usize, u32) {
        (i / 32, (i % 32) as u32 * 2)
    }

    /// Mark station `i` as having transmitted this slot.
    #[inline]
    pub fn set_transmitted(&mut self, i: usize) {
        let (w, b) = Self::word_bit(i);
        self.words[w] |= 1u64 << b;
    }

    /// Mark station `i` as asleep (or terminated) this slot.
    #[inline]
    pub fn set_asleep(&mut self, i: usize) {
        let (w, b) = Self::word_bit(i);
        self.words[w] |= 2u64 << b;
    }

    /// Whether station `i` transmitted this slot.
    #[inline]
    pub fn transmitted(&self, i: usize) -> bool {
        let (w, b) = Self::word_bit(i);
        self.words[w] >> b & 1 != 0
    }

    /// Whether station `i` slept this slot.
    #[inline]
    pub fn asleep(&self, i: usize) -> bool {
        let (w, b) = Self::word_bit(i);
        self.words[w] >> b & 2 != 0
    }
}

/// What a station set did in one slot, aggregated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotActions {
    /// Number of transmitting stations.
    pub transmitters: u64,
    /// Number of listening stations (excludes sleepers and terminated
    /// stations on the exact engine; `n − k` on the cohort engine).
    pub listeners: u64,
    /// Index of the sole transmitter when `transmitters == 1` and the
    /// backend tracks identities (exact engine); `None` otherwise.
    pub lone_transmitter: Option<u64>,
}

/// The station side of the simulation: everything that differs between
/// the exact, cohort, and faulty engines.
///
/// [`SimCore::run`] calls these hooks in a fixed per-slot order — see the
/// module docs for the draw-order contract each implementation must
/// respect. To add a fourth backend, implement this trait; do **not**
/// write another slot loop.
pub trait StationSet {
    /// Whether the protocol has finished without a resolution (checked at
    /// the top of every slot; a `true` ends the run before the slot is
    /// played).
    fn finished(&self) -> bool {
        false
    }

    /// Play the action phase of `slot`: draw station randomness (in
    /// station-index order on the exact engine) and report the aggregate.
    fn act(&mut self, slot: u64, config: &SimConfig, rng: &mut SmallRng) -> SlotActions;

    /// Identify the winner of the run-resolving first clean `Single`.
    /// Called at most once per run. The cohort backend draws the uniform
    /// winner here; the exact backend returns the lone transmitter without
    /// touching the RNG.
    fn pick_winner(
        &mut self,
        actions: &SlotActions,
        config: &SimConfig,
        rng: &mut SmallRng,
    ) -> Option<u64>;

    /// Deliver end-of-slot observations. The backend applies its own CD
    /// filtering and decides which stations hear anything (the cohort
    /// backend skips the update on a run-ending clean `Single`).
    fn feedback(&mut self, slot: u64, truth: &SlotTruth, config: &SimConfig);

    /// Protocol-internal scalar for traces (LESK's estimate `u`), queried
    /// only when an observer wants it, after `act` and before `feedback`.
    fn estimate(&self) -> Option<f64> {
        None
    }

    /// Collect every station's [`StateProbe`] (post-feedback state) into
    /// `out`, in station-id order; stations whose protocol exposes no
    /// probe are skipped. Queried only when an attached observer asked
    /// via [`SlotObserver::wants_probes`] — the default no-op keeps
    /// probe-less backends free. Must not mutate state or draw
    /// randomness.
    fn collect_probes(&self, out: &mut Vec<StateProbe>) {
        let _ = out;
    }

    /// Whether the run stops after this slot. May record stop-rule state
    /// on the report (the exact backend sets
    /// [`RunReport::all_terminated`] here).
    fn should_stop(
        &mut self,
        truth: &SlotTruth,
        config: &SimConfig,
        report: &mut RunReport,
    ) -> bool;

    /// Fill in the backend-specific report fields (`timed_out`, `cap_hit`,
    /// `leaders`, …) after the loop ends.
    fn finalize(&mut self, config: &SimConfig, report: &mut RunReport);
}

/// Reusable per-thread simulation storage.
///
/// The Monte-Carlo hot path used to allocate the station vector, the
/// `transmitted`/`asleep` buffers, the history ring, and (when tracing)
/// the trace storage afresh for every trial. Passing one `SimArena` to
/// [`crate::run_exact_in`] / [`crate::run_cohort_in`] (or
/// [`SimCore::with_arena`]) across repeated runs reuses those allocations.
/// Station boxes whose protocols support in-place
/// [`Protocol::reset`] are recycled too, so the steady state of a
/// resettable exact-engine trial loop allocates nothing at all.
///
/// An arena is plain storage — runs leave no observable difference other
/// than speed, which the golden-seed suite and `engine_throughput` bench
/// both check.
#[derive(Default)]
pub struct SimArena {
    pub(crate) stations: Vec<Box<dyn Protocol>>,
    pub(crate) flags: SlotFlags,
    pub(crate) history: Option<ChannelHistory>,
    pub(crate) trace: Option<Trace>,
    pub(crate) fast: crate::fast::FastScratch,
}

impl SimArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Take a report's trace back into the arena so the next traced run
    /// reuses its allocation. Call after harvesting what you need from the
    /// trace; a report without one is a no-op.
    pub fn reclaim_trace(&mut self, report: &mut RunReport) {
        if let Some(trace) = report.trace.take() {
            self.trace = Some(trace);
        }
    }
}

impl std::fmt::Debug for SimArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArena")
            .field("stations", &self.stations.len())
            .field("capacity", &self.flags.len())
            .field("history", &self.history.is_some())
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

/// The jam-decision side of a slot: either the paper's commit-first
/// adversary, or the model-violating oracle used as a negative control.
enum Jammer {
    /// Decides before seeing the slot's actions (the paper's model).
    CommitFirst { strategy: Box<dyn JamStrategy>, budget: JamBudget, adv_rng: SmallRng },
    /// Decides *after* seeing the transmitter count — deliberately
    /// violates the model (see [`crate::run_cohort_against_oracle`]).
    Oracle { budget: JamBudget },
}

impl Jammer {
    /// The pre-action decision (commit-first strategies draw their
    /// randomness here; the oracle abstains).
    fn pre_decide(&mut self, history: &ChannelHistory) -> bool {
        match self {
            Jammer::CommitFirst { strategy, budget, adv_rng } => {
                strategy.decide(history, budget, adv_rng)
            }
            Jammer::Oracle { .. } => false,
        }
    }

    /// Clamp the request against the budget and advance the window. The
    /// oracle makes its (cheating) decision here, transmitter count in
    /// hand. Consumes no randomness.
    fn commit(&mut self, want: bool, transmitters: u64) -> bool {
        let (budget, request) = match self {
            Jammer::CommitFirst { budget, .. } => (budget, want),
            Jammer::Oracle { budget } => (budget, transmitters == 1),
        };
        let jam = request && budget.can_jam();
        budget.advance(jam);
        jam
    }

    /// The enforcer, for post-run budget accounting (read-only).
    fn budget(&self) -> &JamBudget {
        match self {
            Jammer::CommitFirst { budget, .. } | Jammer::Oracle { budget } => budget,
        }
    }
}

/// The unified slot loop, configured and ready to drive any
/// [`StationSet`].
///
/// ```
/// use jle_adversary::AdversarySpec;
/// use jle_engine::{CohortStations, SimConfig, SimCore, UniformProtocol};
/// use jle_radio::{CdModel, ChannelState};
///
/// struct Fixed(f64);
/// impl UniformProtocol for Fixed {
///     fn tx_prob(&mut self, _: u64) -> f64 {
///         self.0
///     }
///     fn on_state(&mut self, _: u64, _: ChannelState) {}
/// }
///
/// let config = SimConfig::new(1, CdModel::Strong).with_max_slots(10);
/// let mut stations = CohortStations::new(Fixed(1.0));
/// let report = SimCore::new(&config, &AdversarySpec::passive()).run(&mut stations);
/// assert_eq!(report.resolved_at, Some(0));
/// ```
pub struct SimCore<'a> {
    config: &'a SimConfig,
    jammer: Jammer,
    t_window: u64,
    arena: Option<&'a mut SimArena>,
    observers: Vec<&'a mut dyn SlotObserver>,
}

impl<'a> SimCore<'a> {
    /// A core playing `config` against the paper's commit-first adversary.
    pub fn new(config: &'a SimConfig, adversary: &AdversarySpec) -> Self {
        SimCore {
            config,
            jammer: Jammer::CommitFirst {
                strategy: adversary.strategy(),
                budget: adversary.budget(),
                adv_rng: SmallRng::seed_from_u64(config.seed ^ ADV_SEED_XOR),
            },
            t_window: adversary.t_window,
            arena: None,
            observers: Vec::new(),
        }
    }

    /// A core playing against the model-violating oracle jammer, which
    /// sees the slot's transmitter count before deciding (negative
    /// control; see [`crate::run_cohort_against_oracle`]).
    pub fn oracle(config: &'a SimConfig, eps: Rate, t_window: u64) -> Self {
        SimCore {
            config,
            jammer: Jammer::Oracle { budget: JamBudget::new(eps, t_window) },
            t_window,
            arena: None,
            observers: Vec::new(),
        }
    }

    /// Reuse buffers from (and return them to) `arena`.
    pub fn with_arena(mut self, arena: &'a mut SimArena) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Attach an external per-slot observer (may be called repeatedly;
    /// observers fire in attachment order after the built-in energy and
    /// trace layers).
    pub fn observe(mut self, observer: &'a mut dyn SlotObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Drive `stations` through the slot loop and produce the report.
    ///
    /// This is the only slot loop in the crate; every public `run_*`
    /// entry point is a thin shim over it.
    pub fn run<S: StationSet>(mut self, stations: &mut S) -> RunReport {
        let config = self.config;
        assert!(config.n >= 1, "need at least one station");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let retention = config.effective_retention(self.t_window);
        let mut history = match self.arena.as_mut().and_then(|a| a.history.take()) {
            Some(mut h) => {
                h.reset(retention);
                h
            }
            None => ChannelHistory::new(retention),
        };
        let mut energy = EnergyObserver::default();
        let mut trace_obs = if config.record_trace {
            let trace = match self.arena.as_mut().and_then(|a| a.trace.take()) {
                Some(mut t) => {
                    t.reset();
                    t
                }
                None => Trace::with_capacity(trace_capacity(config)),
            };
            Some(TraceObserver::new(trace))
        } else {
            None
        };
        let wants_estimate =
            trace_obs.is_some() || self.observers.iter().any(|o| o.wants_estimate());
        let wants_probes = self.observers.iter().any(|o| o.wants_probes());
        let mut probes: Vec<StateProbe> = Vec::new();
        let mut report = RunReport::default();

        for slot in 0..config.max_slots {
            if stations.finished() {
                break;
            }
            // 1. Commit-first adversaries decide before any action draw.
            let want = self.jammer.pre_decide(&history);

            // 2. Stations act (station-stream draws, index order).
            let actions = stations.act(slot, config, &mut rng);

            // 3. Budget clamp (oracle decides here), then the noise draw.
            let jam = self.jammer.commit(want, actions.transmitters);
            let noisy = config.noise_prob > 0.0 && rng.gen_bool(config.noise_prob);
            if noisy {
                report.noise_slots += 1;
            }
            let truth = SlotTruth::new(actions.transmitters, jam || noisy);

            // 4. Observers (energy, trace, external layers).
            let estimate = if wants_estimate { stations.estimate() } else { None };
            energy.on_slot(slot, &truth, &actions, estimate);
            if let Some(t) = trace_obs.as_mut() {
                t.on_slot(slot, &truth, &actions, estimate);
            }
            for obs in self.observers.iter_mut() {
                obs.on_slot(slot, &truth, &actions, estimate);
            }

            // 5. Resolution: the first clean Single selects the winner.
            if truth.is_clean_single() && report.resolved_at.is_none() {
                report.resolved_at = Some(slot);
                report.winner = stations.pick_winner(&actions, config, &mut rng);
            }

            // 6. Feedback, bookkeeping, stop rules. Probes sample the
            // *post-feedback* state (consuming no randomness), so a
            // timeline shows the transition each slot caused.
            stations.feedback(slot, &truth, config);
            if wants_probes {
                probes.clear();
                stations.collect_probes(&mut probes);
                for obs in self.observers.iter_mut() {
                    if obs.wants_probes() {
                        obs.on_probes(slot, &probes);
                    }
                }
            }
            history.push(&truth);
            report.slots = slot + 1;
            if stations.should_stop(&truth, config, &mut report) {
                break;
            }
        }

        report.counts = history.counts();
        report.adv_budget_spent = self.jammer.budget().spent_fraction();
        energy.finish(&mut report);
        if let Some(mut t) = trace_obs {
            t.finish(&mut report);
        }
        for obs in self.observers.iter_mut() {
            obs.finish(&mut report);
        }
        stations.finalize(config, &mut report);
        // Post-finalization pass: observers see the settled report (no
        // randomness, no mutation — telemetry classification lives here).
        for obs in self.observers.iter_mut() {
            obs.after_run(&report);
        }
        if let Some(arena) = self.arena {
            arena.history = Some(history);
        }
        report
    }
}
