//! Shared helpers for the golden-seed suites (`golden_seed.rs`,
//! `topology_identity.rs`): the fixture protocols, the canonical
//! report+trace snapshot, and the fixture comparison.
//!
//! Each integration-test binary compiles its own copy and uses a subset,
//! hence the `dead_code` allowance.

#![allow(dead_code)]

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{Action, PerStation, Protocol, RunReport, SimConfig, Status, UniformProtocol};
use jle_radio::{CdModel, ChannelState, Observation};
use rand::RngCore;
use std::path::PathBuf;

pub const MAX_SLOTS: u64 = 4_000;
pub const SEED: u64 = 0xA11CE;

/// Fixed-probability uniform protocol (memoryless).
#[derive(Debug, Clone)]
pub struct Fixed(pub f64);

impl UniformProtocol for Fixed {
    fn tx_prob(&mut self, _: u64) -> f64 {
        self.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {}
}

/// History-dependent backoff in the LESK mold: exercises `on_state` on
/// every channel state, a non-trivial `estimate()` for trace recording,
/// and probabilities that sweep through the binomial sampler's regimes.
#[derive(Debug, Clone)]
pub struct Backoff {
    u: f64,
}

impl Backoff {
    pub fn new() -> Self {
        Backoff { u: 0.0 }
    }
}

impl UniformProtocol for Backoff {
    fn tx_prob(&mut self, _: u64) -> f64 {
        2f64.powf(-self.u)
    }
    fn on_state(&mut self, _: u64, state: ChannelState) {
        match state {
            ChannelState::Null => self.u = (self.u - 1.0).max(0.0),
            ChannelState::Collision => self.u += 0.5,
            ChannelState::Single => {}
        }
    }
    fn estimate(&self) -> Option<f64> {
        Some(self.u)
    }
}

/// Stops via `finished()` after a fixed number of observed slots.
#[derive(Debug, Clone)]
pub struct CountDown(pub u32);

impl UniformProtocol for CountDown {
    fn tx_prob(&mut self, _: u64) -> f64 {
        0.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {
        self.0 -= 1;
    }
    fn finished(&self) -> bool {
        self.0 == 0
    }
}

/// Duty-cycles a station: awake only in slots `≡ phase (mod period)`.
/// Exercises the active-set loop's park/wake heap in a fixture — with
/// period 4 over 12 stations the awake prefix shrinks to ~3 each slot.
pub struct DutyBackoff {
    inner: PerStation<Backoff>,
    period: u64,
    phase: u64,
}

impl DutyBackoff {
    pub fn new(period: u64, phase: u64) -> Self {
        DutyBackoff { inner: PerStation::new(Backoff::new()), period, phase: phase % period }
    }
}

impl Protocol for DutyBackoff {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        if slot % self.period == self.phase {
            self.inner.act(slot, rng)
        } else {
            Action::Sleep
        }
    }
    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        self.inner.feedback(slot, transmitted, obs);
    }
    fn status(&self) -> Status {
        self.inner.status()
    }
    fn finished(&self) -> bool {
        self.inner.finished()
    }
    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }
    fn wake_hint(&self, slot: u64) -> u64 {
        let next = slot + 1;
        next + (self.phase + self.period - next % self.period) % self.period
    }
}

/// FNV-1a (64-bit), the digest pinning trace content.
pub struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub fn push(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    pub fn push_all(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }
}

/// Render report + trace digest as one canonical JSON line.
pub fn snapshot(report: &RunReport) -> String {
    let body = serde_json::to_string(report).expect("RunReport serializes");
    let trace = match &report.trace {
        None => "null".to_string(),
        Some(t) => {
            let mut h = Fnv::new();
            for s in t.iter() {
                let code = match s.state() {
                    ChannelState::Null => 0u8,
                    ChannelState::Single => 1,
                    ChannelState::Collision => 2,
                };
                let b = code
                    | (u8::from(s.jammed()) << 2)
                    | (u8::from(s.clean_single()) << 3)
                    | (u8::from(s.any_transmitter()) << 4);
                h.push(b);
            }
            for &e in &t.estimates {
                h.push_all(&e.to_bits().to_le_bytes());
            }
            format!(
                "{{\"len\":{},\"estimates\":{},\"digest\":\"{:016x}\"}}",
                t.len(),
                t.estimates.len(),
                h.0
            )
        }
    };
    format!("{{\"report\":{body},\"trace\":{trace}}}\n")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.json"))
}

/// Compare against (or, under `UPDATE_GOLDEN=1`, rewrite) the fixture.
pub fn check(name: &str, report: &RunReport) {
    let actual = snapshot(report);
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); regenerate with UPDATE_GOLDEN=1")
    });
    assert_eq!(actual, expected, "golden-seed mismatch for `{name}`");
}

/// Compare against an existing fixture, *never* rewriting it — used by the
/// identity suites that replay another backend's fixtures, where honoring
/// `UPDATE_GOLDEN` could paper over a drifted backend.
pub fn check_against_existing(name: &str, report: &RunReport) {
    let actual = snapshot(report);
    let path = golden_path(name);
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); it is owned by golden_seed.rs")
    });
    assert_eq!(actual, expected, "backend identity broken against fixture `{name}`");
}

/// The budget-saturating jammer: deterministic given the budget.
pub fn saturating() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating)
}

/// Oblivious random jammer: draws from the adversary RNG every slot, so
/// these fixtures also pin the adversary seed-stream separation.
pub fn random_jammer() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Random { prob: 0.7 })
}

pub fn exact_config(cd: CdModel) -> SimConfig {
    SimConfig::new(12, cd).with_seed(SEED).with_max_slots(MAX_SLOTS).with_trace(true)
}

pub fn cohort_config(cd: CdModel) -> SimConfig {
    SimConfig::new(64, cd).with_seed(SEED).with_max_slots(MAX_SLOTS).with_trace(true)
}
