//! Golden-seed regression suite: locks the exact bit-level behavior of all
//! engine entry points (`run_exact`, `run_cohort`, `run_exact_faulty`, and
//! the oracle negative control) across the three CD models under a jamming
//! adversary.
//!
//! The fixtures under `tests/golden/` were generated from the pre-refactor
//! engines (the three independent slot loops) and must remain byte-for-byte
//! reproducible by any future engine: the serialized `RunReport` plus an
//! FNV-1a digest of the full trace pins the per-slot RNG draw order
//! (adversary decide → station draws in index order → noise Bernoulli →
//! cohort winner draw) and every report-finalization rule.
//!
//! Regenerate (only when an intentional behavior change is being made, with
//! an explanation in the commit): `UPDATE_GOLDEN=1 cargo test -p jle-engine
//! --test golden_seed`.

mod common;

use common::*;
use jle_adversary::{AdversarySpec, Rate};
use jle_engine::{
    run_cohort, run_cohort_against_oracle, run_exact, run_exact_churn, run_exact_faulty,
    run_fast_exact, run_fast_exact_churn, run_fast_exact_faulty, ChurnPlan, FaultPlan, PerStation,
    SimConfig, StationChurn, StationFaults, StopRule,
};
use jle_radio::CdModel;

// ---------------------------------------------------------------- exact --

#[test]
fn golden_exact_strong() {
    let r = run_exact(&exact_config(CdModel::Strong), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_strong", &r);
}

#[test]
fn golden_exact_strong_noise() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    let r = run_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_strong_noise", &r);
}

#[test]
fn golden_exact_weak_random_jammer() {
    let r = run_exact(&exact_config(CdModel::Weak), &random_jammer(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_weak_random_jammer", &r);
}

#[test]
fn golden_exact_nocd() {
    let r = run_exact(&exact_config(CdModel::NoCd), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_nocd", &r);
}

#[test]
fn golden_exact_weak_cap() {
    // Weak-CD winners never learn, so `AllTerminated` never fires: the run
    // walks the full 1500-slot horizon, cycling the jam budget window ~90
    // times and drawing station randomness every slot — the long-run
    // fixture pinning steady-state loop behavior.
    let config =
        exact_config(CdModel::Weak).with_max_slots(1_500).with_stop(StopRule::AllTerminated);
    let r = run_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_weak_cap", &r);
}

#[test]
fn golden_exact_all_terminated() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_all_terminated", &r);
}

// --------------------------------------------------------------- cohort --

#[test]
fn golden_cohort_strong() {
    let r = run_cohort(&cohort_config(CdModel::Strong), &saturating(), Backoff::new);
    check("cohort_strong", &r);
}

#[test]
fn golden_cohort_weak_random_jammer() {
    let r = run_cohort(&cohort_config(CdModel::Weak), &random_jammer(), Backoff::new);
    check("cohort_weak_random_jammer", &r);
}

#[test]
fn golden_cohort_nocd() {
    let r = run_cohort(&cohort_config(CdModel::NoCd), &saturating(), Backoff::new);
    check("cohort_nocd", &r);
}

#[test]
fn golden_cohort_noise() {
    let config = cohort_config(CdModel::Strong).with_noise(0.01);
    let r = run_cohort(&config, &saturating(), Backoff::new);
    check("cohort_noise", &r);
}

#[test]
fn golden_cohort_continue_past_singles() {
    let config =
        cohort_config(CdModel::Strong).with_max_slots(512).with_continue_past_singles(true);
    let r = run_cohort(&config, &saturating(), Backoff::new);
    check("cohort_continue_past_singles", &r);
}

#[test]
fn golden_cohort_finished_protocol() {
    let config = cohort_config(CdModel::Strong);
    let r = run_cohort(&config, &AdversarySpec::passive(), || CountDown(9));
    check("cohort_finished_protocol", &r);
}

// --------------------------------------------------------------- faulty --

/// A plan exercising every fault kind at once.
fn stress_plan() -> FaultPlan {
    FaultPlan::new(3)
        .with_station(1, StationFaults::none().crash_with_recovery(6, 60))
        .with_station(2, StationFaults::none().wake_at(3))
        .with_station(3, StationFaults::none().deaf_between(2, 30))
        .with_station(4, StationFaults::none().flip_prob(0.2))
        .with_station(5, StationFaults::none().crash(10))
}

#[test]
fn golden_faulty_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_exact_faulty(&config, &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("faulty_strong", &r);
}

#[test]
fn golden_faulty_weak() {
    let r = run_exact_faulty(&exact_config(CdModel::Weak), &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("faulty_weak", &r);
}

#[test]
fn golden_faulty_nocd() {
    let r =
        run_exact_faulty(&exact_config(CdModel::NoCd), &random_jammer(), &stress_plan(), |_| {
            Box::new(PerStation::new(Backoff::new()))
        });
    check("faulty_nocd", &r);
}

// ----------------------------------------------------------- fast exact --
//
// The fast backend draws from counter-based per-station streams, so its
// fixtures are *distinct* from (and unrelated to) the legacy `exact_*`
// ones — these pin the fast backend's own draw-order contract
// (DESIGN.md §12): station draws keyed by `(seed, station, slot, draw)`,
// order-independent action phase, heap-driven wake scheduling.
//
// Regenerate only the fast fixtures (never the legacy ones in the same
// sweep): `UPDATE_GOLDEN=1 cargo test -p jle-engine --test golden_seed fast_`.

#[test]
fn fast_exact_strong() {
    let r = run_fast_exact(&exact_config(CdModel::Strong), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_exact_strong", &r);
}

#[test]
fn fast_exact_strong_noise() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    let r = run_fast_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("fast_exact_strong_noise", &r);
}

#[test]
fn fast_exact_weak_random_jammer() {
    let r = run_fast_exact(&exact_config(CdModel::Weak), &random_jammer(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_exact_weak_random_jammer", &r);
}

#[test]
fn fast_exact_nocd() {
    let r = run_fast_exact(&exact_config(CdModel::NoCd), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_exact_nocd", &r);
}

#[test]
fn fast_exact_all_terminated() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_fast_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("fast_exact_all_terminated", &r);
}

#[test]
fn fast_exact_duty_cycled() {
    // Sleep-heavy workload: pins the wake-heap schedule (park order,
    // wake order, prefix compaction) in addition to the draw streams.
    let r = run_fast_exact(&exact_config(CdModel::Strong), &saturating(), |i| {
        Box::new(DutyBackoff::new(4, i))
    });
    check("fast_exact_duty_cycled", &r);
}

#[test]
fn fast_faulty_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_fast_exact_faulty(&config, &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_faulty_strong", &r);
}

#[test]
fn fast_faulty_nocd() {
    let r = run_fast_exact_faulty(
        &exact_config(CdModel::NoCd),
        &random_jammer(),
        &stress_plan(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("fast_faulty_nocd", &r);
}

// ---------------------------------------------------------------- churn --
//
// Open-world identity contract: an *empty* churn plan (and an empty fault
// plan) must be byte-identical to the pristine run on both exact backends
// — checked against the very same fixtures the pristine tests pin, so the
// wrappers cannot drift even by one RNG draw.

#[test]
fn churn_empty_plan_matches_pristine_exact() {
    let r =
        run_exact_churn(&exact_config(CdModel::Strong), &saturating(), &ChurnPlan::empty(), |_| {
            Box::new(PerStation::new(Backoff::new()))
        });
    check("exact_strong", &r);
}

#[test]
fn churn_empty_plan_matches_pristine_fast() {
    let r = run_fast_exact_churn(
        &exact_config(CdModel::Strong),
        &saturating(),
        &ChurnPlan::empty(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("fast_exact_strong", &r);
}

#[test]
fn faulty_empty_plan_matches_pristine_exact() {
    let r = run_exact_faulty(
        &exact_config(CdModel::Strong),
        &saturating(),
        &FaultPlan::empty(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("exact_strong", &r);
}

#[test]
fn faulty_empty_plan_matches_pristine_fast() {
    let r = run_fast_exact_faulty(
        &exact_config(CdModel::Strong),
        &saturating(),
        &FaultPlan::empty(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("fast_exact_strong", &r);
}

/// A churn plan exercising join, leave, and leave-with-rejoin at once.
fn churn_stress_plan() -> ChurnPlan {
    ChurnPlan::empty()
        .with_station(1, StationChurn::founding().joining_at(40))
        .with_station(2, StationChurn::founding().leaving_at(200))
        .with_station(3, StationChurn::founding().leave_and_rejoin(100, 400))
        .with_station(4, StationChurn::founding().joining_at(25).leave_and_rejoin(300, 900))
}

#[test]
fn golden_churn_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::Horizon).with_max_slots(1_200);
    let r = run_exact_churn(&config, &saturating(), &churn_stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("churn_strong", &r);
}

#[test]
fn fast_churn_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::Horizon).with_max_slots(1_200);
    let r = run_fast_exact_churn(&config, &saturating(), &churn_stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_churn_strong", &r);
}

// --------------------------------------------------------------- oracle --

#[test]
fn golden_oracle_strong() {
    let config = SimConfig::new(16, CdModel::Strong).with_seed(SEED).with_max_slots(2_000);
    let r = run_cohort_against_oracle(&config, Rate::from_f64(0.05), 16, || Fixed(1.0 / 16.0));
    check("oracle_strong", &r);
}
