//! Golden-seed regression suite: locks the exact bit-level behavior of all
//! engine entry points (`run_exact`, `run_cohort`, `run_exact_faulty`, and
//! the oracle negative control) across the three CD models under a jamming
//! adversary.
//!
//! The fixtures under `tests/golden/` were generated from the pre-refactor
//! engines (the three independent slot loops) and must remain byte-for-byte
//! reproducible by any future engine: the serialized `RunReport` plus an
//! FNV-1a digest of the full trace pins the per-slot RNG draw order
//! (adversary decide → station draws in index order → noise Bernoulli →
//! cohort winner draw) and every report-finalization rule.
//!
//! Regenerate (only when an intentional behavior change is being made, with
//! an explanation in the commit): `UPDATE_GOLDEN=1 cargo test -p jle-engine
//! --test golden_seed`.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{
    run_cohort, run_cohort_against_oracle, run_exact, run_exact_churn, run_exact_faulty,
    run_fast_exact, run_fast_exact_churn, run_fast_exact_faulty, Action, ChurnPlan, FaultPlan,
    PerStation, Protocol, RunReport, SimConfig, StationChurn, StationFaults, Status, StopRule,
    UniformProtocol,
};
use jle_radio::{CdModel, ChannelState, Observation};
use rand::RngCore;
use std::path::PathBuf;

const MAX_SLOTS: u64 = 4_000;
const SEED: u64 = 0xA11CE;

/// Fixed-probability uniform protocol (memoryless).
#[derive(Debug, Clone)]
struct Fixed(f64);

impl UniformProtocol for Fixed {
    fn tx_prob(&mut self, _: u64) -> f64 {
        self.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {}
}

/// History-dependent backoff in the LESK mold: exercises `on_state` on
/// every channel state, a non-trivial `estimate()` for trace recording,
/// and probabilities that sweep through the binomial sampler's regimes.
#[derive(Debug, Clone)]
struct Backoff {
    u: f64,
}

impl Backoff {
    fn new() -> Self {
        Backoff { u: 0.0 }
    }
}

impl UniformProtocol for Backoff {
    fn tx_prob(&mut self, _: u64) -> f64 {
        2f64.powf(-self.u)
    }
    fn on_state(&mut self, _: u64, state: ChannelState) {
        match state {
            ChannelState::Null => self.u = (self.u - 1.0).max(0.0),
            ChannelState::Collision => self.u += 0.5,
            ChannelState::Single => {}
        }
    }
    fn estimate(&self) -> Option<f64> {
        Some(self.u)
    }
}

/// Stops via `finished()` after a fixed number of observed slots.
#[derive(Debug, Clone)]
struct CountDown(u32);

impl UniformProtocol for CountDown {
    fn tx_prob(&mut self, _: u64) -> f64 {
        0.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {
        self.0 -= 1;
    }
    fn finished(&self) -> bool {
        self.0 == 0
    }
}

/// FNV-1a (64-bit), the digest pinning trace content.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn push_all(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }
}

/// Render report + trace digest as one canonical JSON line.
fn snapshot(report: &RunReport) -> String {
    let body = serde_json::to_string(report).expect("RunReport serializes");
    let trace = match &report.trace {
        None => "null".to_string(),
        Some(t) => {
            let mut h = Fnv::new();
            for s in t.iter() {
                let code = match s.state() {
                    ChannelState::Null => 0u8,
                    ChannelState::Single => 1,
                    ChannelState::Collision => 2,
                };
                let b = code
                    | (u8::from(s.jammed()) << 2)
                    | (u8::from(s.clean_single()) << 3)
                    | (u8::from(s.any_transmitter()) << 4);
                h.push(b);
            }
            for &e in &t.estimates {
                h.push_all(&e.to_bits().to_le_bytes());
            }
            format!(
                "{{\"len\":{},\"estimates\":{},\"digest\":\"{:016x}\"}}",
                t.len(),
                t.estimates.len(),
                h.0
            )
        }
    };
    format!("{{\"report\":{body},\"trace\":{trace}}}\n")
}

/// Compare against (or, under `UPDATE_GOLDEN=1`, rewrite) the fixture.
fn check(name: &str, report: &RunReport) {
    let actual = snapshot(report);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden");
    let path = dir.join(format!("{name}.json"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); regenerate with UPDATE_GOLDEN=1")
    });
    assert_eq!(actual, expected, "golden-seed mismatch for `{name}`");
}

/// The budget-saturating jammer: deterministic given the budget.
fn saturating() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating)
}

/// Oblivious random jammer: draws from the adversary RNG every slot, so
/// these fixtures also pin the adversary seed-stream separation.
fn random_jammer() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Random { prob: 0.7 })
}

fn exact_config(cd: CdModel) -> SimConfig {
    SimConfig::new(12, cd).with_seed(SEED).with_max_slots(MAX_SLOTS).with_trace(true)
}

fn cohort_config(cd: CdModel) -> SimConfig {
    SimConfig::new(64, cd).with_seed(SEED).with_max_slots(MAX_SLOTS).with_trace(true)
}

// ---------------------------------------------------------------- exact --

#[test]
fn golden_exact_strong() {
    let r = run_exact(&exact_config(CdModel::Strong), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_strong", &r);
}

#[test]
fn golden_exact_strong_noise() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    let r = run_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_strong_noise", &r);
}

#[test]
fn golden_exact_weak_random_jammer() {
    let r = run_exact(&exact_config(CdModel::Weak), &random_jammer(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_weak_random_jammer", &r);
}

#[test]
fn golden_exact_nocd() {
    let r = run_exact(&exact_config(CdModel::NoCd), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_nocd", &r);
}

#[test]
fn golden_exact_weak_cap() {
    // Weak-CD winners never learn, so `AllTerminated` never fires: the run
    // walks the full 1500-slot horizon, cycling the jam budget window ~90
    // times and drawing station randomness every slot — the long-run
    // fixture pinning steady-state loop behavior.
    let config =
        exact_config(CdModel::Weak).with_max_slots(1_500).with_stop(StopRule::AllTerminated);
    let r = run_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_weak_cap", &r);
}

#[test]
fn golden_exact_all_terminated() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_all_terminated", &r);
}

// --------------------------------------------------------------- cohort --

#[test]
fn golden_cohort_strong() {
    let r = run_cohort(&cohort_config(CdModel::Strong), &saturating(), Backoff::new);
    check("cohort_strong", &r);
}

#[test]
fn golden_cohort_weak_random_jammer() {
    let r = run_cohort(&cohort_config(CdModel::Weak), &random_jammer(), Backoff::new);
    check("cohort_weak_random_jammer", &r);
}

#[test]
fn golden_cohort_nocd() {
    let r = run_cohort(&cohort_config(CdModel::NoCd), &saturating(), Backoff::new);
    check("cohort_nocd", &r);
}

#[test]
fn golden_cohort_noise() {
    let config = cohort_config(CdModel::Strong).with_noise(0.01);
    let r = run_cohort(&config, &saturating(), Backoff::new);
    check("cohort_noise", &r);
}

#[test]
fn golden_cohort_continue_past_singles() {
    let config =
        cohort_config(CdModel::Strong).with_max_slots(512).with_continue_past_singles(true);
    let r = run_cohort(&config, &saturating(), Backoff::new);
    check("cohort_continue_past_singles", &r);
}

#[test]
fn golden_cohort_finished_protocol() {
    let config = cohort_config(CdModel::Strong);
    let r = run_cohort(&config, &AdversarySpec::passive(), || CountDown(9));
    check("cohort_finished_protocol", &r);
}

// --------------------------------------------------------------- faulty --

/// A plan exercising every fault kind at once.
fn stress_plan() -> FaultPlan {
    FaultPlan::new(3)
        .with_station(1, StationFaults::none().crash_with_recovery(6, 60))
        .with_station(2, StationFaults::none().wake_at(3))
        .with_station(3, StationFaults::none().deaf_between(2, 30))
        .with_station(4, StationFaults::none().flip_prob(0.2))
        .with_station(5, StationFaults::none().crash(10))
}

#[test]
fn golden_faulty_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_exact_faulty(&config, &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("faulty_strong", &r);
}

#[test]
fn golden_faulty_weak() {
    let r = run_exact_faulty(&exact_config(CdModel::Weak), &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("faulty_weak", &r);
}

#[test]
fn golden_faulty_nocd() {
    let r =
        run_exact_faulty(&exact_config(CdModel::NoCd), &random_jammer(), &stress_plan(), |_| {
            Box::new(PerStation::new(Backoff::new()))
        });
    check("faulty_nocd", &r);
}

// ----------------------------------------------------------- fast exact --
//
// The fast backend draws from counter-based per-station streams, so its
// fixtures are *distinct* from (and unrelated to) the legacy `exact_*`
// ones — these pin the fast backend's own draw-order contract
// (DESIGN.md §12): station draws keyed by `(seed, station, slot, draw)`,
// order-independent action phase, heap-driven wake scheduling.
//
// Regenerate only the fast fixtures (never the legacy ones in the same
// sweep): `UPDATE_GOLDEN=1 cargo test -p jle-engine --test golden_seed fast_`.

/// Duty-cycles a station: awake only in slots `≡ phase (mod period)`.
/// Exercises the active-set loop's park/wake heap in a fixture — with
/// period 4 over 12 stations the awake prefix shrinks to ~3 each slot.
struct DutyBackoff {
    inner: PerStation<Backoff>,
    period: u64,
    phase: u64,
}

impl DutyBackoff {
    fn new(period: u64, phase: u64) -> Self {
        DutyBackoff { inner: PerStation::new(Backoff::new()), period, phase: phase % period }
    }
}

impl Protocol for DutyBackoff {
    fn act(&mut self, slot: u64, rng: &mut dyn RngCore) -> Action {
        if slot % self.period == self.phase {
            self.inner.act(slot, rng)
        } else {
            Action::Sleep
        }
    }
    fn feedback(&mut self, slot: u64, transmitted: bool, obs: Observation) {
        self.inner.feedback(slot, transmitted, obs);
    }
    fn status(&self) -> Status {
        self.inner.status()
    }
    fn finished(&self) -> bool {
        self.inner.finished()
    }
    fn estimate(&self) -> Option<f64> {
        self.inner.estimate()
    }
    fn wake_hint(&self, slot: u64) -> u64 {
        let next = slot + 1;
        next + (self.phase + self.period - next % self.period) % self.period
    }
}

#[test]
fn fast_exact_strong() {
    let r = run_fast_exact(&exact_config(CdModel::Strong), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_exact_strong", &r);
}

#[test]
fn fast_exact_strong_noise() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    let r = run_fast_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("fast_exact_strong_noise", &r);
}

#[test]
fn fast_exact_weak_random_jammer() {
    let r = run_fast_exact(&exact_config(CdModel::Weak), &random_jammer(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_exact_weak_random_jammer", &r);
}

#[test]
fn fast_exact_nocd() {
    let r = run_fast_exact(&exact_config(CdModel::NoCd), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_exact_nocd", &r);
}

#[test]
fn fast_exact_all_terminated() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_fast_exact(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("fast_exact_all_terminated", &r);
}

#[test]
fn fast_exact_duty_cycled() {
    // Sleep-heavy workload: pins the wake-heap schedule (park order,
    // wake order, prefix compaction) in addition to the draw streams.
    let r = run_fast_exact(&exact_config(CdModel::Strong), &saturating(), |i| {
        Box::new(DutyBackoff::new(4, i))
    });
    check("fast_exact_duty_cycled", &r);
}

#[test]
fn fast_faulty_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = run_fast_exact_faulty(&config, &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_faulty_strong", &r);
}

#[test]
fn fast_faulty_nocd() {
    let r = run_fast_exact_faulty(
        &exact_config(CdModel::NoCd),
        &random_jammer(),
        &stress_plan(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("fast_faulty_nocd", &r);
}

// ---------------------------------------------------------------- churn --
//
// Open-world identity contract: an *empty* churn plan (and an empty fault
// plan) must be byte-identical to the pristine run on both exact backends
// — checked against the very same fixtures the pristine tests pin, so the
// wrappers cannot drift even by one RNG draw.

#[test]
fn churn_empty_plan_matches_pristine_exact() {
    let r =
        run_exact_churn(&exact_config(CdModel::Strong), &saturating(), &ChurnPlan::empty(), |_| {
            Box::new(PerStation::new(Backoff::new()))
        });
    check("exact_strong", &r);
}

#[test]
fn churn_empty_plan_matches_pristine_fast() {
    let r = run_fast_exact_churn(
        &exact_config(CdModel::Strong),
        &saturating(),
        &ChurnPlan::empty(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("fast_exact_strong", &r);
}

#[test]
fn faulty_empty_plan_matches_pristine_exact() {
    let r = run_exact_faulty(
        &exact_config(CdModel::Strong),
        &saturating(),
        &FaultPlan::empty(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("exact_strong", &r);
}

#[test]
fn faulty_empty_plan_matches_pristine_fast() {
    let r = run_fast_exact_faulty(
        &exact_config(CdModel::Strong),
        &saturating(),
        &FaultPlan::empty(),
        |_| Box::new(PerStation::new(Backoff::new())),
    );
    check("fast_exact_strong", &r);
}

/// A churn plan exercising join, leave, and leave-with-rejoin at once.
fn churn_stress_plan() -> ChurnPlan {
    ChurnPlan::empty()
        .with_station(1, StationChurn::founding().joining_at(40))
        .with_station(2, StationChurn::founding().leaving_at(200))
        .with_station(3, StationChurn::founding().leave_and_rejoin(100, 400))
        .with_station(4, StationChurn::founding().joining_at(25).leave_and_rejoin(300, 900))
}

#[test]
fn golden_churn_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::Horizon).with_max_slots(1_200);
    let r = run_exact_churn(&config, &saturating(), &churn_stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("churn_strong", &r);
}

#[test]
fn fast_churn_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::Horizon).with_max_slots(1_200);
    let r = run_fast_exact_churn(&config, &saturating(), &churn_stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("fast_churn_strong", &r);
}

// --------------------------------------------------------------- oracle --

#[test]
fn golden_oracle_strong() {
    let config = SimConfig::new(16, CdModel::Strong).with_seed(SEED).with_max_slots(2_000);
    let r = run_cohort_against_oracle(&config, Rate::from_f64(0.05), 16, || Fixed(1.0 / 16.0));
    check("oracle_strong", &r);
}
