//! Telemetry is behaviour-invisible: every golden-seed fixture, re-run
//! with the **full telemetry stack attached** (a `TelemetryObserver` with
//! metrics + flight recorder, plus a `ThroughputObserver`), must produce
//! a byte-identical snapshot to the fixture the bare engines wrote.
//!
//! This is the observability counterpart of the golden suite: observers
//! run after each slot's randomness is fully drawn (DESIGN.md §10), so
//! attaching them may not perturb a single RNG draw, stop decision, or
//! report field. A regression here means telemetry leaked into the
//! simulation.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::telemetry::{EngineMetrics, TelemetryObserver};
use jle_engine::{
    CohortStations, ExactStations, FaultPlan, FaultyStations, PerStation, RunReport, SimConfig,
    SimCore, StationFaults, StopRule, ThroughputObserver, UniformProtocol,
};
use jle_radio::{CdModel, ChannelState};
use jle_telemetry::{FlightRecorder, MetricRegistry};
use std::path::PathBuf;
use std::sync::Arc;

const MAX_SLOTS: u64 = 4_000;
const SEED: u64 = 0xA11CE;

#[derive(Debug, Clone)]
struct Fixed(f64);

impl UniformProtocol for Fixed {
    fn tx_prob(&mut self, _: u64) -> f64 {
        self.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {}
}

/// Same history-dependent workload as the golden suite.
#[derive(Debug, Clone)]
struct Backoff {
    u: f64,
}

impl Backoff {
    fn new() -> Self {
        Backoff { u: 0.0 }
    }
}

impl UniformProtocol for Backoff {
    fn tx_prob(&mut self, _: u64) -> f64 {
        2f64.powf(-self.u)
    }
    fn on_state(&mut self, _: u64, state: ChannelState) {
        match state {
            ChannelState::Null => self.u = (self.u - 1.0).max(0.0),
            ChannelState::Collision => self.u += 0.5,
            ChannelState::Single => {}
        }
    }
    fn estimate(&self) -> Option<f64> {
        Some(self.u)
    }
}

#[derive(Debug, Clone)]
struct CountDown(u32);

impl UniformProtocol for CountDown {
    fn tx_prob(&mut self, _: u64) -> f64 {
        0.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {
        self.0 -= 1;
    }
    fn finished(&self) -> bool {
        self.0 == 0
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn push_all(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }
}

/// Identical snapshot format to `golden_seed.rs` — byte-for-byte.
fn snapshot(report: &RunReport) -> String {
    let body = serde_json::to_string(report).expect("RunReport serializes");
    let trace = match &report.trace {
        None => "null".to_string(),
        Some(t) => {
            let mut h = Fnv::new();
            for s in t.iter() {
                let code = match s.state() {
                    ChannelState::Null => 0u8,
                    ChannelState::Single => 1,
                    ChannelState::Collision => 2,
                };
                let b = code
                    | (u8::from(s.jammed()) << 2)
                    | (u8::from(s.clean_single()) << 3)
                    | (u8::from(s.any_transmitter()) << 4);
                h.push(b);
            }
            for &e in &t.estimates {
                h.push_all(&e.to_bits().to_le_bytes());
            }
            format!(
                "{{\"len\":{},\"estimates\":{},\"digest\":\"{:016x}\"}}",
                t.len(),
                t.estimates.len(),
                h.0
            )
        }
    };
    format!("{{\"report\":{body},\"trace\":{trace}}}\n")
}

/// Read-only fixture comparison (the golden suite owns regeneration).
fn check(name: &str, report: &RunReport) {
    let actual = snapshot(report);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.json"));
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); regenerate via the golden_seed suite")
    });
    assert_eq!(actual, expected, "telemetry perturbed the simulation for `{name}`");
}

/// Shared per-process telemetry plumbing: metrics registry + a flight
/// recorder writing into a temp dir (cap-hit fixtures will dump records;
/// the point is that dumping must not change the report).
fn stack() -> (MetricRegistry, Arc<FlightRecorder>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("jle-invariance-{}", std::process::id()));
    let recorder = Arc::new(FlightRecorder::new(&dir).expect("flight dir"));
    (MetricRegistry::new(), recorder, dir)
}

/// Run a station backend under the full telemetry stack and hand back the
/// report. A macro (not a function) so the observers and the `SimCore` can
/// share one scope — `SimCore<'a>` ties its observers to the config borrow.
macro_rules! run_with_stack {
    ($config:expr, $core:expr, $stations:expr) => {{
        let config: &SimConfig = $config;
        let (registry, recorder, _dir) = stack();
        let live = jle_telemetry::Counter::detached();
        let live_sink = live.clone();
        let mut telemetry = TelemetryObserver::new(config)
            .with_metrics(EngineMetrics::register(&registry))
            .with_flight_recorder(recorder)
            .with_fingerprint("invariance-test")
            .with_context("suite", "telemetry_invariance");
        let mut throughput = ThroughputObserver::new(64, move |k| live_sink.add(k));
        let report = $core.observe(&mut telemetry).observe(&mut throughput).run($stations);
        assert_eq!(live.get(), report.slots, "throughput observer saw every slot");
        report
    }};
}

fn exact_observed(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnMut(u64) -> Box<dyn jle_engine::Protocol>,
) -> RunReport {
    let mut stations = ExactStations::new(config, factory);
    run_with_stack!(config, SimCore::new(config, adversary), &mut stations)
}

fn cohort_observed<U: UniformProtocol>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    factory: impl FnOnce() -> U,
) -> RunReport {
    let mut stations = CohortStations::new(factory());
    run_with_stack!(config, SimCore::new(config, adversary), &mut stations)
}

fn faulty_observed<F>(
    config: &SimConfig,
    adversary: &AdversarySpec,
    plan: &FaultPlan,
    factory: F,
) -> RunReport
where
    F: Fn(u64) -> Box<dyn jle_engine::Protocol> + Send + Sync + 'static,
{
    let mut stations = FaultyStations::new(config, plan, factory);
    run_with_stack!(config, SimCore::new(config, adversary), &mut stations)
}

fn saturating() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating)
}

fn random_jammer() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Random { prob: 0.7 })
}

fn exact_config(cd: CdModel) -> SimConfig {
    SimConfig::new(12, cd).with_seed(SEED).with_max_slots(MAX_SLOTS).with_trace(true)
}

fn cohort_config(cd: CdModel) -> SimConfig {
    SimConfig::new(64, cd).with_seed(SEED).with_max_slots(MAX_SLOTS).with_trace(true)
}

fn stress_plan() -> FaultPlan {
    FaultPlan::new(3)
        .with_station(1, StationFaults::none().crash_with_recovery(6, 60))
        .with_station(2, StationFaults::none().wake_at(3))
        .with_station(3, StationFaults::none().deaf_between(2, 30))
        .with_station(4, StationFaults::none().flip_prob(0.2))
        .with_station(5, StationFaults::none().crash(10))
}

// ---------------------------------------------------------------- exact --

#[test]
fn observed_exact_strong() {
    let r = exact_observed(&exact_config(CdModel::Strong), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_strong", &r);
}

#[test]
fn observed_exact_strong_noise() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    let r = exact_observed(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_strong_noise", &r);
}

#[test]
fn observed_exact_weak_random_jammer() {
    let r = exact_observed(&exact_config(CdModel::Weak), &random_jammer(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_weak_random_jammer", &r);
}

#[test]
fn observed_exact_nocd() {
    let r = exact_observed(&exact_config(CdModel::NoCd), &saturating(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("exact_nocd", &r);
}

#[test]
fn observed_exact_weak_cap() {
    let config =
        exact_config(CdModel::Weak).with_max_slots(1_500).with_stop(StopRule::AllTerminated);
    let r = exact_observed(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_weak_cap", &r);
}

#[test]
fn observed_exact_all_terminated() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = exact_observed(&config, &saturating(), |_| Box::new(PerStation::new(Backoff::new())));
    check("exact_all_terminated", &r);
}

// --------------------------------------------------------------- cohort --

#[test]
fn observed_cohort_strong() {
    let r = cohort_observed(&cohort_config(CdModel::Strong), &saturating(), Backoff::new);
    check("cohort_strong", &r);
}

#[test]
fn observed_cohort_weak_random_jammer() {
    let r = cohort_observed(&cohort_config(CdModel::Weak), &random_jammer(), Backoff::new);
    check("cohort_weak_random_jammer", &r);
}

#[test]
fn observed_cohort_nocd() {
    let r = cohort_observed(&cohort_config(CdModel::NoCd), &saturating(), Backoff::new);
    check("cohort_nocd", &r);
}

#[test]
fn observed_cohort_noise() {
    let config = cohort_config(CdModel::Strong).with_noise(0.01);
    let r = cohort_observed(&config, &saturating(), Backoff::new);
    check("cohort_noise", &r);
}

#[test]
fn observed_cohort_continue_past_singles() {
    let config =
        cohort_config(CdModel::Strong).with_max_slots(512).with_continue_past_singles(true);
    let r = cohort_observed(&config, &saturating(), Backoff::new);
    check("cohort_continue_past_singles", &r);
}

#[test]
fn observed_cohort_finished_protocol() {
    let config = cohort_config(CdModel::Strong);
    let r = cohort_observed(&config, &AdversarySpec::passive(), || CountDown(9));
    check("cohort_finished_protocol", &r);
}

// --------------------------------------------------------------- faulty --

#[test]
fn observed_faulty_strong() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let r = faulty_observed(&config, &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("faulty_strong", &r);
}

#[test]
fn observed_faulty_weak() {
    let r = faulty_observed(&exact_config(CdModel::Weak), &saturating(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("faulty_weak", &r);
}

#[test]
fn observed_faulty_nocd() {
    let r = faulty_observed(&exact_config(CdModel::NoCd), &random_jammer(), &stress_plan(), |_| {
        Box::new(PerStation::new(Backoff::new()))
    });
    check("faulty_nocd", &r);
}

// --------------------------------------------------------------- oracle --

#[test]
fn observed_oracle_strong() {
    let config = SimConfig::new(16, CdModel::Strong).with_seed(SEED).with_max_slots(2_000);
    let mut stations = CohortStations::without_leader_claim(Fixed(1.0 / 16.0));
    let r =
        run_with_stack!(&config, SimCore::oracle(&config, Rate::from_f64(0.05), 16), &mut stations);
    check("oracle_strong", &r);
}
