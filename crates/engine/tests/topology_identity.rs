//! The multi-hop refactor's contract, checked at the fixture level: on
//! [`Topology::Complete`] the per-neighborhood backend is **byte-identical**
//! to the single-channel engines whose behavior the golden fixtures pin.
//!
//! Every pristine `exact_*` fixture is replayed through
//! `run_multihop_std(Complete, Shared)` and every pristine `fast_exact_*`
//! fixture through `run_multihop_std(Complete, Counter)` — same seeds, same
//! protocols, same adversaries as `golden_seed.rs`, compared against the
//! very same files. The fixtures are owned by `golden_seed.rs`; this suite
//! never rewrites them (`check_against_existing`), so a drifted multi-hop
//! backend cannot silently regenerate its way back to green.
//!
//! Also pins seed-purity of the unit-disk constructor end to end: the same
//! `(n, radius, seed)` triple must reproduce the same run byte for byte.

mod common;

use common::*;
use jle_engine::{run_multihop_std, PerStation, RngDiscipline, RunReport, SimConfig, StopRule};
use jle_radio::{CdModel, Topology};

fn complete_shared(config: &SimConfig, adversary: &jle_adversary::AdversarySpec) -> RunReport {
    run_multihop_std(config, adversary, &Topology::complete(), RngDiscipline::Shared, |_| {
        Box::new(PerStation::new(Backoff::new()))
    })
}

fn complete_counter(config: &SimConfig, adversary: &jle_adversary::AdversarySpec) -> RunReport {
    run_multihop_std(config, adversary, &Topology::complete(), RngDiscipline::Counter, |_| {
        Box::new(PerStation::new(Backoff::new()))
    })
}

// ------------------------------------------ Shared ≡ ExactStations --

#[test]
fn multihop_matches_exact_strong() {
    let r = complete_shared(&exact_config(CdModel::Strong), &saturating());
    assert!(r.multihop.is_none(), "plain complete runs must not grow a multihop block");
    check_against_existing("exact_strong", &r);
}

#[test]
fn multihop_matches_exact_strong_noise() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    check_against_existing("exact_strong_noise", &complete_shared(&config, &saturating()));
}

#[test]
fn multihop_matches_exact_weak_random_jammer() {
    let r = complete_shared(&exact_config(CdModel::Weak), &random_jammer());
    check_against_existing("exact_weak_random_jammer", &r);
}

#[test]
fn multihop_matches_exact_nocd() {
    check_against_existing(
        "exact_nocd",
        &complete_shared(&exact_config(CdModel::NoCd), &saturating()),
    );
}

#[test]
fn multihop_matches_exact_weak_cap() {
    let config =
        exact_config(CdModel::Weak).with_max_slots(1_500).with_stop(StopRule::AllTerminated);
    check_against_existing("exact_weak_cap", &complete_shared(&config, &saturating()));
}

#[test]
fn multihop_matches_exact_all_terminated() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    check_against_existing("exact_all_terminated", &complete_shared(&config, &saturating()));
}

// ------------------------------------- Counter ≡ FastExactStations --

#[test]
fn multihop_matches_fast_exact_strong() {
    let r = complete_counter(&exact_config(CdModel::Strong), &saturating());
    assert!(r.multihop.is_none(), "plain complete runs must not grow a multihop block");
    check_against_existing("fast_exact_strong", &r);
}

#[test]
fn multihop_matches_fast_exact_strong_noise() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    check_against_existing("fast_exact_strong_noise", &complete_counter(&config, &saturating()));
}

#[test]
fn multihop_matches_fast_exact_weak_random_jammer() {
    let r = complete_counter(&exact_config(CdModel::Weak), &random_jammer());
    check_against_existing("fast_exact_weak_random_jammer", &r);
}

#[test]
fn multihop_matches_fast_exact_nocd() {
    let r = complete_counter(&exact_config(CdModel::NoCd), &saturating());
    check_against_existing("fast_exact_nocd", &r);
}

#[test]
fn multihop_matches_fast_exact_all_terminated() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    check_against_existing("fast_exact_all_terminated", &complete_counter(&config, &saturating()));
}

#[test]
fn multihop_matches_fast_exact_duty_cycled() {
    // Sleep-heavy workload: the counter streams are keyed by
    // `(seed, station, slot, draw)`, so the multi-hop act loop (which polls
    // every non-terminal station each slot) consumes exactly the same draws
    // as the fast backend's wake-heap schedule.
    let r = run_multihop_std(
        &exact_config(CdModel::Strong),
        &saturating(),
        &Topology::complete(),
        RngDiscipline::Counter,
        |i| Box::new(DutyBackoff::new(4, i)),
    );
    check_against_existing("fast_exact_duty_cycled", &r);
}

// ----------------------------------------------- unit-disk purity --

#[test]
fn unit_disk_runs_are_pure_in_the_seed() {
    let run = |topo_seed: u64| {
        let topo = Topology::unit_disk(24, 0.45, topo_seed).expect("valid disk");
        let config = SimConfig::new(24, CdModel::Strong)
            .with_seed(SEED)
            .with_max_slots(MAX_SLOTS)
            .with_trace(true);
        let r = run_multihop_std(&config, &saturating(), &topo, RngDiscipline::Shared, |_| {
            Box::new(PerStation::new(Backoff::new()))
        });
        snapshot(&r)
    };
    assert_eq!(run(7), run(7), "same (n, r, seed) must reproduce byte-identically");
    assert_ne!(run(7), run(8), "the disk seed must actually matter");
}
