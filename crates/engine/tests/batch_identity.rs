//! Batched-backend identity suite: the SoA lockstep backend must be
//! bit-identical *per trial* to the fast-exact backend — the contract
//! that lets the orchestrator cache batch results under the fast-exact
//! engine salt (DESIGN.md §17).
//!
//! Three layers of evidence:
//!
//! 1. **Golden replay** — every committed `fast_*` fixture (pristine,
//!    noisy, duty-cycled, faulty, churned) re-derives byte-identically
//!    through the batch entry points via `check_against_existing`, which
//!    never rewrites a fixture: a drifted batch backend fails, it cannot
//!    paper over itself with `UPDATE_GOLDEN`.
//! 2. **K-fold identity** — multi-trial batches (including K not a
//!    multiple of the 64-trial word width) match per-trial
//!    `run_fast_exact` report-for-report, and early-resolving trials
//!    retire without perturbing their still-running neighbors.
//! 3. **Order independence** — a proptest shuffles the seed order and
//!    demands every per-trial `RunReport` stays byte-identical: trial
//!    identity depends on the seed alone, never on batch position.

mod common;

use common::{
    check_against_existing, exact_config, random_jammer, saturating, snapshot, Backoff,
    DutyBackoff, Fixed, MAX_SLOTS, SEED,
};
use jle_adversary::AdversarySpec;
use jle_engine::{
    run_batch_exact, run_batch_exact_churn, run_batch_exact_faulty, run_batch_uniform,
    run_fast_exact, ChurnPlan, FaultPlan, PerStation, Protocol, RunReport, SimConfig, StationChurn,
    StationFaults, StopRule,
};
use jle_radio::CdModel;
use proptest::prelude::*;

fn backoff_factory(_: u64) -> Box<dyn Protocol> {
    Box::new(PerStation::new(Backoff::new()))
}

/// The golden suite's all-fault-kinds plan (mirrors `golden_seed.rs`).
fn stress_plan() -> FaultPlan {
    FaultPlan::new(3)
        .with_station(1, StationFaults::none().crash_with_recovery(6, 60))
        .with_station(2, StationFaults::none().wake_at(3))
        .with_station(3, StationFaults::none().deaf_between(2, 30))
        .with_station(4, StationFaults::none().flip_prob(0.2))
        .with_station(5, StationFaults::none().crash(10))
}

/// The golden suite's join/leave/rejoin plan (mirrors `golden_seed.rs`).
fn churn_stress_plan() -> ChurnPlan {
    ChurnPlan::empty()
        .with_station(1, StationChurn::founding().joining_at(40))
        .with_station(2, StationChurn::founding().leaving_at(200))
        .with_station(3, StationChurn::founding().leave_and_rejoin(100, 400))
        .with_station(4, StationChurn::founding().joining_at(25).leave_and_rejoin(300, 900))
}

/// Replay a fast fixture through the batch backend at K = 1.
fn batch_one(config: &SimConfig, adv: &AdversarySpec) -> RunReport {
    let mut reports = run_batch_exact(config, adv, &[SEED], backoff_factory);
    assert_eq!(reports.len(), 1);
    reports.pop().expect("one report")
}

// ------------------------------------------------------- golden replay --

#[test]
fn batch_replays_fast_exact_strong_fixture() {
    check_against_existing(
        "fast_exact_strong",
        &batch_one(&exact_config(CdModel::Strong), &saturating()),
    );
}

#[test]
fn batch_replays_fast_exact_strong_noise_fixture() {
    let config = exact_config(CdModel::Strong).with_noise(0.01);
    check_against_existing("fast_exact_strong_noise", &batch_one(&config, &saturating()));
}

#[test]
fn batch_replays_fast_exact_weak_random_jammer_fixture() {
    check_against_existing(
        "fast_exact_weak_random_jammer",
        &batch_one(&exact_config(CdModel::Weak), &random_jammer()),
    );
}

#[test]
fn batch_replays_fast_exact_nocd_fixture() {
    check_against_existing(
        "fast_exact_nocd",
        &batch_one(&exact_config(CdModel::NoCd), &saturating()),
    );
}

#[test]
fn batch_replays_fast_exact_all_terminated_fixture() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    check_against_existing("fast_exact_all_terminated", &batch_one(&config, &saturating()));
}

#[test]
fn batch_replays_fast_exact_duty_cycled_fixture() {
    // Sleep-heavy: exercises the merged wake calendar against the fast
    // backend's per-run wake heap.
    let reports = run_batch_exact(&exact_config(CdModel::Strong), &saturating(), &[SEED], |i| {
        Box::new(DutyBackoff::new(4, i))
    });
    check_against_existing("fast_exact_duty_cycled", &reports[0]);
}

#[test]
fn batch_replays_fast_faulty_strong_fixture() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let reports =
        run_batch_exact_faulty(&config, &saturating(), &stress_plan(), &[SEED], backoff_factory);
    check_against_existing("fast_faulty_strong", &reports[0]);
}

#[test]
fn batch_replays_fast_faulty_nocd_fixture() {
    let reports = run_batch_exact_faulty(
        &exact_config(CdModel::NoCd),
        &random_jammer(),
        &stress_plan(),
        &[SEED],
        backoff_factory,
    );
    check_against_existing("fast_faulty_nocd", &reports[0]);
}

#[test]
fn batch_replays_fast_churn_strong_fixture() {
    let config = exact_config(CdModel::Strong).with_stop(StopRule::Horizon).with_max_slots(1_200);
    let reports = run_batch_exact_churn(
        &config,
        &saturating(),
        &churn_stress_plan(),
        &[SEED],
        backoff_factory,
    );
    check_against_existing("fast_churn_strong", &reports[0]);
}

#[test]
fn batch_empty_churn_plan_matches_pristine_fixture() {
    // The open-world identity contract extends to the batch wrapper: an
    // empty churn plan is byte-identical to the pristine batch run.
    let reports = run_batch_exact_churn(
        &exact_config(CdModel::Strong),
        &saturating(),
        &ChurnPlan::empty(),
        &[SEED],
        backoff_factory,
    );
    check_against_existing("fast_exact_strong", &reports[0]);
}

// ------------------------------------------------------ K-fold identity --

/// Per-trial fast-exact reports for `seeds` under the same workload.
fn fast_per_trial(
    config: &SimConfig,
    adv: &AdversarySpec,
    seeds: &[u64],
    factory: impl Fn(u64) -> Box<dyn Protocol>,
) -> Vec<RunReport> {
    seeds
        .iter()
        .map(|&seed| run_fast_exact(&config.clone().with_seed(seed), adv, &factory))
        .collect()
}

fn assert_all_match(batch: &[RunReport], fast: &[RunReport], what: &str) {
    assert_eq!(batch.len(), fast.len(), "{what}: report count");
    for (k, (b, f)) in batch.iter().zip(fast).enumerate() {
        assert_eq!(snapshot(b), snapshot(f), "{what}: trial {k} diverged from fast-exact");
    }
}

#[test]
fn k_not_multiple_of_word_width_matches_fast_exact() {
    // 100 trials: one full 64-trial word plus a ragged 36-trial tail.
    let seeds: Vec<u64> = (0..100).map(|t| SEED + t).collect();
    let config = exact_config(CdModel::Strong);
    let adv = saturating();
    let batch = run_batch_exact(&config, &adv, &seeds, backoff_factory);
    let fast = fast_per_trial(&config, &adv, &seeds, backoff_factory);
    assert_all_match(&batch, &fast, "K=100 strong");
}

#[test]
fn k_fold_faulty_overlay_matches_fast_exact() {
    let seeds: Vec<u64> = (0..65).map(|t| SEED + t).collect(); // 64 + 1
    let config = exact_config(CdModel::Strong).with_stop(StopRule::AllTerminated);
    let adv = saturating();
    let plan = stress_plan();
    let batch = run_batch_exact_faulty(&config, &adv, &plan, &seeds, backoff_factory);
    let fast: Vec<RunReport> = seeds
        .iter()
        .map(|&seed| {
            jle_engine::run_fast_exact_faulty(
                &config.clone().with_seed(seed),
                &adv,
                &plan,
                backoff_factory,
            )
        })
        .collect();
    assert_all_match(&batch, &fast, "K=65 faulty");
}

#[test]
fn k_fold_churn_overlay_matches_fast_exact() {
    let seeds: Vec<u64> = (0..40).map(|t| SEED + t).collect();
    let config = exact_config(CdModel::Strong).with_stop(StopRule::Horizon).with_max_slots(600);
    let adv = saturating();
    let plan = churn_stress_plan();
    let batch = run_batch_exact_churn(&config, &adv, &plan, &seeds, backoff_factory);
    let fast: Vec<RunReport> = seeds
        .iter()
        .map(|&seed| {
            jle_engine::run_fast_exact_churn(
                &config.clone().with_seed(seed),
                &adv,
                &plan,
                backoff_factory,
            )
        })
        .collect();
    assert_all_match(&batch, &fast, "K=40 churn");
}

#[test]
fn all_trials_resolve_in_slot_zero() {
    // Station 0 always transmits, everyone else always listens, no
    // jammer: every trial sees a clean single in slot 0 and the whole
    // batch retires after one pass.
    let factory = |i: u64| -> Box<dyn Protocol> {
        Box::new(PerStation::new(Fixed(if i == 0 { 1.0 } else { 0.0 })))
    };
    let seeds: Vec<u64> = (0..70).map(|t| SEED + t).collect();
    let config = SimConfig::new(12, CdModel::Strong).with_max_slots(MAX_SLOTS);
    let adv = AdversarySpec::passive();
    let batch = run_batch_exact(&config, &adv, &seeds, factory);
    for (k, r) in batch.iter().enumerate() {
        assert_eq!(r.resolved_at, Some(0), "trial {k} must resolve in slot 0");
        assert_eq!(r.winner, Some(0), "trial {k} must elect station 0");
        assert_eq!(r.slots, 1, "trial {k} must stop after one slot");
    }
    let fast = fast_per_trial(&config, &adv, &seeds, factory);
    assert_all_match(&batch, &fast, "all-resolve-slot-0");
}

#[test]
fn timed_out_trials_ride_alongside_resolving_ones() {
    // Fixed(0.5) at n=4 under a tight horizon: some seeds find a clean
    // single in time, others exhaust the 12-slot budget. The late trials
    // must keep drawing the same streams after their neighbors retire.
    let factory = |_: u64| -> Box<dyn Protocol> { Box::new(PerStation::new(Fixed(0.5))) };
    let seeds: Vec<u64> = (0..96).map(|t| SEED + t).collect();
    let config = SimConfig::new(4, CdModel::Strong).with_max_slots(12);
    let adv = saturating();
    let batch = run_batch_exact(&config, &adv, &seeds, factory);
    let resolved = batch.iter().filter(|r| r.resolved_at.is_some()).count();
    let timed_out = batch.iter().filter(|r| r.timed_out).count();
    assert!(resolved > 0, "workload must resolve some trials (got none of {})", batch.len());
    assert!(timed_out > 0, "workload must time some trials out (got none of {})", batch.len());
    let fast = fast_per_trial(&config, &adv, &seeds, factory);
    assert_all_match(&batch, &fast, "mixed retirement");
}

#[test]
fn uniform_batch_matches_general_batch_and_fast() {
    // The uniform fast path and the general path agree with each other
    // (and with fast-exact) on a shared-state workload.
    let seeds: Vec<u64> = (0..33).map(|t| SEED + t).collect();
    let config = exact_config(CdModel::Weak);
    let adv = random_jammer();
    let uniform = run_batch_uniform(&config, &adv, &seeds, Backoff::new);
    let general = run_batch_exact(&config, &adv, &seeds, |_| {
        Box::new(PerStation::new(Backoff::new())) as Box<dyn Protocol>
    });
    let fast = fast_per_trial(&config, &adv, &seeds, |_| {
        Box::new(PerStation::new(Backoff::new())) as Box<dyn Protocol>
    });
    assert_all_match(&uniform, &general, "uniform vs general");
    assert_all_match(&uniform, &fast, "uniform vs fast");
}

// ---------------------------------------------------- order independence --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shuffling the seed order (and thus every trial's lane index, word
    /// position, and retirement interleaving) must leave each seed's
    /// report byte-identical: coordinate-pure draws mean trial identity
    /// is a function of the seed alone.
    #[test]
    fn trial_reports_are_independent_of_batch_order(perm_seed in proptest::prelude::any::<u64>()) {
        // Fisher–Yates keyed off the proptest-drawn seed via the
        // engine's own mix64 (the vendored proptest shim has no
        // prop_shuffle).
        let mut perm: Vec<u64> = (0..48).collect();
        for i in (1..perm.len()).rev() {
            let j = (jle_engine::mix64(perm_seed ^ i as u64) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let config = exact_config(CdModel::Strong).with_max_slots(200).with_trace(false);
        let adv = saturating();
        let canonical: Vec<u64> = (0..48).map(|t| SEED + t).collect();
        let baseline = run_batch_exact(&config, &adv, &canonical, backoff_factory);
        let shuffled: Vec<u64> = perm.iter().map(|&t| SEED + t).collect();
        let reports = run_batch_exact(&config, &adv, &shuffled, backoff_factory);
        for (pos, &t) in perm.iter().enumerate() {
            prop_assert_eq!(
                snapshot(&reports[pos]),
                snapshot(&baseline[t as usize]),
                "seed {} drifted when moved to batch position {}", SEED + t, pos
            );
        }
    }
}
