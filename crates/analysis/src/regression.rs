//! Least-squares fits for scaling-law checks.
//!
//! Experiment E1 validates Theorem 2.6 by fitting `slots ~ a + b·log₂ n`
//! and checking the fit quality; E3/E5 fit against `T` and `T·loglog T`.

use serde::{Deserialize, Serialize};

/// Result of a simple linear regression `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²` (1 = perfect fit; 0 when the
    /// response is constant and perfectly predicted).
    pub r_squared: f64,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// Returns `None` with fewer than two points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (intercept + slope * p.0)).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(LinearFit { intercept, slope, r_squared })
}

/// Fit `y ≈ a + b·log₂(x)` — the scaling check for `O(log n)` claims.
pub fn log2_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let transformed: Vec<(f64, f64)> =
        points.iter().filter(|p| p.0 > 0.0).map(|p| (p.0.log2(), p.1)).collect();
    linear_fit(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_good_but_imperfect_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 1.0 + 4.0 * x + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 4.0).abs() < 0.01);
        assert!(fit.r_squared > 0.99 && fit.r_squared < 1.0);
    }

    #[test]
    fn log2_fit_recovers_log_scaling() {
        let pts: Vec<(f64, f64)> = (4..20)
            .map(|k| {
                let n = (1u64 << k) as f64;
                (n, 10.0 + 7.0 * n.log2())
            })
            .collect();
        let fit = log2_fit(&pts).unwrap();
        assert!((fit.slope - 7.0).abs() < 1e-9);
        assert!((fit.intercept - 10.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none(), "zero x-variance");
        // Constant y: perfect fit with slope 0.
        let fit = linear_fit(&[(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
