//! Markdown and CSV rendering of experiment tables.

use serde::{Deserialize, Serialize};

/// A rectangular results table with named columns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| cell(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible experiment precision.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(["n", "slots"]);
        t.push_row(["16", "120"]);
        t.push_row(["32", "150"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| n | slots |\n|---|---|\n"));
        assert!(md.contains("| 16 | 120 |"));
        assert!(md.lines().count() == 4);
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345), "0.123");
        assert_eq!(fmt(12.345), "12.3");
        assert_eq!(fmt(12345.6), "12346");
    }
}
