//! Two-sample statistical-equivalence tests.
//!
//! The fast exact backend (`jle-engine`'s `FastExactStations`) is
//! validated against the legacy backend *distributionally*: same election
//! laws, different bits. This module holds the two workhorses of that
//! validation:
//!
//! * [`ks_two_sample`] — Kolmogorov–Smirnov test on continuous-ish
//!   samples (election-slot counts, energy totals);
//! * [`chi_square_two_sample`] — chi-square homogeneity test on
//!   categorical counts (winner identity).
//!
//! Both are exposed as plain statistics plus an `alpha = 0.001` decision
//! helper. The significance level is deliberately conservative: the
//! cross-backend suite runs on *fixed seeds* (deterministic, non-flaky),
//! so a rejection means a real distributional discrepancy, not
//! sampling noise — and at `α = 0.001` a correct backend pair fails a
//! given comparison one time in a thousand seed choices, which the suite
//! never re-rolls.

use serde::{Deserialize, Serialize};

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// Supremum distance between the two empirical CDFs.
    pub statistic: f64,
    /// Sizes of the two samples.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
    /// Rejection threshold for the statistic at `α = 0.001`.
    pub critical: f64,
}

impl KsResult {
    /// Whether the samples are compatible with one distribution at
    /// `α = 0.001` (i.e. the test does *not* reject homogeneity).
    pub fn equivalent(&self) -> bool {
        self.statistic <= self.critical
    }
}

/// `c(α)` for the large-sample KS critical value
/// `D_crit = c(α) · sqrt((n1 + n2) / (n1 · n2))`, at `α = 0.001`:
/// `c = sqrt(-ln(α/2) / 2)`.
const KS_C_ALPHA_001: f64 = 1.9494; // sqrt(-ln(0.0005)/2)

/// Two-sample Kolmogorov–Smirnov test at `α = 0.001`.
///
/// Ties (common for slot counts) are handled by advancing both CDFs
/// through the full run of equal values before comparing — the standard
/// discrete-data treatment, which makes the test conservative in the
/// presence of heavy ties.
///
/// # Panics
/// Panics if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs non-empty samples");
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (n1, n2) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let v = xs[i].min(ys[j]);
        while i < n1 && xs[i] <= v {
            i += 1;
        }
        while j < n2 && ys[j] <= v {
            j += 1;
        }
        let fa = i as f64 / n1 as f64;
        let fb = j as f64 / n2 as f64;
        d = d.max((fa - fb).abs());
    }
    let critical = KS_C_ALPHA_001 * ((n1 + n2) as f64 / (n1 as f64 * n2 as f64)).sqrt();
    KsResult { statistic: d, n1, n2, critical }
}

/// Result of a two-sample chi-square homogeneity test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquareResult {
    /// The chi-square statistic over the pooled contingency table.
    pub statistic: f64,
    /// Degrees of freedom (non-empty categories − 1).
    pub dof: usize,
    /// Rejection threshold for the statistic at `α = 0.001`.
    pub critical: f64,
}

impl ChiSquareResult {
    /// Whether the two count vectors are compatible with one categorical
    /// distribution at `α = 0.001`.
    pub fn equivalent(&self) -> bool {
        self.dof == 0 || self.statistic <= self.critical
    }
}

/// Upper-tail standard-normal quantile `z` for `α = 0.001`.
const Z_ALPHA_001: f64 = 3.0902;

/// Wilson–Hilferty approximation of the chi-square upper-`α` quantile:
/// `χ²_crit ≈ k · (1 − 2/(9k) + z_α · sqrt(2/(9k)))³`, accurate to a few
/// percent for `k ≥ 1` — plenty for a pass/fail gate at `α = 0.001`.
pub fn chi_square_critical(dof: usize) -> f64 {
    if dof == 0 {
        return 0.0;
    }
    let k = dof as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + Z_ALPHA_001 * (2.0 / (9.0 * k)).sqrt();
    k * t.powi(3)
}

/// Two-sample chi-square homogeneity test on categorical counts at
/// `α = 0.001`.
///
/// `a[k]` and `b[k]` are the observed counts of category `k` in each
/// sample (e.g. how often station `k` won the election under each
/// backend). Categories empty in *both* samples are dropped; the
/// statistic is the standard pooled-expectation form
/// `Σ (obs − exp)² / exp` over both rows.
///
/// # Panics
/// Panics if the count vectors have different lengths or are all zero.
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> ChiSquareResult {
    assert_eq!(a.len(), b.len(), "count vectors must align");
    let total_a: u64 = a.iter().sum();
    let total_b: u64 = b.iter().sum();
    assert!(total_a > 0 && total_b > 0, "chi-square needs non-empty samples");
    let grand = (total_a + total_b) as f64;
    let mut statistic = 0.0;
    let mut categories = 0usize;
    for (&ca, &cb) in a.iter().zip(b.iter()) {
        let col = (ca + cb) as f64;
        if col == 0.0 {
            continue;
        }
        categories += 1;
        let exp_a = col * total_a as f64 / grand;
        let exp_b = col * total_b as f64 / grand;
        statistic += (ca as f64 - exp_a).powi(2) / exp_a;
        statistic += (cb as f64 - exp_b).powi(2) / exp_b;
    }
    let dof = categories.saturating_sub(1);
    ChiSquareResult { statistic, dof, critical: chi_square_critical(dof) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform stream (SplitMix64 finalizer).
    fn uniforms(seed: u64, count: usize) -> Vec<f64> {
        let mut state = seed;
        (0..count)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn ks_accepts_same_distribution() {
        let a = uniforms(1, 2000);
        let b = uniforms(2, 2000);
        let r = ks_two_sample(&a, &b);
        assert!(r.equivalent(), "D = {} > {}", r.statistic, r.critical);
    }

    #[test]
    fn ks_rejects_shifted_distribution() {
        let a = uniforms(1, 2000);
        let b: Vec<f64> = uniforms(2, 2000).iter().map(|x| x + 0.2).collect();
        let r = ks_two_sample(&a, &b);
        assert!(!r.equivalent(), "a 0.2 shift must be detected, D = {}", r.statistic);
        assert!((r.statistic - 0.2).abs() < 0.05, "D should approach the shift");
    }

    #[test]
    fn ks_handles_heavy_ties() {
        // Discrete data with many ties (like slot counts).
        let a: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| ((i + 3) % 7) as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.equivalent(), "identical discrete laws, D = {}", r.statistic);
    }

    #[test]
    fn ks_identical_samples_have_zero_distance() {
        let a = uniforms(9, 100);
        let r = ks_two_sample(&a, &a);
        assert_eq!(r.statistic, 0.0);
        assert!(r.equivalent());
    }

    #[test]
    fn chi_square_accepts_fair_splits() {
        let a = [250u64, 248, 252, 251];
        let b = [249u64, 253, 247, 250];
        let r = chi_square_two_sample(&a, &b);
        assert!(r.equivalent(), "χ² = {} > {}", r.statistic, r.critical);
        assert_eq!(r.dof, 3);
    }

    #[test]
    fn chi_square_rejects_biased_splits() {
        let a = [400u64, 200, 200, 200];
        let b = [200u64, 266, 267, 267];
        let r = chi_square_two_sample(&a, &b);
        assert!(!r.equivalent(), "a 2:1 bias must be detected, χ² = {}", r.statistic);
    }

    #[test]
    fn chi_square_drops_empty_categories() {
        let a = [500u64, 500, 0];
        let b = [510u64, 490, 0];
        let r = chi_square_two_sample(&a, &b);
        assert_eq!(r.dof, 1, "the empty category contributes no dof");
        assert!(r.equivalent());
    }

    #[test]
    fn chi_square_single_category_is_trivially_equivalent() {
        let r = chi_square_two_sample(&[100], &[90]);
        assert_eq!(r.dof, 0);
        assert!(r.equivalent());
    }

    #[test]
    fn wilson_hilferty_matches_tables() {
        // χ²(α=0.001) reference values: k=1 → 10.83, k=5 → 20.52,
        // k=10 → 29.59, k=63 → 103.4.
        for (dof, expected) in [(1usize, 10.83), (5, 20.52), (10, 29.59), (63, 103.4)] {
            let got = chi_square_critical(dof);
            assert!(
                (got - expected).abs() / expected < 0.05,
                "dof {dof}: got {got}, table {expected}"
            );
        }
    }
}
