//! Fixed-bin histograms for distribution reporting.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins plus overflow and
/// underflow counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Record many observations.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(underflow, overflow)` counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bin_center, count)` pairs for plotting.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all(&[0.0, 1.9, 2.0, 5.5, 9.99]);
        assert_eq!(h.bins(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn outliers() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0); // hi is exclusive
        h.record(42.0);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn centers() {
        let h = Histogram::new(0.0, 10.0, 2);
        let c = h.centers();
        assert_eq!(c.len(), 2);
        assert!((c[0].0 - 2.5).abs() < 1e-12);
        assert!((c[1].0 - 7.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn bad_range() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
