//! Named (x, y) series — the unit of experiment output.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points, e.g. `slots` vs `n`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    /// Display name (appears in tables and CSV headers).
    pub name: String,
    /// The data points, in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Point-wise ratio `self / other`, matching on x (both series must
    /// cover the same x grid in the same order).
    ///
    /// # Panics
    /// Panics on grid mismatch.
    pub fn ratio(&self, other: &Series) -> Series {
        assert_eq!(self.points.len(), other.points.len(), "series length mismatch");
        let mut out = Series::new(format!("{}/{}", self.name, other.name));
        for (&(xa, ya), &(xb, yb)) in self.points.iter().zip(&other.points) {
            assert!((xa - xb).abs() < 1e-9, "x grids differ: {xa} vs {xb}");
            out.push(xa, if yb == 0.0 { f64::NAN } else { ya / yb });
        }
        out
    }

    /// Maximum y value (NaNs ignored).
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|p| p.1).filter(|y| !y.is_nan()).max_by(f64::total_cmp)
    }

    /// Whether y is non-decreasing along the series (tolerance `tol`).
    pub fn is_monotone_nondecreasing(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_matching_grids() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        for x in [1.0, 2.0, 4.0] {
            a.push(x, 10.0 * x);
            b.push(x, 5.0 * x);
        }
        let r = a.ratio(&b);
        assert_eq!(r.name, "a/b");
        assert!(r.points.iter().all(|&(_, y)| (y - 2.0).abs() < 1e-12));
    }

    #[test]
    fn ratio_div_zero_is_nan() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        a.push(1.0, 3.0);
        b.push(1.0, 0.0);
        assert!(a.ratio(&b).points[0].1.is_nan());
    }

    #[test]
    fn monotonicity() {
        let mut s = Series::new("s");
        s.push(1.0, 1.0);
        s.push(2.0, 2.0);
        s.push(3.0, 1.95);
        assert!(s.is_monotone_nondecreasing(0.1));
        assert!(!s.is_monotone_nondecreasing(0.0));
        assert_eq!(s.max_y(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn ratio_length_checked() {
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let b = Series::new("b");
        let _ = a.ratio(&b);
    }
}
