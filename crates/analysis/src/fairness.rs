//! Fairness metrics for channel-allocation experiments.

/// Jain's fairness index: `(Σx)² / (n·Σx²)` ∈ `[1/n, 1]`.
///
/// 1 means perfectly equal allocation; `1/n` means one participant gets
/// everything. Returns 1.0 for an empty or all-zero allocation (vacuously
/// fair).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

/// Minimum share of the total received by any participant (0 when the
/// total is 0).
pub fn min_share(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    xs.iter().cloned().fold(f64::MAX, f64::min) / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair() {
        assert!((jain_index(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_unfair() {
        let n = 5;
        let mut xs = vec![0.0; n];
        xs[2] = 10.0;
        assert!((jain_index(&xs) - 1.0 / n as f64).abs() < 1e-12);
        assert_eq!(min_share(&xs), 0.0);
    }

    #[test]
    fn intermediate() {
        let j = jain_index(&[1.0, 2.0, 3.0]);
        assert!(j > 1.0 / 3.0 && j < 1.0, "jain {j}");
        let ms = min_share(&[1.0, 2.0, 3.0]);
        assert!((ms - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(min_share(&[]), 0.0);
    }
}
