//! Dependency-free SVG line/scatter charts for experiment figures.
//!
//! Each experiment's headline sweep is emitted as a small standalone SVG
//! (`results/<id>*.svg`) so the reproduction produces *figures*, not just
//! tables. The renderer is deliberately minimal: linear or log₂ axes,
//! polyline series with distinct dash patterns, point markers, a legend,
//! and tick labels. No styling dependencies — the output opens in any
//! browser.

use crate::series::Series;
use std::fmt::Write as _;

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-2 logarithmic axis (experiments sweep powers of two).
    Log2,
}

impl Scale {
    fn transform(self, v: f64) -> f64 {
        match self {
            Scale::Linear => v,
            Scale::Log2 => v.max(f64::MIN_POSITIVE).log2(),
        }
    }

    fn label(self, v: f64) -> String {
        match self {
            Scale::Linear => trim_float(v),
            Scale::Log2 => {
                // v is in transformed (log2) space for tick placement.
                let raw = v.exp2();
                if raw >= 1024.0 {
                    format!("2^{}", v.round() as i64)
                } else {
                    trim_float(raw)
                }
            }
        }
    }
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// A renderable figure: titled axes plus any number of series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series to draw.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 170.0;
const MARGIN_T: f64 = 45.0;
const MARGIN_B: f64 = 55.0;
const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"];

impl Figure {
    /// New empty figure with linear axes.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Use a log₂ x-axis.
    pub fn log_x(mut self) -> Self {
        self.x_scale = Scale::Log2;
        self
    }

    /// Use a log₂ y-axis.
    pub fn log_y(mut self) -> Self {
        self.y_scale = Scale::Log2;
        self
    }

    /// Add a series.
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .filter(|p| !p.0.is_nan() && !p.1.is_nan())
            .map(|&(x, y)| (self.x_scale.transform(x), self.y_scale.transform(y)))
            .peekable();
        pts.peek()?;
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for (x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x0 -= 1.0;
            x1 += 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y0 -= 1.0;
            y1 += 1.0;
        }
        // 5% headroom on y.
        let pad = (y1 - y0) * 0.05;
        Some((x0, x1, y0 - pad, y1 + pad))
    }

    /// Render to an SVG string. Returns `None` if no drawable point
    /// exists.
    pub fn to_svg(&self) -> Option<String> {
        let (x0, x1, y0, y1) = self.bounds()?;
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (self.x_scale.transform(x) - x0) / (x1 - x0) * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (self.y_scale.transform(y) - y0) / (y1 - y0) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Frame.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        // Ticks: 5 per axis in transformed space.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * i as f64 / 4.0;
            let px = MARGIN_L + plot_w * i as f64 / 4.0;
            let _ = write!(
                svg,
                r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#999" stroke-dasharray="2,4"/>"##,
                MARGIN_T,
                MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{px}" y="{}" font-size="11" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h + 18.0,
                self.x_scale.label(fx)
            );
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let py = MARGIN_T + plot_h - plot_h * i as f64 / 4.0;
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py}" x2="{}" y2="{py}" stroke="#999" stroke-dasharray="2,4"/>"##,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_L - 6.0,
                py + 4.0,
                self.y_scale.label(fy)
            );
        }
        // Series.
        for (si, s) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let dash = match si / PALETTE.len() {
                0 => "",
                _ => r#" stroke-dasharray="6,3""#,
            };
            let mut path = String::new();
            for (pi, &(x, y)) in
                s.points.iter().filter(|p| !p.0.is_nan() && !p.1.is_nan()).enumerate()
            {
                let _ =
                    write!(path, "{}{:.1},{:.1} ", if pi == 0 { "M" } else { "L" }, sx(x), sy(y));
            }
            if !path.is_empty() {
                let _ = write!(
                    svg,
                    r#"<path d="{}" fill="none" stroke="{color}" stroke-width="2"{dash}/>"#,
                    path.trim_end()
                );
            }
            for &(x, y) in s.points.iter().filter(|p| !p.0.is_nan() && !p.1.is_nan()) {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + si as f64 * 18.0;
            let lx = WIDTH - MARGIN_R + 12.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                lx + 20.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="11">{}</text>"#,
                lx + 26.0,
                ly + 4.0,
                escape(&s.name)
            );
        }
        svg.push_str("</svg>");
        Some(svg)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series(name: &str, slope: f64) -> Series {
        let mut s = Series::new(name);
        for k in 1..=8 {
            s.push((1u64 << k) as f64, slope * k as f64 + 3.0);
        }
        s
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let fig = Figure::new("title", "n", "slots")
            .log_x()
            .with_series(sample_series("a", 2.0))
            .with_series(sample_series("b", 5.0));
        let svg = fig.to_svg().unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("title"));
        assert!(svg.matches("<path").count() == 2, "one polyline per series");
        assert!(svg.matches("<circle").count() == 16, "one marker per point");
        assert!(svg.contains(">a</text>") && svg.contains(">b</text>"), "legend entries");
    }

    #[test]
    fn empty_figure_is_none() {
        assert!(Figure::new("t", "x", "y").to_svg().is_none());
        let empty = Figure::new("t", "x", "y").with_series(Series::new("e"));
        assert!(empty.to_svg().is_none());
    }

    #[test]
    fn nan_points_are_skipped() {
        let mut s = Series::new("with-nan");
        s.push(1.0, 2.0);
        s.push(2.0, f64::NAN);
        s.push(3.0, 4.0);
        let svg = Figure::new("t", "x", "y").with_series(s).to_svg().unwrap();
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn log_axis_labels_use_powers() {
        assert_eq!(Scale::Log2.label(12.0), "2^12");
        assert_eq!(Scale::Log2.label(3.0), "8");
        assert_eq!(Scale::Linear.label(7.0), "7");
        assert_eq!(Scale::Linear.label(7.25), "7.25");
    }

    #[test]
    fn degenerate_ranges_get_padding() {
        // A single point must still produce a finite-viewport chart.
        let mut s = Series::new("point");
        s.push(5.0, 5.0);
        let svg = Figure::new("t", "x", "y").with_series(s).to_svg().unwrap();
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn titles_are_escaped() {
        let mut s = Series::new("a<b>&c");
        s.push(1.0, 1.0);
        s.push(2.0, 2.0);
        let svg = Figure::new("x < y & z", "x", "y").with_series(s).to_svg().unwrap();
        assert!(svg.contains("x &lt; y &amp; z"));
        assert!(svg.contains("a&lt;b&gt;&amp;c"));
        assert!(!svg.contains("<b>"));
    }
}
