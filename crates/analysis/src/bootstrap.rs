//! Bootstrap confidence intervals for Monte-Carlo summaries.
//!
//! Experiments report medians over a few dozen trials; the percentile
//! bootstrap quantifies how trustworthy those medians are without
//! distributional assumptions. Deterministic given the seed, like
//! everything else in this workspace.

use crate::stats::percentile;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfInterval {
    /// Point estimate (the statistic on the full sample).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// Simple xorshift generator so the module needs no external RNG
/// plumbing (bootstrap resampling does not need cryptographic quality).
struct XorShift(u64);

impl XorShift {
    fn next_index(&mut self, n: usize) -> usize {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x % n as u64) as usize
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Returns `None` for an empty sample. `resamples` is clamped to ≥ 100.
pub fn bootstrap_ci(
    xs: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfInterval> {
    if xs.is_empty() {
        return None;
    }
    let level = level.clamp(0.5, 0.999);
    let resamples = resamples.max(100);
    let mut rng = XorShift(seed | 1);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = xs[rng.next_index(xs.len())];
        }
        stats.push(statistic(&resample));
    }
    let alpha = 1.0 - level;
    Some(ConfInterval {
        estimate: statistic(xs),
        lo: percentile(&stats, alpha / 2.0),
        hi: percentile(&stats, 1.0 - alpha / 2.0),
        level,
    })
}

/// Bootstrap CI for the median (the statistic experiments report).
pub fn median_ci(xs: &[f64], level: f64, seed: u64) -> Option<ConfInterval> {
    bootstrap_ci(xs, |s| percentile(s, 0.5), level, 1000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_estimate() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ci = median_ci(&xs, 0.95, 7).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.contains(ci.estimate));
        assert!((ci.estimate - 49.5).abs() < 1.0);
        assert!(ci.width() > 0.0 && ci.width() < 30.0);
    }

    #[test]
    fn tighter_with_more_data() {
        let small: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 10) as f64).collect();
        let ci_s = median_ci(&small, 0.95, 3).unwrap();
        let ci_l = median_ci(&large, 0.95, 3).unwrap();
        assert!(ci_l.width() <= ci_s.width());
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..50).map(|i| (i * i % 17) as f64).collect();
        let a = median_ci(&xs, 0.9, 42).unwrap();
        let b = median_ci(&xs, 0.9, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(median_ci(&[], 0.95, 1).is_none());
        let one = median_ci(&[5.0], 0.95, 1).unwrap();
        assert_eq!((one.lo, one.hi, one.estimate), (5.0, 5.0, 5.0));
    }

    #[test]
    fn custom_statistic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ci =
            bootstrap_ci(&xs, |s| s.iter().sum::<f64>() / s.len() as f64, 0.95, 500, 9).unwrap();
        assert!((ci.estimate - 2.5).abs() < 1e-12);
        assert!(ci.lo >= 1.0 && ci.hi <= 4.0);
    }
}
