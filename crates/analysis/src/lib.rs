//! # jle-analysis — measurement toolkit
//!
//! Statistics, regression, histograms, series algebra and table rendering
//! for the reproduction experiments. Everything is plain data (serde) so
//! experiment outputs can be archived and re-rendered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod equivalence;
pub mod fairness;
pub mod histogram;
pub mod regression;
pub mod series;
pub mod stats;
pub mod svgplot;
pub mod table;

pub use bootstrap::{bootstrap_ci, median_ci, ConfInterval};
pub use equivalence::{
    chi_square_critical, chi_square_two_sample, ks_two_sample, ChiSquareResult, KsResult,
};
pub use fairness::{jain_index, min_share};
pub use histogram::Histogram;
pub use regression::{linear_fit, log2_fit, LinearFit};
pub use series::Series;
pub use stats::{percentile, Summary};
pub use svgplot::{Figure, Scale};
pub use table::{fmt, Table};
