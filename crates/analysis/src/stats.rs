//! Summary statistics for Monte-Carlo samples.

use serde::{Deserialize, Serialize};

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p10: percentile_sorted(&sorted, 0.10),
            median: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
            max: sorted[count - 1],
        })
    }
}

/// Linear-interpolated percentile of an already-sorted sample.
///
/// `q` is clamped to `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted sample.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.5), 5.0);
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
        assert_eq!(percentile(&xs, 2.0), 10.0, "q clamped");
    }

    #[test]
    fn percentile_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for q in [0.1, 0.25, 0.5, 0.9] {
            assert_eq!(percentile(&a, q), percentile(&b, q));
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }
}
