//! E10 — the estimate trajectory: `u` as a biased random walk around
//! `log₂ n` (Section 2.2's analysis picture).
//!
//! Record full traces of LESK's `u` under different adversaries and
//! measure (a) the hitting time of the paper's *regular band*
//! `[u₀ − log₂(2 ln a), u₀ + ½ log₂ a + 1]` and (b) the fraction of
//! post-hit slots spent inside it. The saturating jammer shifts `u`
//! upward inside the band but cannot expel it — that is the mechanism
//! behind Theorem 2.6.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Figure, Series, Table};
use jle_engine::{run_cohort, SimConfig};
use jle_protocols::LeskProtocol;
use jle_radio::CdModel;
use serde::Serialize;

/// The paper's regular band for estimate `u` given `n` and `eps`.
pub fn regular_band(n: u64, eps: f64) -> (f64, f64) {
    let u0 = (n.max(2) as f64).log2();
    let a = 8.0 / eps;
    (u0 - (2.0 * a.ln()).log2(), u0 + 0.5 * a.log2() + 1.0)
}

/// Run E10.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e10",
        "estimate trajectory: u walks into and stays in the regular band",
        "Section 2.2 (biased random walk; regular-slot band of Lemma 2.4)",
    );
    let eps = 0.5;
    let ns: Vec<u64> = if quick { vec![256] } else { vec![256, 16_384] };
    let trials = if quick { 10 } else { 40 };

    let mut table = Table::new([
        "n",
        "adversary",
        "median hit slot (u enters band)",
        "in-band fraction after hit",
        "median u at election",
        "u0 = log2 n",
    ]);
    let mut fig = Figure::new("LESK estimate trajectory u(t) (single runs)", "slot", "estimate u");
    for &n in &ns {
        let (lo, hi) = regular_band(n, eps);
        for (name, adv) in [("none", AdversarySpec::passive()), ("saturating", saturating(eps, 32))]
        {
            let params = serde_json::json!({
                "kind": "trajectory",
                "n": n,
                "eps": eps,
                "adv": adv.to_json_value(),
                "band": [lo, hi],
                "max_slots": 10_000_000u64,
            });
            let rows: Vec<(f64, f64, f64)> = ctx.run_trials(
                "e10",
                &format!("{name}/n={n}"),
                params,
                100_000 + n,
                trials,
                |seed| {
                    let config = SimConfig::new(n, CdModel::Strong)
                        .with_seed(seed)
                        .with_max_slots(10_000_000)
                        .with_trace(true);
                    let r = run_cohort(&config, &adv, || LeskProtocol::new(eps));
                    assert!(r.leader_elected());
                    let tr = r.trace.unwrap();
                    let hit = tr
                        .estimates
                        .iter()
                        .position(|&u| u >= lo && u <= hi)
                        .unwrap_or(tr.estimates.len());
                    let after = &tr.estimates[hit..];
                    let in_band = if after.is_empty() {
                        0.0
                    } else {
                        after.iter().filter(|&&u| u >= lo && u <= hi).count() as f64
                            / after.len() as f64
                    };
                    (hit as f64, in_band, *tr.estimates.last().unwrap())
                },
            );
            let hits: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let fracs: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let finals: Vec<f64> = rows.iter().map(|r| r.2).collect();
            table.push_row([
                n.to_string(),
                name.to_string(),
                fmt(jle_analysis::percentile(&hits, 0.5)),
                format!("{:.3}", jle_analysis::percentile(&fracs, 0.5)),
                fmt(jle_analysis::percentile(&finals, 0.5)),
                fmt((n as f64).log2()),
            ]);
            // One representative trajectory per configuration for the figure.
            let config = SimConfig::new(n, CdModel::Strong)
                .with_seed(100_000 + n)
                .with_max_slots(10_000_000)
                .with_trace(true);
            let r = run_cohort(&config, &adv, || LeskProtocol::new(eps));
            let tr = r.trace.unwrap();
            let mut series = Series::new(format!("n={n}, {name}"));
            let stride = (tr.estimates.len() / 120).max(1);
            for (i, &u) in tr.estimates.iter().enumerate() {
                if i % stride == 0 || i + 1 == tr.estimates.len() {
                    series.push(i as f64, u);
                }
            }
            fig = fig.with_series(series);
        }
    }
    result.add_table("trajectory summary", table);
    result.add_figure(fig);
    result.note(
        "u reaches the regular band in O(log n / eps) slots and then dwells there almost \
         permanently, jammed or not; the election fires from inside the band — exactly the \
         random-walk picture of Section 2.2"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn band_contains_u0() {
        let (lo, hi) = super::regular_band(1024, 0.5);
        assert!(lo < 10.0 && 10.0 < hi);
    }
}
