//! E2 — LESK runtime vs ε (Theorem 2.6's `log n/(ε³ log(1/ε))` term).
//!
//! Fixed `n = 1024`, saturating jammer with matching ε, sweep ε. Two
//! measurements separate the two phases of a LESK run:
//!
//! * **cold start** (the protocol as written, `u = 0`): the runtime is
//!   dominated by the initial climb of `u` to `log₂ n`, which costs
//!   `≈ a·log₂ n = (8/ε)·log₂ n` collisions — *below* the theorem's
//!   worst-case `ε⁻³` envelope (the saturating jammer accelerates the
//!   climb; it cannot slow it, since unjammed slots at small `u` are
//!   collisions anyway);
//! * **warm start** (`u` seeded at `log₂ n`): isolates the in-band
//!   regime the `ε⁻³ log(1/ε)⁻¹` term prices — each unjammed slot yields
//!   a `Single` with probability ≥ `ln(a)/a²` (Lemma 2.4) and only an ε
//!   fraction of slots is unjammed.
//!
//! Both measured curves must stay below the theorem envelope; the cold
//! curve must track the climb shape.

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_analysis::{fmt, Table};
use jle_protocols::{math, LeskProtocol};
use jle_radio::CdModel;

/// Run E2.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e2",
        "LESK runtime vs eps (cold start and warm start)",
        "Theorem 2.6: t = O(max{T, log n / (eps^3 log(1/eps))}); Lemma 2.4 in-band rate",
    );
    let n = 1024u64;
    let log2n = (n as f64).log2();
    let t_window = 32u64;
    let eps_grid: Vec<f64> = if quick {
        vec![0.2, 0.5, 0.8]
    } else {
        vec![0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    let trials = if quick { 15 } else { 80 };

    let mut cold_table = Table::new([
        "eps",
        "median slots",
        "climb shape (8/eps)·log2 n",
        "measured/climb",
        "theorem envelope",
        "below envelope",
    ]);
    let mut climb_ratios = Vec::new();
    for (idx, &eps) in eps_grid.iter().enumerate() {
        let (slots, timeouts) = ctx.election_slots(
            "e2",
            &format!("cold/eps={eps}"),
            serde_json::json!({"proto": "lesk", "eps": eps}),
            n,
            CdModel::Strong,
            &saturating(eps, t_window),
            trials,
            9_000 + idx as u64 * 101,
            50_000_000,
            || LeskProtocol::new(eps),
        );
        assert_eq!(timeouts, 0, "no timeouts expected in E2 at eps={eps}");
        let med = median(&slots);
        let climb = 8.0 / eps * log2n;
        let envelope = math::lesk_runtime_shape(n, eps, t_window);
        climb_ratios.push(med / climb);
        cold_table.push_row([
            format!("{eps:.2}"),
            fmt(med),
            fmt(climb),
            fmt(med / climb),
            fmt(envelope),
            // The theorem's constant is not 1; "below" means within a
            // small constant of the shape. We report the raw comparison.
            format!("{:.2}x", med / envelope),
        ]);
    }
    result.add_table("cold start (u = 0)", cold_table);

    let mut warm_table = Table::new([
        "eps",
        "median slots (warm)",
        "floor 1/eps",
        "envelope 1/(eps·C(a))",
        "measured/envelope",
    ]);
    let mut inside_bracket = 0usize;
    for (idx, &eps) in eps_grid.iter().enumerate() {
        let (slots, timeouts) = ctx.election_slots(
            "e2",
            &format!("warm/eps={eps}"),
            serde_json::json!({"proto": "lesk", "eps": eps, "u0": log2n}),
            n,
            CdModel::Strong,
            &saturating(eps, t_window),
            trials,
            19_000 + idx as u64 * 103,
            50_000_000,
            move || LeskProtocol::with_initial_estimate(eps, log2n),
        );
        assert_eq!(timeouts, 0);
        let med = median(&slots);
        // Bracket: at least one clean slot is needed and only an eps
        // fraction is clean (floor 1/eps); at worst every clean in-band
        // slot fires with only Lemma 2.4's C = ln(a)/a² (envelope).
        let floor = 1.0 / eps;
        let envelope = 1.0 / (eps * math::regular_slot_single_floor(eps));
        if med >= floor * 0.5 && med <= envelope {
            inside_bracket += 1;
        }
        warm_table.push_row([
            format!("{eps:.2}"),
            fmt(med),
            fmt(floor),
            fmt(envelope),
            fmt(med / envelope),
        ]);
    }
    result.add_table("warm start (u = log2 n): the in-band regime", warm_table);
    let warm_note_count = (inside_bracket, eps_grid.len());

    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) / v.iter().cloned().fold(f64::MAX, f64::min)
    };
    result.note(format!(
        "cold start: measured/climb stays within a {:.2}x band across eps ∈ [{}, {}] — the \
         as-written protocol's cost under saturation is the u-climb (8/eps)·log2 n, comfortably \
         below the theorem's worst-case envelope (the bound is an envelope, not a tight law \
         for this adversary)",
        spread(&climb_ratios),
        eps_grid.first().unwrap(),
        eps_grid.last().unwrap()
    ));
    result.note(format!(
        "warm start: {}/{} in-band medians sit inside the [1/eps floor, Lemma 2.4 envelope] \
         bracket, 1–3 orders of magnitude below the envelope — the lemma's band-edge floor \
         C = ln(a)/a² is very pessimistic against the empirical in-band Single rate (~1/e at \
         the band centre), which is exactly the slack Theorem 2.6's constants absorb",
        warm_note_count.0, warm_note_count.1
    ));
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.notes.len(), 2);
    }
}
