//! E11 — the slot taxonomy of the analysis (Lemmas 2.2, 2.3, 2.5).
//!
//! Classify every slot of recorded LESK runs into
//! IS/IC/CS/CC/E/R and check the analysis' counting lemmas numerically:
//!
//! * `IS ≤ 2t/a²` and `IC ≤ 2t/a` w.h.p. (Lemma 2.5 via Lemma 2.2);
//! * `CS ≤ (IC + E)/a` and `CC ≤ a·IS + a·u₀` deterministically
//!   (Lemma 2.3, points 4–5);
//! * regular slots dominate once the adversary's share is removed —
//!   the engine of Theorem 2.6's proof.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_analysis::{fmt, Table};
use jle_engine::{run_cohort, SimConfig};
use jle_protocols::{LeskProtocol, SlotTaxonomy};
use jle_radio::CdModel;
use serde::Serialize;

/// Run E11.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e11",
        "slot taxonomy: IS/IC/CS/CC/E/R counts vs the counting lemmas",
        "Lemmas 2.2, 2.3 (points 4-5), 2.5",
    );
    let n = 1024u64;
    let eps_grid: Vec<f64> = if quick { vec![0.5] } else { vec![0.5, 0.25] };
    let trials = if quick { 10 } else { 40 };

    for &eps in &eps_grid {
        let mut table =
            Table::new(["counter", "mean count", "bound", "mean/bound", "violations (of trials)"]);
        let adv = saturating(eps, 32);
        let params = serde_json::json!({
            "kind": "taxonomy",
            "n": n,
            "eps": eps,
            "adv": adv.to_json_value(),
            "max_slots": 10_000_000u64,
        });
        let taxes: Vec<(SlotTaxonomy, u64)> = ctx.run_trials(
            "e11",
            &format!("eps={eps}"),
            params,
            110_000 + (eps * 1000.0) as u64,
            trials,
            |seed| {
                let config = SimConfig::new(n, CdModel::Strong)
                    .with_seed(seed)
                    .with_max_slots(10_000_000)
                    .with_trace(true);
                let r = run_cohort(&config, &adv, || LeskProtocol::new(eps));
                assert!(r.leader_elected());
                (SlotTaxonomy::from_trace(r.trace.as_ref().unwrap(), n, eps), r.slots)
            },
        );
        let tn = taxes.len() as f64;
        let mean = |f: &dyn Fn(&(SlotTaxonomy, u64)) -> f64| taxes.iter().map(f).sum::<f64>() / tn;

        // IS vs Lemma 2.5.
        let is_mean = mean(&|x| x.0.is_count as f64);
        let is_bound_mean = mean(&|x| SlotTaxonomy::is_bound(x.1, eps));
        let is_viol =
            taxes.iter().filter(|x| x.0.is_count as f64 > SlotTaxonomy::is_bound(x.1, eps)).count();
        table.push_row([
            "IS (irregular silences)".to_string(),
            fmt(is_mean),
            fmt(is_bound_mean),
            fmt(if is_bound_mean > 0.0 { is_mean / is_bound_mean } else { 0.0 }),
            format!("{is_viol}/{trials}"),
        ]);
        // IC vs Lemma 2.5.
        let ic_mean = mean(&|x| x.0.ic_count as f64);
        let ic_bound_mean = mean(&|x| SlotTaxonomy::ic_bound(x.1, eps));
        let ic_viol =
            taxes.iter().filter(|x| x.0.ic_count as f64 > SlotTaxonomy::ic_bound(x.1, eps)).count();
        table.push_row([
            "IC (irregular collisions)".to_string(),
            fmt(ic_mean),
            fmt(ic_bound_mean),
            fmt(if ic_bound_mean > 0.0 { ic_mean / ic_bound_mean } else { 0.0 }),
            format!("{ic_viol}/{trials}"),
        ]);
        // CS vs Lemma 2.3 p4 (deterministic).
        let cs_mean = mean(&|x| x.0.cs_count as f64);
        let cs_bound_mean = mean(&|x| x.0.cs_bound(eps));
        let cs_viol = taxes.iter().filter(|x| x.0.cs_count as f64 > x.0.cs_bound(eps)).count();
        table.push_row([
            "CS (correcting silences)".to_string(),
            fmt(cs_mean),
            fmt(cs_bound_mean),
            fmt(if cs_bound_mean > 0.0 { cs_mean / cs_bound_mean } else { 0.0 }),
            format!("{cs_viol}/{trials}"),
        ]);
        // CC vs Lemma 2.3 p5 (deterministic).
        let cc_mean = mean(&|x| x.0.cc_count as f64);
        let cc_bound_mean = mean(&|x| x.0.cc_bound(n, eps));
        let cc_viol = taxes.iter().filter(|x| x.0.cc_count as f64 > x.0.cc_bound(n, eps)).count();
        table.push_row([
            "CC (correcting collisions)".to_string(),
            fmt(cc_mean),
            fmt(cc_bound_mean),
            fmt(if cc_bound_mean > 0.0 { cc_mean / cc_bound_mean } else { 0.0 }),
            format!("{cc_viol}/{trials}"),
        ]);
        // E and R for context.
        table.push_row([
            "E (jammed)".to_string(),
            fmt(mean(&|x| x.0.e_count as f64)),
            "(1-eps)·t".to_string(),
            fmt(mean(&|x| x.0.e_count as f64) / mean(&|x| (1.0 - eps) * x.1 as f64)),
            "-".to_string(),
        ]);
        table.push_row([
            "R (regular)".to_string(),
            fmt(mean(&|x| x.0.r_count as f64)),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        result.add_table(&format!("taxonomy (n=1024, eps={eps})"), table);

        assert_eq!(cs_viol, 0, "Lemma 2.3 p4 is deterministic and must never be violated");
        assert_eq!(cc_viol, 0, "Lemma 2.3 p5 is deterministic and must never be violated");
    }
    result.note(
        "the deterministic counting bounds (Lemma 2.3 points 4-5) hold in every single trial; \
         the stochastic IS/IC ceilings (Lemma 2.5) hold with large margins — the measured \
         counts sit far below their bounds, matching the slack in the Chernoff argument"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
