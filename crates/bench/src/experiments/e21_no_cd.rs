//! E21 — the no-CD open problem (paper §4), quantified.
//!
//! "It is not clear what countermeasures against a jammer can be
//! constructed for the communication model without collision detection."
//! Two measurements show where the difficulty lives:
//!
//! 1. **LESK across CD models, with an overshoot.** On the happy path
//!    (estimate climbing from 0) LESK elects while crossing the band and
//!    never needs a `Null`, so all CD models look alike. The difference
//!    is *self-stabilization*: after a front-loaded jamming burst pushes
//!    the estimate far past `log₂ n`, strong/weak-CD recover via `Null`s
//!    (−1 per slot) while under no-CD every idle slot reads as a
//!    `Collision`, the estimate never comes down, and the election is
//!    lost forever.
//! 2. **Oblivious sweeps vs schedule-targeted jamming.** no-CD protocols
//!    are driven to oblivious schedules (nothing to adapt on); their
//!    useful slots are publicly predictable, and a jammer with a strong
//!    budget (ε = 0.1) that spends it exactly there forces the election
//!    onto the sweep's far-off-probability margins — while LESK under
//!    the *same* budget keeps its `O(log n)` (with CD, the budget has to
//!    fight the self-correction, not a schedule).

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{fmt, Table};
use jle_protocols::{BackoffProtocol, LeskProtocol};
use jle_radio::CdModel;

/// Run E21.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e21",
        "the no-CD open problem: what collision detection buys",
        "Section 4 (open problem) + Section 1.1 (no-CD model)",
    );
    let trials = if quick { 10 } else { 60 };
    let cap = 200_000u64;

    // (1) LESK across CD models, recovering from an inflated estimate
    // (u seeded 30 above log2 n — the state any sufficiently long
    // disruption leaves behind). Recovery requires Nulls: strong/weak-CD
    // descend 1 per idle slot; under no-CD idle slots read as Collisions
    // and the estimate never comes down.
    let eps = 0.1;
    let n = 1024u64;
    let u_start = (n as f64).log2() + 30.0;
    let mut lesk_table = Table::new([
        "CD model",
        "cold start median (saturating)",
        "recovery median (no jam)",
        "recovery median (saturating)",
        "recovery timeouts",
    ]);
    for (name, cd) in
        [("strong-CD", CdModel::Strong), ("weak-CD", CdModel::Weak), ("no-CD", CdModel::NoCd)]
    {
        let cold_proto = serde_json::json!({"proto": "lesk", "eps": eps});
        let rec_proto = serde_json::json!({"proto": "lesk", "eps": eps, "u0": u_start});
        let (cold, _) = ctx.election_slots(
            "e21",
            &format!("cold/{name}"),
            cold_proto,
            n,
            cd,
            &saturating(eps, 8),
            trials,
            211_000,
            cap,
            || LeskProtocol::new(eps),
        );
        let (rec_clean, rt0) = ctx.election_slots(
            "e21",
            &format!("recovery-clean/{name}"),
            rec_proto.clone(),
            n,
            cd,
            &AdversarySpec::passive(),
            trials,
            212_000,
            cap,
            move || LeskProtocol::with_initial_estimate(eps, u_start),
        );
        let (rec_jam, rt1) = ctx.election_slots(
            "e21",
            &format!("recovery-jam/{name}"),
            rec_proto,
            n,
            cd,
            &saturating(eps, 8),
            trials,
            212_500,
            cap,
            move || LeskProtocol::with_initial_estimate(eps, u_start),
        );
        let cell = |xs: &Vec<f64>, to: u64| {
            if to * 2 >= trials {
                format!("timeout ({to}/{trials})")
            } else {
                fmt(median(xs))
            }
        };
        lesk_table.push_row([
            name.to_string(),
            fmt(median(&cold)),
            cell(&rec_clean, rt0),
            cell(&rec_jam, rt1),
            format!("{}/{}", rt0 + rt1, 2 * trials),
        ]);
    }
    result.add_table(
        &format!("LESK across CD models (n={n}, eps={eps}, recovery from u0+30)"),
        lesk_table,
    );

    // (2) Oblivious backoff vs the schedule-targeted jammer at eps=0.1:
    // the budget suffices to jam the entire dangerous exponent window of
    // every cycle.
    let mut sweep_table = Table::new([
        "n",
        "backoff median (none)",
        "backoff median (saturating)",
        "backoff median (sweep-targeted)",
        "targeted slowdown",
        "LESK median (saturating, strong-CD)",
    ]);
    let ns: Vec<u64> = if quick { vec![256] } else { vec![64, 256, 1024, 4096] };
    for (i, &n) in ns.iter().enumerate() {
        let targeted = AdversarySpec::new(
            Rate::from_f64(eps),
            8,
            JamStrategyKind::SweepTargeted { n, band: 3.0 },
        );
        let backoff_proto = serde_json::json!({"proto": "backoff"});
        let (clean, c0) = ctx.election_slots(
            "e21",
            &format!("backoff-clean/n={n}"),
            backoff_proto.clone(),
            n,
            CdModel::NoCd,
            &AdversarySpec::passive(),
            trials,
            213_000 + i as u64,
            cap,
            BackoffProtocol::new,
        );
        let (sat, c1) = ctx.election_slots(
            "e21",
            &format!("backoff-sat/n={n}"),
            backoff_proto.clone(),
            n,
            CdModel::NoCd,
            &saturating(eps, 8),
            trials,
            214_000 + i as u64,
            cap,
            BackoffProtocol::new,
        );
        let (tgt, c2) = ctx.election_slots(
            "e21",
            &format!("backoff-targeted/n={n}"),
            backoff_proto,
            n,
            CdModel::NoCd,
            &targeted,
            trials,
            215_000 + i as u64,
            cap,
            BackoffProtocol::new,
        );
        let (lesk, c3) = ctx.election_slots(
            "e21",
            &format!("lesk-sat/n={n}"),
            serde_json::json!({"proto": "lesk", "eps": eps}),
            n,
            CdModel::Strong,
            &saturating(eps, 8),
            trials,
            216_000 + i as u64,
            cap,
            || LeskProtocol::new(eps),
        );
        assert_eq!(c0 + c1 + c2 + c3, 0, "no timeouts expected at n={n}");
        let (mc, mt) = (median(&clean), median(&tgt));
        sweep_table.push_row([
            n.to_string(),
            fmt(mc),
            fmt(median(&sat)),
            fmt(mt),
            format!("{:.1}x", mt / mc),
            fmt(median(&lesk)),
        ]);
    }
    result.add_table("oblivious sweep vs schedule-targeted jamming (no-CD, eps=0.1)", sweep_table);
    result.note(
        "collision detection is what the adversary cannot counterfeit: with it, LESK \
         self-corrects even from a 45-unit estimate overshoot (Nulls pull it back); without \
         it, the overshoot is unrecoverable (100% timeouts) and protocols are driven to \
         predictable oblivious sweeps whose useful slots a targeted jammer suppresses \
         wholesale — the quantitative face of the paper's open problem"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
