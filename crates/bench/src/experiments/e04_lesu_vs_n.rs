//! E4 — LESU runtime vs `n` with *hidden* ε (Theorem 2.9 case 1), plus
//! the schedule-constant ablation.
//!
//! LESU does not know ε; the adversary uses ε ∈ {1/2, 1/4, 1/8}. Theorem
//! 2.9 bounds LESU by `O(ε⁻³ loglog(1/ε) · log n)`. Two distinct exit
//! paths exist and we report them separately:
//!
//! * **Estimation exit** — Lemma 2.8's "obtains Single": the doubling
//!   probe sweeps its transmission probability through `≈ 1/n` and very
//!   often lucks into a `Single` within `O(log n)` slots, ending the
//!   election before any LESK run starts. Under light jamming this is
//!   the dominant (and fastest) path — LESU then *beats* even the
//!   ε-aware LESK.
//! * **Sweep exit** — the run survives `Estimation` and is resolved by a
//!   time-boxed LESK(ε_j) run; this is the path the theorem's bound
//!   prices.

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Table};
use jle_engine::{run_cohort_with, SimConfig};
use jle_protocols::{math, LeskProtocol, LesuProtocol};
use jle_radio::CdModel;
use serde::Serialize;

struct LesuStats {
    slots: Vec<f64>,
    est_exits: u64,
    sweep_slots: Vec<f64>,
}

fn lesu_runs(
    ctx: &ExpContext,
    point: &str,
    n: u64,
    adv: &AdversarySpec,
    trials: u64,
    base_seed: u64,
    c: f64,
) -> LesuStats {
    let params = serde_json::json!({
        "kind": "lesu_runs",
        "n": n,
        "adv": adv.to_json_value(),
        "c": c,
        "max_slots": 500_000_000u64,
    });
    let rows: Vec<(f64, bool)> = ctx.run_trials("e4", point, params, base_seed, trials, |seed| {
        let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(500_000_000);
        let (report, proto) = run_cohort_with(&config, adv, move || LesuProtocol::with_constant(c));
        assert!(report.leader_elected(), "LESU timeout at n={n}");
        (report.slots as f64, proto.current_run().is_none())
    });
    LesuStats {
        slots: rows.iter().map(|r| r.0).collect(),
        est_exits: rows.iter().filter(|r| r.1).count() as u64,
        sweep_slots: rows.iter().filter(|r| !r.1).map(|r| r.0).collect(),
    }
}

/// Run E4.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e4",
        "LESU vs n with unknown eps: exit paths, theorem envelope, c ablation",
        "Theorem 2.9 case 1 + Lemma 2.8's 'obtains Single' early exit",
    );
    let t_window = 16u64;
    let eps_grid: Vec<f64> = if quick { vec![0.5] } else { vec![0.5, 0.25, 0.125] };
    let exps: Vec<u32> = if quick { vec![7, 10] } else { vec![7, 9, 11, 13, 15] };
    let trials = if quick { 10 } else { 60 };

    let mut table = Table::new([
        "hidden eps",
        "n",
        "LESU median",
        "estimation-exit fraction",
        "sweep-exit median",
        "LESK median (knows eps)",
        "theorem envelope",
    ]);
    for (ei, &eps) in eps_grid.iter().enumerate() {
        for &k in &exps {
            let n = 1u64 << k;
            let adv = saturating(eps, t_window);
            let stats = lesu_runs(
                ctx,
                &format!("lesu/eps={eps}/n={n}"),
                n,
                &adv,
                trials,
                40_000 + (ei * 100 + k as usize) as u64,
                4.0,
            );
            let (lesk, to1) = ctx.election_slots(
                "e4",
                &format!("lesk/eps={eps}/n={n}"),
                serde_json::json!({"proto": "lesk", "eps": eps}),
                n,
                CdModel::Strong,
                &adv,
                trials,
                41_000 + (ei * 100 + k as usize) as u64,
                500_000_000,
                || LeskProtocol::new(eps),
            );
            assert_eq!(to1, 0);
            table.push_row([
                format!("{eps:.3}"),
                n.to_string(),
                fmt(median(&stats.slots)),
                format!("{:.2}", stats.est_exits as f64 / trials as f64),
                if stats.sweep_slots.is_empty() {
                    "-".into()
                } else {
                    fmt(median(&stats.sweep_slots))
                },
                fmt(median(&lesk)),
                fmt(math::lesu_runtime_shape(n, eps, t_window)),
            ]);
        }
    }
    result.add_table("LESU vs n", table);

    // Schedule-constant ablation at n = 1024, hidden eps = 1/8 (heavy
    // jamming suppresses most estimation exits, so the sweep — where c
    // matters — is actually exercised).
    let mut ablation = Table::new(["c", "median slots", "p90 slots", "estimation-exit fraction"]);
    let cs: Vec<f64> = if quick { vec![4.0] } else { vec![1.0, 2.0, 4.0, 8.0, 16.0] };
    for (i, &c) in cs.iter().enumerate() {
        let stats = lesu_runs(
            ctx,
            &format!("ablation/c={c}"),
            1024,
            &saturating(0.125, t_window),
            trials,
            42_000 + i as u64,
            c,
        );
        let s = jle_analysis::Summary::of(&stats.slots).unwrap();
        ablation.push_row([
            c.to_string(),
            fmt(s.median),
            fmt(s.p90),
            format!("{:.2}", stats.est_exits as f64 / trials as f64),
        ]);
    }
    result.add_table("schedule-constant ablation (hidden eps=1/8)", ablation);

    result.note(
        "LESU's unconditional medians sit far below the Theorem 2.9 envelope — in most trials \
         Estimation's probability sweep passes through ≈1/n and 'obtains a Single' \
         (Lemma 2.8's early exit), electing in O(log n) slots before any LESK run starts; \
         LESU can therefore beat the eps-aware LESK outright"
            .to_string(),
    );
    result.note(
        "sweep-exit medians grow cleanly with log n and stay within a small constant of the \
         (constant-free) Theorem 2.9 shape; the c ablation moves medians and tails by only a \
         few percent — consistent with the paper leaving c existential"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.notes.len(), 2);
    }
}
