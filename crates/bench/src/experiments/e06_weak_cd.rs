//! E6 — weak-CD overhead of `Notification` (Lemma 3.1, Theorems 3.2/3.3).
//!
//! LEWK (= Notification∘LESK) and LEWU (= Notification∘LESU) run on the
//! exact per-station engine under weak-CD with full termination
//! detection; their strong-CD counterparts run on the cohort engine. The
//! lemma promises a constant-factor overhead (≤ 8× the selection bound)
//! and exactly one leader with every station terminating.

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Table};
use jle_engine::{run_exact, SimConfig, StopRule};
use jle_protocols::{lewk, lewu, LeskProtocol, LesuProtocol};
use jle_radio::CdModel;
use serde::Serialize;

#[allow(clippy::too_many_arguments)]
fn weak_runs(
    ctx: &ExpContext,
    point: &str,
    n: u64,
    adv: &AdversarySpec,
    trials: u64,
    base_seed: u64,
    max_slots: u64,
    lesu: bool,
) -> (Vec<f64>, u64, u64) {
    let params = serde_json::json!({
        "kind": "weak_cd_exact",
        "n": n,
        "adv": adv.to_json_value(),
        "max_slots": max_slots,
        "proto": if lesu { "lewu" } else { "lewk(0.5)" },
    });
    // Project to (slots, timed_out, leader_count) inside the closure: the
    // exact-engine report is not cacheable wholesale, the projection is.
    let rows: Vec<(u64, bool, u64)> =
        ctx.run_trials("e6", point, params, base_seed, trials, |seed| {
            let config = SimConfig::new(n, CdModel::Weak)
                .with_seed(seed)
                .with_max_slots(max_slots)
                .with_stop(StopRule::AllTerminated);
            let report = if lesu {
                run_exact(&config, adv, |_| Box::new(lewu()))
            } else {
                run_exact(&config, adv, |_| Box::new(lewk(0.5)))
            };
            (report.slots, report.timed_out, report.leaders.len() as u64)
        });
    let bad_leader_count = rows.iter().filter(|r| !r.1 && r.2 != 1).count() as u64;
    let timeouts = rows.iter().filter(|r| r.1).count() as u64;
    (rows.iter().map(|r| r.0 as f64).collect(), timeouts, bad_leader_count)
}

/// Run E6.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e6",
        "weak-CD election via Notification: overhead and correctness",
        "Lemma 3.1 (8x constant factor), Theorems 3.2/3.3",
    );
    let eps = 0.5;
    let t_window = 16u64;
    let ns: Vec<u64> = if quick { vec![8, 32] } else { vec![8, 16, 32, 64, 128] };
    let trials = if quick { 10 } else { 50 };

    for (jam, advname) in [(false, "no jam"), (true, "saturating")] {
        let adv = if jam { saturating(eps, t_window) } else { AdversarySpec::passive() };
        let mut table = Table::new([
            "n",
            "LEWK median (weak, full election)",
            "LESK median (strong, selection)",
            "overhead",
            "leaders==1",
        ]);
        for (i, &n) in ns.iter().enumerate() {
            let (weak, timeouts, bad) = weak_runs(
                ctx,
                &format!("lewk/{advname}/n={n}"),
                n,
                &adv,
                trials,
                60_000 + i as u64,
                30_000_000,
                false,
            );
            let (strong, st) = ctx.election_slots(
                "e6",
                &format!("lesk/{advname}/n={n}"),
                serde_json::json!({"proto": "lesk", "eps": eps}),
                n,
                CdModel::Strong,
                &adv,
                trials,
                61_000 + i as u64,
                30_000_000,
                || LeskProtocol::new(eps),
            );
            assert_eq!(timeouts + st, 0, "no timeouts expected in E6 (n={n})");
            assert_eq!(bad, 0, "leader-count violation in E6 (n={n})");
            let (mw, ms) = (median(&weak), median(&strong));
            table.push_row([n.to_string(), fmt(mw), fmt(ms), fmt(mw / ms), "100%".to_string()]);
        }
        result.add_table(&format!("LEWK vs LESK ({advname})"), table);
    }

    // LEWU spot check (exact engine, the full no-knowledge stack).
    let mut lewu_table =
        Table::new(["n", "LEWU median (weak)", "LESU median (strong)", "overhead"]);
    let lns: Vec<u64> = if quick { vec![8] } else { vec![8, 16, 32] };
    for (i, &n) in lns.iter().enumerate() {
        let adv = saturating(0.4, t_window);
        let (weak, timeouts, bad) = weak_runs(
            ctx,
            &format!("lewu/n={n}"),
            n,
            &adv,
            trials.min(20),
            62_000 + i as u64,
            100_000_000,
            true,
        );
        assert_eq!(timeouts, 0, "LEWU timeout at n={n}");
        assert_eq!(bad, 0, "LEWU leader-count violation at n={n}");
        let (strong, st) = ctx.election_slots(
            "e6",
            &format!("lesu/n={n}"),
            serde_json::json!({"proto": "lesu"}),
            n,
            CdModel::Strong,
            &adv,
            trials.min(20),
            63_000 + i as u64,
            100_000_000,
            LesuProtocol::new,
        );
        assert_eq!(st, 0);
        let (mw, ms) = (median(&weak), median(&strong));
        lewu_table.push_row([n.to_string(), fmt(mw), fmt(ms), fmt(mw / ms)]);
    }
    result.add_table("LEWU vs LESU (saturating, hidden eps=0.4)", lewu_table);
    result.note(
        "every weak-CD run terminated with exactly one leader; overheads are constant-factor \
         (Lemma 3.1's bound is vs the w.h.p. selection time, so medians can sit above 8x \
         without contradicting it)"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 3);
        assert!(!r.notes.is_empty());
    }
}
