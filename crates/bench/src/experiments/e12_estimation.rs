//! E12 — `Estimation(2)` output window (Lemma 2.8).
//!
//! Across `n` and `T`, the returned round `i` must satisfy
//! `log log n − 1 ≤ i ≤ max{log log n, log T} + 1` with probability
//! ≥ 1 − 2/n² (or the run ends in a `Single`, which also counts).

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_analysis::Table;
use jle_engine::{run_cohort_with, SimConfig};
use jle_protocols::EstimationProtocol;
use jle_radio::CdModel;
use serde::Serialize;

/// Run E12.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e12",
        "Estimation(2): returned round vs the Lemma 2.8 window",
        "Lemma 2.8",
    );
    let exps: Vec<u32> = if quick { vec![7, 12] } else { vec![7, 10, 12, 14, 17, 20] };
    let ts: Vec<u64> = if quick { vec![1, 64] } else { vec![1, 64, 4096] };
    let trials = if quick { 30 } else { 200 };

    let mut table =
        Table::new(["n", "T", "window [lo, hi]", "in-window rate", "single rate", "median round"]);
    let mut all_ok = true;
    for &k in &exps {
        let n = 1u64 << k;
        for &t in &ts {
            let adv =
                if t == 1 { jle_adversary::AdversarySpec::passive() } else { saturating(0.5, t) };
            let loglog = (n as f64).log2().log2();
            let lo = loglog.floor() - 1.0;
            let hi = loglog.max((t as f64).log2()).ceil() + 1.0;
            let params = serde_json::json!({
                "kind": "estimation_window",
                "n": n,
                "t": t,
                "adv": adv.to_json_value(),
                "max_slots": 50_000_000u64,
            });
            let outcomes: Vec<(Option<u32>, bool)> = ctx.run_trials(
                "e12",
                &format!("n={n}/T={t}"),
                params,
                120_000 + (k as u64) * 31 + t,
                trials,
                |seed| {
                    let config = SimConfig::new(n, CdModel::Strong)
                        .with_seed(seed)
                        .with_max_slots(50_000_000);
                    let (report, proto) = run_cohort_with(&config, &adv, EstimationProtocol::paper);
                    (proto.result(), report.resolved_at.is_some())
                },
            );
            let singles = outcomes.iter().filter(|o| o.1).count();
            let rounds: Vec<f64> = outcomes.iter().filter_map(|o| o.0).map(|r| r as f64).collect();
            let in_window = outcomes
                .iter()
                .filter(|o| o.1 || o.0.is_some_and(|r| (r as f64) >= lo && (r as f64) <= hi))
                .count();
            let rate = in_window as f64 / trials as f64;
            if rate < 0.95 {
                all_ok = false;
            }
            table.push_row([
                n.to_string(),
                t.to_string(),
                format!("[{lo:.0}, {hi:.0}]"),
                format!("{rate:.3}"),
                format!("{:.3}", singles as f64 / trials as f64),
                if rounds.is_empty() {
                    "-".into()
                } else {
                    format!("{:.0}", jle_analysis::percentile(&rounds, 0.5))
                },
            ]);
        }
    }
    result.add_table("Estimation(2) outputs", table);
    result.note(format!(
        "Lemma 2.8's window holds in {} of configurations at the >=95% level (the lemma \
         promises 1 − 2/n², far above 95% for these n)",
        if all_ok { "all" } else { "most (see in-window rates)" }
    ));
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
