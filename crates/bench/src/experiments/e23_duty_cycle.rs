//! E23 — the energy/latency trade-off of duty-cycled LESK (extension).
//!
//! Following the authors' energy-efficiency thread (their ref [13]):
//! stations sleep through all but every `period`-th slot, cutting the
//! dominant listening cost, at the price of a slower election. This
//! experiment maps the Pareto curve and confirms the jamming robustness
//! is preserved under duty cycling.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Table};
use jle_engine::SimConfig;
use jle_protocols::DutyCycledLesk;
use jle_radio::CdModel;
use serde::Serialize;

#[allow(clippy::type_complexity)] // inline row-projection closures read better than aliases
/// Run E23.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e23",
        "duty-cycled LESK: listening energy vs election latency",
        "extension following the authors' ref [13]; robustness inherited from Alg. 1",
    );
    let n = 64u64;
    let eps = 0.5;
    let trials = if quick { 8 } else { 40 };
    let periods: Vec<u64> = if quick { vec![1, 4] } else { vec![1, 2, 4, 8, 16] };

    for (name, adv) in [("none", AdversarySpec::passive()), ("saturating", saturating(eps, 16))] {
        let mut table = Table::new([
            "period",
            "median slots",
            "listens/station",
            "tx/station",
            "energy x latency (norm.)",
            "success",
        ]);
        let mut baseline: Option<(f64, f64)> = None;
        for (i, &period) in periods.iter().enumerate() {
            let params = serde_json::json!({
                "kind": "duty_cycle",
                "n": n,
                "eps": eps,
                "period": period,
                "adv": adv.to_json_value(),
                "max_slots": 5_000_000u64,
            });
            let rows: Vec<(f64, f64, f64, bool)> = ctx.run_trials(
                "e23",
                &format!("{name}/period={period}"),
                params,
                230_000 + i as u64 * 11,
                trials,
                |seed| {
                    let config = SimConfig::new(n, CdModel::Strong)
                        .with_seed(seed)
                        .with_max_slots(5_000_000);
                    // Dispatched through the context: `--engine fast-exact`
                    // runs the same sweep on the active-set backend, whose
                    // honest `DutyCycledLesk::wake_hint` makes each slot
                    // O(n/period) instead of O(n).
                    let r = ctx.exact_election(&config, &adv, move |st| {
                        Box::new(DutyCycledLesk::new(eps, period, st))
                    });
                    (
                        r.slots as f64,
                        r.energy.listens as f64 / n as f64,
                        r.tx_per_station(n),
                        r.leader_elected(),
                    )
                },
            );
            let med = |f: &dyn Fn(&(f64, f64, f64, bool)) -> f64| {
                let mut v: Vec<f64> = rows.iter().map(f).collect();
                v.sort_by(f64::total_cmp);
                v[v.len() / 2]
            };
            let (slots, listens, tx) = (med(&|r| r.0), med(&|r| r.1), med(&|r| r.2));
            let success = rows.iter().filter(|r| r.3).count() as f64 / trials as f64;
            if baseline.is_none() {
                baseline = Some((slots, listens + tx));
            }
            let (b_slots, b_energy) = baseline.unwrap();
            table.push_row([
                period.to_string(),
                fmt(slots),
                fmt(listens),
                fmt(tx),
                format!("{:.2}", (slots / b_slots) * ((listens + tx) / b_energy)),
                format!("{success:.2}"),
            ]);
        }
        result.add_table(&format!("duty-cycle sweep (n={n}, {name})"), table);
    }
    result.note(
        "listening energy per station falls nearly linearly in the duty period while the \
         election latency grows sub-linearly (each of the `period` staggered sub-networks \
         runs LESK on n/period stations), so the energy×latency product improves for \
         moderate periods — and success stays at 100% under the saturating jammer: the \
         asymmetric update rule does not care that the channel is sampled on a comb"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use crate::common::{EngineMode, ExpContext};

    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn quick_run_works_on_the_fast_backend() {
        let ctx = ExpContext::ephemeral(true).with_engine(EngineMode::FastExact);
        let r = super::run(&ctx);
        assert_eq!(r.tables.len(), 2, "same sweep shape through the active-set backend");
    }
}
