//! E7 — protocol shoot-out: LESK vs the prior art and the non-robust
//! classics (Section 1.3 of the paper).
//!
//! Four protocols, three adversaries, `n` sweep. Expected shape:
//!
//! * clean channel: Willard fastest (`O(loglog n)`), backoff decent
//!   (`O(log² n)`), ARSS and LESK in the `O(polylog)` band;
//! * under jamming: LESK wins; ARSS survives but grows much faster in
//!   `n` (its bound is `O(log⁴ n)` vs LESK's `O(log n)`); Willard and
//!   backoff degrade badly (time out or blow up).

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{fmt, Table};
use jle_protocols::{ArssMacProtocol, BackoffProtocol, LeskProtocol, WillardProtocol};
use jle_radio::CdModel;

const MAX_SLOTS: u64 = 3_000_000;

fn row_for(
    ctx: &ExpContext,
    advname: &str,
    n: u64,
    adv: &AdversarySpec,
    trials: u64,
    seed: u64,
) -> Vec<String> {
    let t_window = adv.t_window;
    let gamma = ArssMacProtocol::recommended_gamma(n, t_window);
    let pt = |proto: &str| format!("{proto}/{advname}/n={n}");
    let lesk = ctx.election_slots(
        "e7",
        &pt("lesk"),
        serde_json::json!({"proto": "lesk", "eps": 0.3f64}),
        n,
        CdModel::Strong,
        adv,
        trials,
        seed,
        MAX_SLOTS,
        || LeskProtocol::new(0.3),
    );
    let arss = ctx.election_slots(
        "e7",
        &pt("arss"),
        serde_json::json!({"proto": "arss", "gamma": gamma}),
        n,
        CdModel::Strong,
        adv,
        trials,
        seed + 1,
        MAX_SLOTS,
        || ArssMacProtocol::new(gamma),
    );
    let backoff = ctx.election_slots(
        "e7",
        &pt("backoff"),
        serde_json::json!({"proto": "backoff"}),
        n,
        CdModel::Strong,
        adv,
        trials,
        seed + 2,
        MAX_SLOTS,
        BackoffProtocol::new,
    );
    let willard = ctx.election_slots(
        "e7",
        &pt("willard"),
        serde_json::json!({"proto": "willard"}),
        n,
        CdModel::Strong,
        adv,
        trials,
        seed + 3,
        MAX_SLOTS,
        WillardProtocol::new,
    );
    let cell = |(slots, timeouts): (Vec<f64>, u64)| {
        if timeouts * 2 >= trials {
            format!("timeout ({}/{} trials)", timeouts, trials)
        } else {
            fmt(median(&slots))
        }
    };
    vec![n.to_string(), cell(lesk), cell(arss), cell(backoff), cell(willard)]
}

/// Run E7.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e7",
        "LESK vs ARSS'14 vs backoff vs Willard across adversaries",
        "Section 1.3: O(log n) vs the prior O(log^4 n); non-robust baselines fail",
    );
    let eps = 0.3;
    let t_window = 32u64;
    let ns: Vec<u64> = if quick { vec![64, 1024] } else { vec![64, 256, 1024, 4096, 16_384] };
    let trials = if quick { 10 } else { 50 };

    let adversaries: Vec<(&str, AdversarySpec)> =
        vec![("none", AdversarySpec::passive()), ("saturating", saturating(eps, t_window))];
    for (ai, (name, adv)) in adversaries.iter().enumerate() {
        let mut table = Table::new(["n", "LESK", "ARSS-MAC", "backoff", "Willard"]);
        for (i, &n) in ns.iter().enumerate() {
            table.push_row(row_for(
                ctx,
                name,
                n,
                adv,
                trials,
                70_000 + (ai * 1000 + i * 10) as u64,
            ));
        }
        result.add_table(&format!("median slots ({name})"), table);
    }

    // The adaptive protocol-aware attacker against LESK specifically.
    let mut adaptive = Table::new(["n", "LESK vs adaptive", "LESK vs saturating"]);
    for (i, &n) in ns.iter().enumerate() {
        let adaptive_spec = AdversarySpec::new(
            Rate::from_f64(eps),
            t_window,
            JamStrategyKind::AdaptiveEstimator { n, protocol_eps: eps, band: 3.0, initial_u: 0.0 },
        );
        let proto = serde_json::json!({"proto": "lesk", "eps": eps});
        let (a, at) = ctx.election_slots(
            "e7",
            &format!("lesk/adaptive/n={n}"),
            proto.clone(),
            n,
            CdModel::Strong,
            &adaptive_spec,
            trials,
            75_000 + i as u64,
            MAX_SLOTS,
            || LeskProtocol::new(eps),
        );
        let (s, st) = ctx.election_slots(
            "e7",
            &format!("lesk/saturating2/n={n}"),
            proto,
            n,
            CdModel::Strong,
            &saturating(eps, t_window),
            trials,
            76_000 + i as u64,
            MAX_SLOTS,
            || LeskProtocol::new(eps),
        );
        assert_eq!(at + st, 0, "LESK must not time out in E7");
        adaptive.push_row([n.to_string(), fmt(median(&a)), fmt(median(&s))]);
    }
    result.add_table("adaptive attacker vs LESK", adaptive);
    result.note(
        "under jamming LESK's medians grow like log n while ARSS grows polylogarithmically \
         faster and the non-robust baselines time out or blow up; LESK tolerates even the \
         protocol-aware adaptive attacker (Theorem 2.6 is adversary-adaptive)"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 3);
        assert!(!r.notes.is_empty());
    }
}
