//! E19 — fair channel use after election (paper §4 building block), and
//! its limits under jamming.
//!
//! Rank assignment by n-selection, then deterministic TDMA. Against
//! budget-equal adversaries:
//!
//! * oblivious/saturating jamming degrades *throughput* but not
//!   *fairness* (everyone loses equally, Jain ≈ 1);
//! * a **targeted** jammer that spends its budget on one rank's slots
//!   needs only a `1/n` jam rate to starve that station — the public
//!   schedule is the vulnerability, echoing why the reactive-jamming
//!   fairness literature (Richa et al., §1.3 ref [24]) is nontrivial.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fairness, fmt, Table};
use jle_engine::SimConfig;
use jle_protocols::{run_fair_use, targeted_tdma_jammer};
use jle_radio::CdModel;
use serde::Serialize;

#[allow(clippy::type_complexity)] // inline row-projection closures read better than aliases
/// Run E19.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e19",
        "fair use via rank TDMA: throughput vs fairness across adversaries",
        "Section 4 (building blocks); extension — exposes the targeted-jamming limit",
    );
    let eps = 0.5;
    let n = 16u64;
    let rounds = if quick { 30 } else { 200 };
    let trials = if quick { 8 } else { 40 };

    let base = saturating(eps, 8);
    let advs: Vec<(&str, AdversarySpec)> = vec![
        ("none", AdversarySpec::passive()),
        ("saturating", base.clone()),
        ("targeted (rank 0)", targeted_tdma_jammer(&base, n, 0)),
    ];
    let mut table = Table::new([
        "adversary",
        "throughput (deliveries/slot)",
        "Jain index",
        "min share",
        "victim deliveries",
        "median others",
    ]);
    for (i, (name, adv)) in advs.iter().enumerate() {
        let params = serde_json::json!({
            "kind": "fair_use",
            "n": n,
            "eps": eps,
            "rounds": rounds,
            "adv": adv.to_json_value(),
            "max_slots": 2_000_000u64,
        });
        let rows: Vec<(f64, f64, f64, f64, f64)> = ctx.run_trials(
            "e19",
            &format!("adv={name}"),
            params,
            190_000 + i as u64 * 13,
            trials,
            |seed| {
                let config =
                    SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(2_000_000);
                let r = run_fair_use(&config, adv, rounds, eps);
                assert!(r.setup_completed, "rank assignment must finish");
                let d = r.deliveries_f64();
                let mut others: Vec<f64> = d[1..].to_vec();
                others.sort_by(f64::total_cmp);
                (
                    r.throughput(),
                    fairness::jain_index(&d),
                    fairness::min_share(&d),
                    d[0],
                    others[others.len() / 2],
                )
            },
        );
        let med = |f: &dyn Fn(&(f64, f64, f64, f64, f64)) -> f64| {
            let mut v: Vec<f64> = rows.iter().map(f).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        table.push_row([
            name.to_string(),
            format!("{:.3}", med(&|r| r.0)),
            format!("{:.3}", med(&|r| r.1)),
            format!("{:.3}", med(&|r| r.2)),
            fmt(med(&|r| r.3)),
            fmt(med(&|r| r.4)),
        ]);
    }
    result.add_table(&format!("fair use (n={n}, {rounds} TDMA rounds)"), table);
    result.note(
        "budget-equal adversaries split cleanly: saturation halves throughput but keeps the \
         Jain index near 1, while the targeted jammer — spending a mere 1/n jam rate — drives \
         the victim's deliveries to zero; post-election TDMA is fair *on average* but not \
         fair *despite jamming*, which is exactly why the paper lists fair use as an open \
         building-block direction rather than a corollary"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
