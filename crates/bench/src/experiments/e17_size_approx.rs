//! E17 — size approximation (paper §4 building-block claim).
//!
//! `SizeApproxProtocol` runs the LESK dynamics to a horizon and outputs
//! `2^ū`. The regular-band confinement (Section 2.2) predicts an output
//! within `[n/(2 ln a), 2√a·n]` regardless of the adversary; jamming may
//! bias the estimate upward (jams read as busy) but never out of band.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Table};
use jle_engine::{run_cohort_with, SimConfig};
use jle_protocols::SizeApproxProtocol;
use jle_radio::CdModel;
use serde::Serialize;

/// Run E17.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e17",
        "size approximation: 2^u-bar vs true n across adversaries",
        "Section 4 (building blocks) + Section 2.2 band confinement; extension",
    );
    let eps = 0.5;
    let a: f64 = 8.0 / eps;
    let trials = if quick { 10 } else { 40 };
    let exps: Vec<u32> = if quick { vec![10] } else { vec![6, 10, 14, 18] };

    let mut table = Table::new([
        "n",
        "adversary",
        "median estimate",
        "median ratio (est/n)",
        "in-band rate",
        "band [n/(2 ln a), 2*sqrt(a)*n]",
    ]);
    for &k in &exps {
        let n = 1u64 << k;
        let horizon = 400 + 40 * k as u64;
        let lo = n as f64 / (2.0 * a.ln());
        let hi = 2.0 * a.sqrt() * n as f64;
        for (name, adv) in [("none", AdversarySpec::passive()), ("saturating", saturating(eps, 16))]
        {
            let params = serde_json::json!({
                "kind": "size_approx",
                "n": n,
                "eps": eps,
                "horizon": horizon,
                "adv": adv.to_json_value(),
            });
            let ests: Vec<f64> = ctx.run_trials(
                "e17",
                &format!("{name}/n={n}"),
                params,
                170_000 + k as u64 * 37,
                trials,
                |seed| {
                    let config = SimConfig::new(n, CdModel::Strong)
                        .with_seed(seed)
                        .with_max_slots(horizon + 10)
                        .with_continue_past_singles(true);
                    let (_, proto) =
                        run_cohort_with(&config, &adv, || SizeApproxProtocol::new(eps, horizon));
                    proto.estimate_n()
                },
            );
            let in_band =
                ests.iter().filter(|&&e| e >= lo && e <= hi).count() as f64 / trials as f64;
            let med = jle_analysis::percentile(&ests, 0.5);
            table.push_row([
                n.to_string(),
                name.to_string(),
                fmt(med),
                format!("{:.3}", med / n as f64),
                format!("{in_band:.2}"),
                format!("[{}, {}]", fmt(lo), fmt(hi)),
            ]);
        }
    }
    result.add_table("size approximation", table);
    result.note(
        "the output stays inside the analysis band across a 4000x range of n, with and \
         without jamming; the saturating jammer biases the ratio upward (jams read as busy \
         slots) but cannot push it out of band — the one-sided-error property at work"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
