//! E9 — "with high probability" verification.
//!
//! Theorem 2.6 claims success probability ≥ 1 − 1/n^β within
//! `t = O(max{T, log n/(ε³ log 1/ε)})` slots. For a *fixed* budget
//! multiplier `K` the failure rate must decay with `n` (the theorem's
//! constant is uniform in `n`). We sweep `K` from razor-thin to
//! comfortable and report the full failure matrix; the tight budgets
//! show a genuinely decaying curve, the comfortable ones sit at zero.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_analysis::{Figure, Series, Table};
use jle_engine::{run_cohort, SimConfig};
use jle_protocols::{math, LeskProtocol};
use jle_radio::CdModel;
use serde::Serialize;

/// Budget multipliers swept (times the Theorem 2.6 shape).
pub const BUDGET_KS: [f64; 4] = [2.0, 2.5, 3.0, 5.0];

/// Run E9.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e9",
        "failure probability vs n across time budgets",
        "Theorem 2.6: success with probability >= 1 - 1/n^beta",
    );
    let eps = 0.5;
    let t_window = 32u64;
    let ns: Vec<u64> = if quick { vec![64, 256] } else { vec![64, 256, 1024, 4096, 16_384] };
    let trials: u64 = if quick { 400 } else { 4000 };

    let mut table = Table::new([
        "n",
        "shape(n)",
        "K=2.0 fail rate",
        "K=2.5 fail rate",
        "K=3.0 fail rate",
        "K=5.0 fail rate",
        "1/n",
    ]);
    // failure_rates[ki] holds the per-n curve for budget K = BUDGET_KS[ki].
    let mut failure_rates: Vec<Vec<f64>> = vec![Vec::new(); BUDGET_KS.len()];
    for (i, &n) in ns.iter().enumerate() {
        let shape = math::lesk_runtime_shape(n, eps, t_window);
        let adv = saturating(eps, t_window);
        let mut cells = vec![n.to_string(), jle_analysis::fmt(shape)];
        for (ki, &k) in BUDGET_KS.iter().enumerate() {
            let budget = (k * shape).ceil() as u64;
            let params = serde_json::json!({
                "kind": "whp_failure",
                "n": n,
                "eps": eps,
                "t": t_window,
                "budget": budget,
                "adv": adv.to_json_value(),
                "proto": "lesk",
            });
            let failures: u64 = ctx
                .run_trials(
                    "e9",
                    &format!("n={n}/K={k}"),
                    params,
                    90_000 + i as u64 * 17 + ki as u64 * 7919,
                    trials,
                    |seed| {
                        let config = SimConfig::new(n, CdModel::Strong)
                            .with_seed(seed)
                            .with_max_slots(budget);
                        run_cohort(&config, &adv, || LeskProtocol::new(eps)).timed_out as u64
                    },
                )
                .into_iter()
                .sum();
            let rate = failures as f64 / trials as f64;
            failure_rates[ki].push(rate);
            cells.push(format!("{rate:.4}"));
        }
        cells.push(format!("{:.5}", 1.0 / n as f64));
        table.push_row(cells);
    }
    result.add_table(
        &format!("failure rate within K·shape(n), {trials} trials/cell (saturating jammer)"),
        table,
    );
    let mut fig =
        Figure::new("LESK failure rate vs n across time budgets", "n (log2 axis)", "failure rate")
            .log_x();
    for (ki, &k) in BUDGET_KS.iter().enumerate() {
        let mut s = Series::new(format!("K = {k}"));
        for (&n, &rate) in ns.iter().zip(&failure_rates[ki]) {
            s.push(n as f64, rate);
        }
        fig = fig.with_series(s);
    }
    let mut envelope = Series::new("1/n");
    for &n in &ns {
        envelope.push(n as f64, 1.0 / n as f64);
    }
    result.add_figure(fig.with_series(envelope));

    // The decay claim: for each K, the failure rate at the largest n must
    // not exceed the rate at the smallest n (up to Monte-Carlo noise).
    let decaying = failure_rates
        .iter()
        .filter(|curve| curve.first().copied().unwrap_or(0.0) > 0.0)
        .all(|curve| *curve.last().unwrap() <= curve.first().unwrap() + 0.01);
    result.note(format!(
        "for every budget multiplier with a nonzero failure rate the curve is {} in n — a \
         fixed multiple of the Theorem 2.6 shape suffices w.h.p. uniformly in n; at K = 5 \
         failures vanish entirely at {trials} trials per cell",
        if decaying { "non-increasing" } else { "NOT non-increasing (investigate)" }
    ));
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
