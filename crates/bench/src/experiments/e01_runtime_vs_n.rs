//! E1 — LESK runtime vs `n` (Theorem 2.6, the headline `O(log n)`).
//!
//! Sweep `n` over powers of two at constant `ε = 1/2`, `T = 32`, under no
//! jamming and under the saturating jammer. Theorem 2.6 predicts slots
//! linear in `log₂ n`; we report medians and the least-squares fit of
//! `median_slots ~ a + b·log₂ n`.

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, log2_fit, Figure, Series, Summary, Table};
use jle_protocols::LeskProtocol;
use jle_radio::CdModel;

/// Run E1. `quick` trims the sweep for smoke testing.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e1",
        "LESK runtime vs n (constant eps)",
        "Theorem 2.6: O(log n) slots for constant eps and T = O(log n)",
    );
    let eps = 0.5;
    let t_window = 32;
    let exps: Vec<u32> = if quick { vec![4, 8, 12] } else { vec![4, 6, 8, 10, 12, 14, 16, 18, 20] };
    let trials = if quick { 20 } else { 200 };

    let mut table = Table::new([
        "n",
        "log2(n)",
        "median (no jam)",
        "mean (no jam)",
        "median (saturating)",
        "median 95% CI (saturating)",
        "jam/clean ratio",
    ]);
    let mut clean_pts = Vec::new();
    let mut jam_pts = Vec::new();
    for &k in &exps {
        let n = 1u64 << k;
        let proto = serde_json::json!({"proto": "lesk", "eps": eps});
        let (clean, t0) = ctx.election_slots(
            "e1",
            &format!("clean/n={n}"),
            proto.clone(),
            n,
            CdModel::Strong,
            &AdversarySpec::passive(),
            trials,
            1000 + k as u64,
            10_000_000,
            || LeskProtocol::new(eps),
        );
        let (jam, t1) = ctx.election_slots(
            "e1",
            &format!("saturating/n={n}"),
            proto,
            n,
            CdModel::Strong,
            &saturating(eps, t_window),
            trials,
            2000 + k as u64,
            10_000_000,
            || LeskProtocol::new(eps),
        );
        assert_eq!(t0 + t1, 0, "no timeouts expected in E1");
        let (sc, sj) = (Summary::of(&clean).unwrap(), Summary::of(&jam).unwrap());
        let ci = jle_analysis::median_ci(&jam, 0.95, 42 + k as u64).unwrap();
        clean_pts.push((n as f64, median(&clean)));
        jam_pts.push((n as f64, median(&jam)));
        table.push_row([
            n.to_string(),
            k.to_string(),
            fmt(sc.median),
            fmt(sc.mean),
            fmt(sj.median),
            format!("[{}, {}]", fmt(ci.lo), fmt(ci.hi)),
            fmt(sj.median / sc.median),
        ]);
    }
    result.add_table("runtime vs n", table);
    let mut s_clean = Series::new("no jam");
    let mut s_jam = Series::new("saturating jammer");
    for &(x, y) in &clean_pts {
        s_clean.push(x, y);
    }
    for &(x, y) in &jam_pts {
        s_jam.push(x, y);
    }
    result.add_figure(
        Figure::new("LESK election time vs n (eps = 1/2, T = 32)", "n (log2 axis)", "median slots")
            .log_x()
            .with_series(s_clean)
            .with_series(s_jam),
    );

    let mut fits = Table::new(["series", "slope (slots per log2 n)", "intercept", "R^2"]);
    for (name, pts) in [("no jam", &clean_pts), ("saturating", &jam_pts)] {
        if let Some(fit) = log2_fit(pts) {
            fits.push_row([
                name.to_string(),
                fmt(fit.slope),
                fmt(fit.intercept),
                format!("{:.4}", fit.r_squared),
            ]);
            result.note(format!(
                "{name}: slots ≈ {} + {}·log2(n), R² = {:.4} — consistent with Θ(log n)",
                fmt(fit.intercept),
                fmt(fit.slope),
                fit.r_squared
            ));
        }
    }
    result.add_table("log-fit", fits);
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
