//! E24 — fault injection and restart supervision: elections beyond the
//! paper's perfect-station model.
//!
//! The theorems assume every station boots at slot 0 and runs flawlessly
//! forever. E24 drops that assumption: stations crash (state loss), wake
//! up late, and mis-sense the channel (`Null`/`Collision` flips), all on
//! top of the usual saturating `(T, 1−ε)` jammer. Runs go through
//! [`jle_engine::run_exact_faulty`] and are classified by the
//! [`Outcome`] degradation taxonomy; a supervised arm wraps each station
//! in [`Supervisor`] (silence watchdog + restart with exponential
//! backoff) and is coupled to the bare arm — identical seeds and
//! identical [`FaultPlan`]s — so any difference is the supervisor's
//! doing. Every trial is a self-contained cacheable unit: it is caught
//! individually via [`jle_engine::catch_trial`] and carries its own
//! supervisor-respawn count, so a cached replay reproduces restart
//! statistics without re-simulating.
//!
//! What the sweep can and cannot show, honestly: LESK's one-sided-error
//! rule makes it self-stabilizing (silence drives the estimate down, so
//! it cannot wedge), and under the first-clean-single stop rule the
//! failure modes that remain — the would-be winner being crashed at the
//! end of the horizon, or a near-total wipeout running into the cap —
//! are decided by the fault plan, which both arms share. The measurable
//! claims are therefore (1) *supervision is free insurance*: with a sane
//! watchdog the supervised arm is slot-for-slot identical to the bare
//! arm, so its validity is never lower; and (2) *the backoff rescues
//! over-aggressive watchdogs*: a window far below the election time
//! fires restarts, yet doubling grows it past the election time and
//! validity is retained at the price of extra slots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Figure, Series, Table};
use jle_engine::{
    catch_trial, run_exact_faulty, FaultPlan, FaultyStations, Outcome, PerStation, Protocol,
    RunReport, SimConfig, SimCore, TelemetryObserver, TrialOutcome,
};
use jle_orchestrator::WorkSpec;
use jle_protocols::{
    LeskProtocol, LesuProtocol, RestartCause, RestartRecord, RestartSink, Supervisor,
};
use jle_radio::CdModel;
use jle_telemetry::AnomalyKind;
use serde::{Serialize, Value};

const N: u64 = 24;
const EPS: f64 = 0.5;
const T_WINDOW: u64 = 32;
/// Default watchdog: far above the typical election time at n = 24, so
/// supervision stays transparent unless the election is truly wedged.
const WATCHDOG: u64 = 16_384;
/// Crashes land uniformly in this window.
const CRASH_WINDOW: u64 = 2_048;
/// Sensing-flip probability used in the "churn" plans.
const FLIP: f64 = 0.02;
/// Salt so the fault plan's streams are decoupled from the engine seed.
const PLAN_SALT: u64 = 0xFA17;

/// Measured statistics of one (protocol, fault-plan) arm.
struct ArmStats {
    valid: f64,
    leader_crashed: f64,
    deadline: f64,
    med_slots: f64,
    /// Mean supervisor restarts per run; `None` for unsupervised arms.
    mean_restarts: Option<f64>,
    panics: u64,
}

impl ArmStats {
    fn restarts_cell(&self) -> String {
        match self.mean_restarts {
            Some(r) => format!("{r:.2}"),
            None => "-".into(),
        }
    }
}

/// The canonical parameter tree of one faulty-election arm: the fault
/// *plan descriptor* (plans themselves are per-seed, derived from it),
/// the protocol, and the optional supervisor watchdog.
fn arm_params(
    adv: &AdversarySpec,
    cap: u64,
    plan: Value,
    proto: Value,
    watchdog: Option<u64>,
) -> Value {
    serde_json::json!({
        "kind": "faulty_election",
        "n": N,
        "adv": adv.to_json_value(),
        "max_slots": cap,
        "plan": plan,
        "proto": proto,
        "watchdog": watchdog,
    })
}

/// Run one arm as a cacheable work unit: `trials` coupled runs of the
/// factory built by `mk_factory` under `plan_of(seed)`.
///
/// Each trial builds its *own* respawn counter, hands it to
/// `mk_factory`, and returns `(outcome, spawns)` — since every run
/// spawns exactly `N` initial inners and the e24 plans schedule no
/// recoveries, the per-trial surplus over `N` is exactly the number of
/// supervisor restarts. Keeping the count inside the trial result (not
/// a global side channel) is what lets a cached replay reproduce it.
#[allow(clippy::too_many_arguments)]
fn run_arm<F, G>(
    ctx: &ExpContext,
    point: &str,
    params: Value,
    trials: u64,
    base_seed: u64,
    cap: u64,
    adv: &AdversarySpec,
    plan_of: &(dyn Fn(u64) -> FaultPlan + Sync),
    counted: bool,
    mk_factory: G,
) -> ArmStats
where
    F: Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static,
    G: Fn(Arc<AtomicU64>, Option<RestartSink>) -> F + Sync,
{
    // With a flight recorder attached, executed trials run with a
    // TelemetryObserver (pure instrumentation, proven to leave the RNG
    // stream untouched), so anomalous runs, caught panics, and
    // supervisor restarts all leave replayable postmortems stamped with
    // this unit's cache fingerprint.
    let recorder = ctx.flight_recorder().cloned();
    let metrics = recorder
        .as_ref()
        .map(|_| jle_engine::EngineMetrics::register(ctx.orchestrator().stats().registry()));
    let fingerprint = recorder.as_ref().map(|_| {
        ctx.orchestrator().fingerprint_hex::<(TrialOutcome<RunReport>, u64)>(&WorkSpec::new(
            "e24",
            point,
            params.clone(),
            base_seed,
        ))
    });
    let outcomes: Vec<(TrialOutcome<RunReport>, u64)> =
        ctx.run_trials("e24", point, params, base_seed, trials, |seed| {
            let spawns = Arc::new(AtomicU64::new(0));
            let restarts: Arc<Mutex<Vec<RestartRecord>>> = Arc::new(Mutex::new(Vec::new()));
            let sink: Option<RestartSink> = recorder.as_ref().map(|_| {
                let log = Arc::clone(&restarts);
                Arc::new(move |r: &RestartRecord| log.lock().expect("restart log").push(*r))
                    as RestartSink
            });
            let factory = mk_factory(Arc::clone(&spawns), sink);
            let out = catch_trial(|| {
                let config = SimConfig::new(N, CdModel::Strong).with_seed(seed).with_max_slots(cap);
                let plan = plan_of(seed);
                match &recorder {
                    None => run_exact_faulty(&config, adv, &plan, factory),
                    Some(rec) => {
                        let mut obs = TelemetryObserver::new(&config)
                            .with_flight_recorder(Arc::clone(rec))
                            .with_context("experiment", "e24")
                            .with_context("point", point);
                        if let Some(m) = &metrics {
                            obs = obs.with_metrics(m.clone());
                        }
                        if let Some(fp) = &fingerprint {
                            obs = obs.with_fingerprint(fp.clone());
                        }
                        let mut stations = FaultyStations::new(&config, &plan, factory);
                        let report =
                            SimCore::new(&config, adv).observe(&mut obs).run(&mut stations);
                        let log = restarts.lock().expect("restart log");
                        if !log.is_empty() {
                            obs.dump_anomaly(
                                AnomalyKind::SupervisorRestart,
                                summarize_restarts(&log),
                            );
                        }
                        report
                    }
                }
            });
            if let (Some(rec), Some(msg)) = (&recorder, out.panic_message()) {
                let _ = jle_engine::telemetry::dump_panic(rec, seed, fingerprint.as_deref(), msg);
            }
            (out, spawns.load(Ordering::Relaxed))
        });
    let panics = outcomes.iter().filter(|(o, _)| o.is_panicked()).count() as u64;
    let reports: Vec<&RunReport> = outcomes.iter().filter_map(|(o, _)| o.as_ok()).collect();
    let done = reports.len().max(1) as f64;
    let rate = |o: Outcome| reports.iter().filter(|r| r.outcome() == o).count() as f64 / done;
    let slots: Vec<f64> = reports.iter().map(|r| r.slots as f64).collect();
    let mean_restarts = counted.then(|| {
        let surplus: u64 = outcomes.iter().map(|(_, s)| s.saturating_sub(N)).sum();
        surplus as f64 / trials as f64
    });
    ArmStats {
        valid: rate(Outcome::Elected),
        leader_crashed: rate(Outcome::LeaderCrashed),
        deadline: rate(Outcome::DeadlineExceeded),
        med_slots: if slots.is_empty() { f64::NAN } else { median(&slots) },
        mean_restarts,
        panics,
    }
}

/// One line attributing a trial's supervisor restarts by cause, for the
/// flight-recorder detail field.
fn summarize_restarts(log: &[RestartRecord]) -> String {
    let count = |c: RestartCause| log.iter().filter(|r| r.cause == c).count();
    format!(
        "{} supervisor restart(s): {} wedged, {} crashed, {} cap; first at slot {} (window {})",
        log.len(),
        count(RestartCause::Wedged),
        count(RestartCause::Crashed),
        count(RestartCause::Cap),
        log[0].slot,
        log[0].window,
    )
}

/// A bare LESK station factory (no respawn counting).
fn bare_lesk() -> impl Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static {
    move |_| Box::new(PerStation::new(LeskProtocol::new(EPS)))
}

/// A supervised LESK factory whose inner respawns bump `counter` and
/// whose restart records (if `sink` is given) feed the flight recorder.
fn supervised_lesk(
    watchdog: u64,
    counter: Arc<AtomicU64>,
    sink: Option<RestartSink>,
) -> impl Fn(u64) -> Box<dyn Protocol> + Send + Sync + 'static {
    move |_| {
        let c = Arc::clone(&counter);
        let sup = Supervisor::new(
            watchdog,
            Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
                Box::new(PerStation::new(LeskProtocol::new(EPS)))
            }),
        );
        let sup = match &sink {
            Some(s) => sup.with_restart_sink(Arc::clone(s)),
            None => sup,
        };
        Box::new(sup)
    }
}

/// Run E24.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e24",
        "fault injection + restart supervision: beyond the perfect-station model",
        "outside the formal model (Section 1's station assumptions relaxed)",
    );
    let trials = if quick { 20 } else { 100 };
    let cap = if quick { 60_000 } else { 200_000 };
    let adv = saturating(EPS, T_WINDOW);
    let lesk_proto = serde_json::json!({"proto": "lesk", "eps": EPS});

    // ── Table 1: crash-rate sweep, bare vs supervised LESK ─────────────
    let crash_rates: Vec<f64> =
        if quick { vec![0.0, 0.2, 0.4] } else { vec![0.0, 0.1, 0.2, 0.3, 0.4] };
    let mut t1 = Table::new([
        "crash prob",
        "valid (bare)",
        "valid (sup)",
        "leader-crashed (sup)",
        "deadline (sup)",
        "median slots (bare)",
        "median slots (sup)",
        "restarts/run (sup)",
        "panicked trials",
    ]);
    let mut s_bare = Series::new("bare LESK");
    let mut s_sup = Series::new("supervised LESK");
    let mut dominance_held = true;
    for (i, &crash) in crash_rates.iter().enumerate() {
        let base_seed = 240_000 + i as u64 * 101;
        let plan_of = move |seed: u64| {
            FaultPlan::new(seed ^ PLAN_SALT)
                .with_random_crashes(N, crash, CRASH_WINDOW)
                .with_sensing_flips(N, FLIP)
        };
        let plan_desc = serde_json::json!({
            "crashes": {"prob": crash, "window": CRASH_WINDOW},
            "flips": FLIP,
            "salt": PLAN_SALT,
        });
        let bare = run_arm(
            ctx,
            &format!("crash={crash}/bare"),
            arm_params(&adv, cap, plan_desc.clone(), lesk_proto.clone(), None),
            trials,
            base_seed,
            cap,
            &adv,
            &plan_of,
            false,
            |_, _| bare_lesk(),
        );
        let sup = run_arm(
            ctx,
            &format!("crash={crash}/sup"),
            arm_params(&adv, cap, plan_desc, lesk_proto.clone(), Some(WATCHDOG)),
            trials,
            base_seed,
            cap,
            &adv,
            &plan_of,
            true,
            |c, sink| supervised_lesk(WATCHDOG, c, sink),
        );
        dominance_held &= sup.valid >= bare.valid;
        s_bare.push(crash, bare.valid);
        s_sup.push(crash, sup.valid);
        t1.push_row([
            format!("{crash:.1}"),
            format!("{:.2}", bare.valid),
            format!("{:.2}", sup.valid),
            format!("{:.2}", sup.leader_crashed),
            format!("{:.2}", sup.deadline),
            fmt(bare.med_slots),
            fmt(sup.med_slots),
            sup.restarts_cell(),
            format!("{}", bare.panics + sup.panics),
        ]);
    }
    result.add_table(
        &format!(
            "LESK under station crashes (n={N}, eps={EPS}, saturating T={T_WINDOW}, \
             sensing flips {FLIP}, watchdog {WATCHDOG})"
        ),
        t1,
    );
    result.add_figure(
        Figure::new(
            "validity under station crashes: bare vs supervised LESK",
            "per-station crash probability",
            "valid-election rate",
        )
        .with_series(s_bare)
        .with_series(s_sup),
    );
    result.note(format!(
        "supervised validity >= bare validity at every swept crash rate: {}",
        if dominance_held { "HELD" } else { "VIOLATED" }
    ));

    // ── Table 2: wakeup-stagger sweep ──────────────────────────────────
    let staggers: Vec<u64> = if quick { vec![0, 2_048] } else { vec![0, 256, 2_048, 8_192] };
    let mut t2 = Table::new([
        "max wakeup stagger",
        "valid (bare)",
        "valid (sup)",
        "median slots (bare)",
        "median slots (sup)",
        "restarts/run (sup)",
        "panicked trials",
    ]);
    for (i, &stagger) in staggers.iter().enumerate() {
        let base_seed = 241_000 + i as u64 * 101;
        let plan_of = move |seed: u64| {
            FaultPlan::new(seed ^ PLAN_SALT)
                .with_staggered_wakeups(N, stagger)
                .with_sensing_flips(N, FLIP)
        };
        let plan_desc = serde_json::json!({
            "stagger": stagger,
            "flips": FLIP,
            "salt": PLAN_SALT,
        });
        let bare = run_arm(
            ctx,
            &format!("stagger={stagger}/bare"),
            arm_params(&adv, cap, plan_desc.clone(), lesk_proto.clone(), None),
            trials,
            base_seed,
            cap,
            &adv,
            &plan_of,
            false,
            |_, _| bare_lesk(),
        );
        let sup = run_arm(
            ctx,
            &format!("stagger={stagger}/sup"),
            arm_params(&adv, cap, plan_desc, lesk_proto.clone(), Some(WATCHDOG)),
            trials,
            base_seed,
            cap,
            &adv,
            &plan_of,
            true,
            |c, sink| supervised_lesk(WATCHDOG, c, sink),
        );
        t2.push_row([
            format!("{stagger}"),
            format!("{:.2}", bare.valid),
            format!("{:.2}", sup.valid),
            fmt(bare.med_slots),
            fmt(sup.med_slots),
            sup.restarts_cell(),
            format!("{}", bare.panics + sup.panics),
        ]);
    }
    result.add_table("LESK under staggered wakeups (crashes off, sensing flips on)", t2);
    result.note(
        "staggered wakeups are non-monotone: a mild stagger *speeds elections up* (fewer \
         stations awake at once means less initial contention, so the first clean Single \
         comes sooner), and only a stagger far above the election time slows them by the \
         waiting alone"
            .to_string(),
    );

    // ── Table 3: LESU under fixed churn ────────────────────────────────
    let churn_plan = move |seed: u64| {
        FaultPlan::new(seed ^ PLAN_SALT)
            .with_random_crashes(N, 0.15, CRASH_WINDOW)
            .with_staggered_wakeups(N, 512)
            .with_sensing_flips(N, FLIP)
    };
    let churn_desc = serde_json::json!({
        "crashes": {"prob": 0.15, "window": CRASH_WINDOW},
        "stagger": 512u64,
        "flips": FLIP,
        "salt": PLAN_SALT,
    });
    let lesu_proto = serde_json::json!({"proto": "lesu"});
    let mut t3 = Table::new([
        "arm",
        "valid",
        "leader-crashed",
        "deadline",
        "median slots",
        "restarts/run",
        "panicked trials",
    ]);
    let lesu_bare = run_arm(
        ctx,
        "churn/lesu-bare",
        arm_params(&adv, cap, churn_desc.clone(), lesu_proto.clone(), None),
        trials,
        242_000,
        cap,
        &adv,
        &churn_plan,
        false,
        |_, _| {
            move |_: u64| -> Box<dyn Protocol> { Box::new(PerStation::new(LesuProtocol::new())) }
        },
    );
    let lesu_sup = run_arm(
        ctx,
        "churn/lesu-sup",
        arm_params(&adv, cap, churn_desc, lesu_proto, Some(WATCHDOG)),
        trials,
        242_000,
        cap,
        &adv,
        &churn_plan,
        true,
        |ctr, sink| {
            move |_: u64| -> Box<dyn Protocol> {
                let c = Arc::clone(&ctr);
                let sup = Supervisor::new(
                    WATCHDOG,
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                        Box::new(PerStation::new(LesuProtocol::new()))
                    }),
                );
                let sup = match &sink {
                    Some(s) => sup.with_restart_sink(Arc::clone(s)),
                    None => sup,
                };
                Box::new(sup)
            }
        },
    );
    for (name, a) in [("LESU bare", &lesu_bare), ("LESU supervised", &lesu_sup)] {
        t3.push_row([
            name.to_string(),
            format!("{:.2}", a.valid),
            format!("{:.2}", a.leader_crashed),
            format!("{:.2}", a.deadline),
            fmt(a.med_slots),
            a.restarts_cell(),
            format!("{}", a.panics),
        ]);
    }
    result.add_table("LESU under churn (crash prob 0.15, stagger 512, sensing flips 0.02)", t3);

    // ── Table 4: watchdog-window stress (LESK, fixed churn) ────────────
    let stress_plan = move |seed: u64| {
        FaultPlan::new(seed ^ PLAN_SALT)
            .with_random_crashes(N, 0.2, CRASH_WINDOW)
            .with_sensing_flips(N, FLIP)
    };
    let stress_desc = serde_json::json!({
        "crashes": {"prob": 0.2, "window": CRASH_WINDOW},
        "flips": FLIP,
        "salt": PLAN_SALT,
    });
    let windows: Vec<u64> = if quick { vec![64, WATCHDOG] } else { vec![64, 1_024, WATCHDOG] };
    let mut t4 = Table::new([
        "watchdog window",
        "valid",
        "leader-crashed",
        "deadline",
        "median slots",
        "restarts/run",
        "panicked trials",
    ]);
    // One shared base seed: every row faces the *same* fault plans and
    // engine seeds, so differences are the watchdog's doing alone.
    let stress_seed = 243_000;
    let stress_bare = run_arm(
        ctx,
        "stress/bare",
        arm_params(&adv, cap, stress_desc.clone(), lesk_proto.clone(), None),
        trials,
        stress_seed,
        cap,
        &adv,
        &stress_plan,
        false,
        |_, _| bare_lesk(),
    );
    t4.push_row([
        "bare (no supervisor)".into(),
        format!("{:.2}", stress_bare.valid),
        format!("{:.2}", stress_bare.leader_crashed),
        format!("{:.2}", stress_bare.deadline),
        fmt(stress_bare.med_slots),
        "-".into(),
        format!("{}", stress_bare.panics),
    ]);
    for &w in &windows {
        let a = run_arm(
            ctx,
            &format!("stress/w={w}"),
            arm_params(&adv, cap, stress_desc.clone(), lesk_proto.clone(), Some(w)),
            trials,
            stress_seed,
            cap,
            &adv,
            &stress_plan,
            true,
            |c, sink| supervised_lesk(w, c, sink),
        );
        t4.push_row([
            format!("{w}"),
            format!("{:.2}", a.valid),
            format!("{:.2}", a.leader_crashed),
            format!("{:.2}", a.deadline),
            fmt(a.med_slots),
            a.restarts_cell(),
            format!("{}", a.panics),
        ]);
    }
    result.add_table(
        "watchdog stress: windows below the election time fire restarts, backoff recovers",
        t4,
    );

    result.note(
        "with the sane watchdog the supervised arm is slot-identical to the bare arm \
         (transparency coupling), so supervision is free insurance; residual failures are \
         plan-decided (winner crashed at end of horizon, or near-total wipeout hitting the \
         cap) and hit both arms equally"
            .to_string(),
    );
    result.note(
        "an over-aggressive watchdog (window 64, far below the election time) fires \
         restarts every window, yet exponential backoff grows it past the election time: \
         elections still complete (no deadline failures), at the cost of extra slots; the \
         restarted dynamics may elect a *different* winner, so which row's winner the plan \
         happens to crash varies, while the winner-crash risk itself stays plan-governed"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_telemetry::{FlightRecord, FlightRecorder};

    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 4);
        assert_eq!(r.figures.len(), 1);
        assert!(r.notes.iter().any(|n| n.contains("HELD")), "dominance must hold: {:?}", r.notes);
    }

    /// The flight recorder is pure instrumentation (identical arm stats
    /// with and without it), its postmortems parse, and the documented
    /// replay — re-run the unit's config at the record's seed —
    /// reproduces the recorded trial exactly.
    #[test]
    fn flight_recorder_is_invisible_and_artifacts_replay() {
        let dir = std::env::temp_dir().join(format!("jle-e24-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = Arc::new(FlightRecorder::new(&dir).unwrap());
        let plain = ExpContext::ephemeral(true);
        let wired = ExpContext::ephemeral(true).with_flight_recorder(Arc::clone(&recorder));

        let adv = saturating(EPS, T_WINDOW);
        let cap = 60_000;
        let watchdog = 64; // aggressive on purpose: restarts must fire
        let plan_of = move |seed: u64| {
            FaultPlan::new(seed ^ PLAN_SALT)
                .with_random_crashes(N, 0.3, CRASH_WINDOW)
                .with_sensing_flips(N, FLIP)
        };
        let params = arm_params(
            &adv,
            cap,
            serde_json::json!({"test": "flight"}),
            serde_json::json!({"proto": "lesk", "eps": EPS}),
            Some(watchdog),
        );
        let run = |ctx: &ExpContext| {
            run_arm(
                ctx,
                "flight/sup",
                params.clone(),
                10,
                9_000,
                cap,
                &adv,
                &plan_of,
                true,
                |c, sink| supervised_lesk(watchdog, c, sink),
            )
        };
        let a = run(&plain);
        let b = run(&wired);
        assert_eq!(a.valid, b.valid, "recorder must not change validity");
        assert_eq!(a.med_slots, b.med_slots, "recorder must not change slot counts");
        assert_eq!(a.mean_restarts, b.mean_restarts, "recorder must not change restarts");
        assert!(recorder.written() > 0, "aggressive watchdog must dump restart postmortems");

        let mut paths: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_str().unwrap().contains("supervisor_restart"))
            .collect();
        paths.sort();
        let record: FlightRecord =
            serde_json::from_str(&std::fs::read_to_string(&paths[0]).unwrap()).unwrap();
        assert!(record.fingerprint.is_some(), "stamped with the unit's cache key");
        assert!(record.detail.contains("supervisor restart"), "detail: {}", record.detail);
        assert!(record.context.iter().any(|(k, v)| k == "experiment" && v == "e24"));

        // Replay: same config + recorded seed reproduces the trial.
        let spawns = Arc::new(AtomicU64::new(0));
        let factory = supervised_lesk(watchdog, Arc::clone(&spawns), None);
        let config = SimConfig::new(N, CdModel::Strong).with_seed(record.seed).with_max_slots(cap);
        let report = run_exact_faulty(&config, &adv, &plan_of(record.seed), factory);
        assert_eq!(
            report.slots, record.slots_seen,
            "replay at the recorded seed reproduces the recorded trial"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
