//! E5 — LESU under very large `T` (Theorem 2.9 case 2: `O(T loglog T)`)
//! versus the prior art's `O(T log T)` (ARSS'14).
//!
//! Constant hidden ε = 1/2, `n = 256`, `T ≫ log n`, burst jammer that
//! blacks out `T`-long stretches. The paper's improvement over [3] in
//! this regime is the `log T → loglog T` factor; we report
//! `slots / T` against both `loglog T` and `log T` growth curves.

use crate::common::{median, ExpContext, ExperimentResult};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{fmt, Table};
use jle_protocols::LesuProtocol;
use jle_radio::CdModel;

/// Run E5.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e5",
        "LESU vs large T; loglog T overhead vs the O(T log T) prior art",
        "Theorem 2.9 case 2 + Section 1.3 (improves O(T log T) of [3] to O(T loglog T))",
    );
    let n = 256u64;
    let eps = 0.5;
    let t_grid: Vec<u64> = if quick {
        vec![1 << 10, 1 << 13]
    } else {
        vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18]
    };
    let trials = if quick { 8 } else { 25 };

    let mut table =
        Table::new(["T", "median slots", "slots/T", "loglog T", "log T", "(slots/T)/loglog T"]);
    let mut normalized = Vec::new();
    for (i, &t) in t_grid.iter().enumerate() {
        let adv =
            AdversarySpec::new(Rate::from_f64(eps), t, JamStrategyKind::Burst { on: t, off: t });
        let (slots, to) = ctx.election_slots(
            "e5",
            &format!("burst/T={t}"),
            serde_json::json!({"proto": "lesu"}),
            n,
            CdModel::Strong,
            &adv,
            trials,
            50_000 + i as u64,
            2_000_000_000,
            LesuProtocol::new,
        );
        assert_eq!(to, 0, "no timeouts expected in E5 at T={t}");
        let med = median(&slots);
        let per_t = med / t as f64;
        let loglog = (t as f64).log2().log2();
        let log = (t as f64).log2();
        normalized.push(per_t / loglog);
        table.push_row([
            t.to_string(),
            fmt(med),
            fmt(per_t),
            fmt(loglog),
            fmt(log),
            fmt(per_t / loglog),
        ]);
    }
    result.add_table("large-T scaling", table);

    let spread = normalized.iter().cloned().fold(f64::MIN, f64::max)
        / normalized.iter().cloned().fold(f64::MAX, f64::min);
    result.note(format!(
        "(slots/T)/loglog T varies only {spread:.2}x across the sweep — consistent with \
         O(T loglog T); an O(T log T) algorithm would show this ratio growing by \
         log(T_max)/log(T_min) ≈ {:.1}x",
        (*t_grid.last().unwrap() as f64).log2() / (t_grid[0] as f64).log2()
    ));
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
