//! E14 — adversary-strategy ablation against LESK.
//!
//! Same `(T, 1−ε)` budget, different spending policies. The model claim
//! (Section 1.1) is robustness against *any* adaptive strategy; this
//! experiment shows which strategies actually hurt and that none escapes
//! the Theorem 2.6 envelope. Expected ordering: protocol-aware adaptive ≥
//! oblivious saturating ≥ shaped oblivious ≥ random ≥ none.

use crate::common::{median, ExpContext, ExperimentResult};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{fmt, Table};
use jle_protocols::{math, LeskProtocol};
use jle_radio::CdModel;
use serde::Serialize;

/// Run E14.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e14",
        "adversary ablation: where should a (T,1-eps) jammer spend its budget?",
        "Section 1.1 (adaptive adversary model), Theorem 2.6 (robust against all)",
    );
    let n = 1024u64;
    let eps = 0.3;
    let t = 64u64;
    let trials = if quick { 10 } else { 80 };
    let rate = Rate::from_f64(eps);

    // Two starting regimes: cold start (the protocol as written — the
    // u-climb dominates and shrugs off jamming) and warm start (u seeded
    // at log2 n — the in-band regime where jamming actually bites). The
    // adaptive attacker's mirror is seeded to match the regime.
    let log2n = (n as f64).log2();
    let mut warm_rows: Vec<(String, f64)> = Vec::new();
    for (regime, warm) in [("cold start (u=0)", false), ("warm start (u=log2 n)", true)] {
        let strategies: Vec<(&str, JamStrategyKind)> = vec![
            ("none", JamStrategyKind::None),
            ("random p=0.7", JamStrategyKind::Random { prob: 0.7 }),
            ("burst (T on / T off)", JamStrategyKind::Burst { on: t, off: t }),
            ("periodic-front", JamStrategyKind::PeriodicFront),
            ("front-loaded 20k", JamStrategyKind::FrontLoaded { horizon: 20_000 }),
            ("reactive-null", JamStrategyKind::ReactiveNull),
            ("saturating", JamStrategyKind::Saturating),
            (
                "adaptive-estimator",
                JamStrategyKind::AdaptiveEstimator {
                    n,
                    protocol_eps: eps,
                    band: 3.0,
                    initial_u: if warm { log2n } else { 0.0 },
                },
            ),
        ];
        let mut table = Table::new([
            "strategy",
            "median slots",
            "slowdown vs none",
            "jam fraction",
            "within Thm 2.6 envelope",
        ]);
        let mut base = None;
        let envelope = 100.0 * math::lesk_runtime_shape(n, eps, t);
        for (i, (name, kind)) in strategies.iter().enumerate() {
            let spec = AdversarySpec::new(rate, t, kind.clone());
            let params = serde_json::json!({
                "kind": "adversary_ablation",
                "n": n,
                "eps": eps,
                "adv": spec.to_json_value(),
                "warm": warm,
                "max_slots": 100_000_000u64,
            });
            let reports: Vec<(f64, f64)> = ctx.run_trials(
                "e14",
                &format!("{}/{name}", if warm { "warm" } else { "cold" }),
                params,
                140_000 + i as u64 * 7 + warm as u64 * 999,
                trials,
                |seed| {
                    let config = jle_engine::SimConfig::new(n, CdModel::Strong)
                        .with_seed(seed)
                        .with_max_slots(100_000_000);
                    let r = jle_engine::run_cohort(&config, &spec, || {
                        if warm {
                            LeskProtocol::with_initial_estimate(eps, log2n)
                        } else {
                            LeskProtocol::new(eps)
                        }
                    });
                    assert!(r.leader_elected(), "LESK must elect under {name}");
                    (r.slots as f64, r.jam_fraction())
                },
            );
            let slots: Vec<f64> = reports.iter().map(|r| r.0).collect();
            let fracs: Vec<f64> = reports.iter().map(|r| r.1).collect();
            let med = median(&slots);
            if base.is_none() {
                base = Some(med);
            }
            if warm {
                warm_rows.push((name.to_string(), med / base.unwrap()));
            }
            table.push_row([
                name.to_string(),
                fmt(med),
                fmt(med / base.unwrap()),
                format!("{:.3}", median(&fracs)),
                (med <= envelope).to_string(),
            ]);
        }
        result.add_table(&format!("LESK (n={n}, eps={eps}, T={t}) — {regime}"), table);
    }
    let worst = warm_rows.iter().max_by(|a, b| a.1.total_cmp(&b.1)).cloned().unwrap_or_default();
    result.note(
        "cold start: all slowdowns are ≤ ~1.1x — the as-written protocol spends its time \
         climbing u, and jamming only *accelerates* the climb (a jammed slot is a collision, \
         worth +eps/8, exactly like the unjammed collisions that dominate below the band)"
            .to_string(),
    );
    result.note(format!(
        "warm start exposes the real damage: in-band, unjammed slots fire Singles at a \
         constant rate, so a jammer that owns 1−eps = {:.0}% of slots multiplies the wait \
         accordingly; the strongest strategy is '{}' at {:.1}x — and even it stays inside the \
         Theorem 2.6 envelope",
        (1.0 - eps) * 100.0,
        worst.0,
        worst.1
    ));
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
