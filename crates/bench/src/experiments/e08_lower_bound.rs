//! E8 — the Lemma 2.7 lower bound: `Ω(max{T, ε⁻¹ log n})`.
//!
//! The periodic-front jammer is exactly the lower-bound construction:
//! jam the first `⌊(1−ε)T⌋` slots of each `T`-block, so only an ε
//! fraction of slots is usable and any algorithm needing `c·log n` clean
//! slots is stretched by `1/ε`. We verify (a) LESK's measured time always
//! sits **above** the lower-bound shape, and (b) for constant ε it stays
//! within a constant factor of it — i.e. LESK is optimal there
//! (Theorem 2.6 + Lemma 2.7).

use crate::common::{median, ExpContext, ExperimentResult};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{fmt, Table};
use jle_protocols::{math, LeskProtocol};
use jle_radio::CdModel;

/// Run E8.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e8",
        "lower-bound adversary vs LESK: optimality for constant eps",
        "Lemma 2.7: Omega(max{T, (1/eps) log n}); Theorem 2.6 matches it for constant eps",
    );
    let trials = if quick { 10 } else { 60 };

    // Sweep n at fixed eps, T.
    let mut by_n = Table::new(["n", "median slots", "lower bound shape", "measured/LB"]);
    let ns: Vec<u64> =
        if quick { vec![256, 4096] } else { vec![64, 256, 1024, 4096, 16_384, 65_536] };
    let mut ratios_n = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let eps = 0.5;
        let t = 64u64;
        let adv = AdversarySpec::new(Rate::from_f64(eps), t, JamStrategyKind::PeriodicFront);
        let (slots, to) = ctx.election_slots(
            "e8",
            &format!("sweep-n/n={n}"),
            serde_json::json!({"proto": "lesk", "eps": eps}),
            n,
            CdModel::Strong,
            &adv,
            trials,
            80_000 + i as u64,
            100_000_000,
            || LeskProtocol::new(eps),
        );
        assert_eq!(to, 0);
        let med = median(&slots);
        let lb = math::lower_bound_shape(n, eps, t);
        ratios_n.push(med / lb);
        by_n.push_row([n.to_string(), fmt(med), fmt(lb), fmt(med / lb)]);
    }
    result.add_table("sweep n (eps=1/2, T=64)", by_n);

    // Sweep eps at fixed n, T.
    let mut by_eps = Table::new(["eps", "median slots", "lower bound shape", "measured/LB"]);
    let eps_grid: Vec<f64> = if quick { vec![0.5] } else { vec![0.1, 0.2, 0.3, 0.5, 0.7, 0.9] };
    for (i, &eps) in eps_grid.iter().enumerate() {
        let n = 1024u64;
        let t = 64u64;
        let adv = AdversarySpec::new(Rate::from_f64(eps), t, JamStrategyKind::PeriodicFront);
        let (slots, to) = ctx.election_slots(
            "e8",
            &format!("sweep-eps/eps={eps}"),
            serde_json::json!({"proto": "lesk", "eps": eps}),
            n,
            CdModel::Strong,
            &adv,
            trials,
            81_000 + i as u64,
            100_000_000,
            || LeskProtocol::new(eps),
        );
        assert_eq!(to, 0);
        let med = median(&slots);
        let lb = math::lower_bound_shape(n, eps, t);
        by_eps.push_row([format!("{eps:.2}"), fmt(med), fmt(lb), fmt(med / lb)]);
    }
    result.add_table("sweep eps (n=1024, T=64)", by_eps);

    let spread = ratios_n.iter().cloned().fold(f64::MIN, f64::max)
        / ratios_n.iter().cloned().fold(f64::MAX, f64::min);
    result.note(format!(
        "for constant eps the measured/lower-bound ratio varies only {spread:.2}x across a \
         1000x range of n — LESK is within a constant of optimal, matching \
         Theorem 2.6 + Lemma 2.7; for small eps the ratio grows (the upper bound carries \
         an extra 1/(eps^2 log(1/eps)) factor, visible in the eps sweep)"
    ));
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
