//! E16 — k-selection (paper §4 building-block claim).
//!
//! Electing `k` leaders by continuing the LESK dynamics past each
//! `Single` with winners retiring. Measured claim: the first leader costs
//! the usual `O(log n)` climb, every further leader costs `O(1)`-ish
//! slots (the estimate is already calibrated), and the whole thing
//! survives the saturating jammer.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Table};
use jle_engine::SimConfig;
use jle_protocols::run_k_selection;
use jle_radio::CdModel;
use serde::Serialize;

#[allow(clippy::type_complexity)] // inline row-projection closures read better than aliases
/// Run E16.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e16",
        "k-selection: marginal cost of additional leaders",
        "Section 4 (building blocks); extension — measured behaviour, no paper bound",
    );
    let eps = 0.5;
    let trials = if quick { 10 } else { 50 };
    let ns: Vec<u64> = if quick { vec![1024] } else { vec![256, 1024, 16_384] };
    let ks: Vec<u64> = if quick { vec![8] } else { vec![4, 16, 64] };

    for (name, adv) in [("none", AdversarySpec::passive()), ("saturating", saturating(eps, 16))] {
        let mut table = Table::new([
            "n",
            "k",
            "median slots to 1st leader",
            "median marginal slots/leader (2..k)",
            "median total slots",
            "completed",
        ]);
        for &n in &ns {
            for &k in &ks {
                if k >= n {
                    continue;
                }
                let params = serde_json::json!({
                    "kind": "k_selection",
                    "n": n,
                    "k": k,
                    "eps": eps,
                    "adv": adv.to_json_value(),
                    "max_slots": 5_000_000u64,
                });
                let rows: Vec<(f64, f64, f64, bool)> = ctx.run_trials(
                    "e16",
                    &format!("{name}/n={n}/k={k}"),
                    params,
                    160_000 + n + k,
                    trials,
                    |seed| {
                        let config = SimConfig::new(n, CdModel::Strong)
                            .with_seed(seed)
                            .with_max_slots(5_000_000);
                        let r = run_k_selection(&config, &adv, k, eps);
                        let gaps = r.gaps();
                        let first = gaps.first().copied().unwrap_or(0) as f64;
                        let rest = if gaps.len() > 1 {
                            gaps[1..].iter().map(|&g| g as f64).sum::<f64>()
                                / (gaps.len() - 1) as f64
                        } else {
                            0.0
                        };
                        (first, rest, r.slots as f64, r.completed)
                    },
                );
                let med = |f: &dyn Fn(&(f64, f64, f64, bool)) -> f64| {
                    let mut v: Vec<f64> = rows.iter().map(f).collect();
                    v.sort_by(f64::total_cmp);
                    v[v.len() / 2]
                };
                let all_completed = rows.iter().all(|r| r.3);
                table.push_row([
                    n.to_string(),
                    k.to_string(),
                    fmt(med(&|r| r.0)),
                    fmt(med(&|r| r.1)),
                    fmt(med(&|r| r.2)),
                    format!("{}/{}", rows.iter().filter(|r| r.3).count(), trials),
                ]);
                assert!(all_completed, "k-selection must complete (n={n}, k={k}, {name})");
            }
        }
        result.add_table(&format!("k-selection ({name})"), table);
    }
    result.note(
        "the first leader pays the O(log n) estimate climb; each additional leader costs a \
         small constant number of slots (the estimate is already in the regular band and \
         log2(n−i) barely moves), under jamming as well — amortized k-selection is nearly \
         free, supporting the paper's §4 building-block claim"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
