//! E3 — LESK runtime vs `T` (the `max{T, ·}` transition of Theorem 2.6).
//!
//! Fixed `n = 1024`, `ε = 1/2`; sweep the adversary window `T`. For small
//! `T` the `log n/(ε³ log(1/ε))` term dominates and the runtime is flat;
//! once `T` crosses it the runtime must grow like `Θ(T)` — the adversary
//! can black out almost-`T`-long stretches. We drive it with the burst
//! jammer (`on = T`, `off = T`) and the periodic-front jammer.

use crate::common::{median, ExpContext, ExperimentResult};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{fmt, linear_fit, Figure, Series, Table};
use jle_protocols::{math, LeskProtocol};
use jle_radio::CdModel;

/// Run E3.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e3",
        "LESK runtime vs adversary window T",
        "Theorem 2.6: the max{T, log n/(eps^3 log 1/eps)} crossover",
    );
    let n = 1024u64;
    let eps = 0.5;
    let t_grid: Vec<u64> = if quick {
        vec![16, 1 << 10, 1 << 14]
    } else {
        vec![16, 64, 256, 1 << 10, 1 << 12, 1 << 14, 1 << 16]
    };
    let trials = if quick { 10 } else { 60 };

    let mut table = Table::new([
        "T",
        "median slots (burst)",
        "median slots (periodic-front)",
        "theory shape",
        "burst/theory",
    ]);
    let mut big_t_pts = Vec::new();
    let mut s_burst = Series::new("burst jammer");
    let mut s_shape = Series::new("theory shape max{T, log-term}");
    for (idx, &t) in t_grid.iter().enumerate() {
        let burst =
            AdversarySpec::new(Rate::from_f64(eps), t, JamStrategyKind::Burst { on: t, off: t });
        let periodic = AdversarySpec::new(Rate::from_f64(eps), t, JamStrategyKind::PeriodicFront);
        let proto = serde_json::json!({"proto": "lesk", "eps": eps});
        let (bs, b_to) = ctx.election_slots(
            "e3",
            &format!("burst/T={t}"),
            proto.clone(),
            n,
            CdModel::Strong,
            &burst,
            trials,
            31_000 + idx as u64,
            200_000_000,
            || LeskProtocol::new(eps),
        );
        let (ps, p_to) = ctx.election_slots(
            "e3",
            &format!("periodic/T={t}"),
            proto,
            n,
            CdModel::Strong,
            &periodic,
            trials,
            32_000 + idx as u64,
            200_000_000,
            || LeskProtocol::new(eps),
        );
        assert_eq!(b_to + p_to, 0, "no timeouts expected in E3 at T={t}");
        let shape = math::lesk_runtime_shape(n, eps, t);
        let bmed = median(&bs);
        s_burst.push(t as f64, bmed);
        s_shape.push(t as f64, shape);
        if t >= 1 << 12 {
            big_t_pts.push((t as f64, bmed));
        }
        table.push_row([t.to_string(), fmt(bmed), fmt(median(&ps)), fmt(shape), fmt(bmed / shape)]);
    }
    result.add_table("runtime vs T", table);
    result.add_figure(
        Figure::new(
            "LESK election time vs adversary window T (n = 1024, eps = 1/2)",
            "T (log2 axis)",
            "median slots (log2 axis)",
        )
        .log_x()
        .log_y()
        .with_series(s_burst)
        .with_series(s_shape),
    );

    if big_t_pts.len() >= 2 {
        if let Some(fit) = linear_fit(&big_t_pts) {
            result.note(format!(
                "large-T regime: slots ≈ {} + {}·T (R² = {:.4}) — linear in T as \
                 max{{T, ·}} requires",
                fmt(fit.intercept),
                fmt(fit.slope),
                fit.r_squared
            ));
        }
    }
    result.note(
        "small-T medians are flat (the log-term dominates); the crossover sits where \
         T ≈ log n/(eps^3 log(1/eps))"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
