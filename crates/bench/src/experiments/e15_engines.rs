//! E15 — engineering validation: the cohort engine agrees with the exact
//! engine and is orders of magnitude faster.
//!
//! The cohort engine's correctness rests on the lockstep invariant of
//! uniform protocols (DESIGN.md §4). Here we (a) compare the election-time
//! *distributions* of the two engines on identical configurations
//! (different RNG pathways, so the comparison is statistical), (b)
//! measure slots/second of both engines across `n`, and (c) cross-validate
//! the unified `SimCore` (DESIGN.md §10): every alternate path through the
//! core — `run_exact_faulty` with an empty fault plan, and arena-reusing
//! `run_*_in` — must reproduce the plain shims *bit for bit*.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_analysis::{fmt, Summary, Table};
use jle_engine::{
    run_cohort, run_cohort_in, run_exact, run_exact_faulty, run_exact_in, FaultPlan, PerStation,
    SimArena, SimConfig,
};
use jle_protocols::LeskProtocol;
use jle_radio::CdModel;
use serde::Serialize;
use std::time::Instant;

/// Run E15.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e15",
        "cohort vs exact engine: agreement and throughput",
        "DESIGN.md §4 (uniform-protocol lockstep invariant)",
    );
    let eps = 0.5;
    let trials = if quick { 30 } else { 300 };

    // (a) Agreement.
    let mut agree = Table::new(["n", "cohort median / mean", "exact median / mean", "mean ratio"]);
    let ns: Vec<u64> = if quick { vec![16] } else { vec![4, 16, 64, 256] };
    for (i, &n) in ns.iter().enumerate() {
        let adv = saturating(eps, 16);
        let params = serde_json::json!({
            "n": n,
            "eps": eps,
            "adv": adv.to_json_value(),
            "max_slots": 10_000_000u64,
        });
        let mut cohort_params = params.clone();
        if let serde::Value::Map(m) = &mut cohort_params {
            m.push(("kind".to_string(), serde::Value::Str("engine_cohort".into())));
        }
        let cohort: Vec<f64> = ctx.run_trials(
            "e15",
            &format!("cohort/n={n}"),
            cohort_params,
            150_000 + i as u64,
            trials,
            |seed| {
                let config =
                    SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(10_000_000);
                run_cohort(&config, &adv, || LeskProtocol::new(eps)).slots as f64
            },
        );
        let mut exact_params = params;
        if let serde::Value::Map(m) = &mut exact_params {
            m.push(("kind".to_string(), serde::Value::Str("engine_exact".into())));
        }
        let exact: Vec<f64> = ctx.run_trials(
            "e15",
            &format!("exact/n={n}"),
            exact_params,
            150_000 + i as u64,
            trials,
            |seed| {
                let config = SimConfig::new(n, CdModel::Strong)
                    .with_seed(seed ^ 0xABCD)
                    .with_max_slots(10_000_000);
                run_exact(&config, &adv, |_| Box::new(PerStation::new(LeskProtocol::new(eps))))
                    .slots as f64
            },
        );
        let (sc, se) = (Summary::of(&cohort).unwrap(), Summary::of(&exact).unwrap());
        agree.push_row([
            n.to_string(),
            format!("{} / {}", fmt(sc.median), fmt(sc.mean)),
            format!("{} / {}", fmt(se.median), fmt(se.mean)),
            fmt(sc.mean / se.mean),
        ]);
    }
    result.add_table("election-time agreement (saturating jammer)", agree);

    // (b) Throughput: fixed slot budget on a never-resolving workload.
    struct AlwaysCollide;
    impl jle_engine::UniformProtocol for AlwaysCollide {
        fn tx_prob(&mut self, _: u64) -> f64 {
            1.0
        }
        fn on_state(&mut self, _: u64, _: jle_radio::ChannelState) {}
    }
    let mut thr = Table::new(["n", "engine", "slots", "wall time (ms)", "slots/sec"]);
    let budget: u64 = if quick { 20_000 } else { 200_000 };
    let thr_ns: Vec<u64> = if quick { vec![1 << 10] } else { vec![1 << 10, 1 << 16, 1 << 20] };
    for &n in &thr_ns {
        let adv = saturating(eps, 64);
        let config = SimConfig::new(n, CdModel::Strong).with_seed(1).with_max_slots(budget);
        let start = Instant::now();
        let r = run_cohort(&config, &adv, || AlwaysCollide);
        let dt = start.elapsed().as_secs_f64();
        thr.push_row([
            n.to_string(),
            "cohort".to_string(),
            r.slots.to_string(),
            fmt(dt * 1e3),
            fmt(r.slots as f64 / dt),
        ]);
    }
    // Exact engine only at moderate n (O(n) per slot).
    let exact_ns: Vec<u64> = if quick { vec![1 << 8] } else { vec![1 << 8, 1 << 12] };
    let exact_budget = if quick { 2_000 } else { 10_000 };
    for &n in &exact_ns {
        let adv = saturating(eps, 64);
        let config = SimConfig::new(n, CdModel::Strong).with_seed(1).with_max_slots(exact_budget);
        let start = Instant::now();
        let r = run_exact(&config, &adv, |_| Box::new(PerStation::new(AlwaysCollide)));
        let dt = start.elapsed().as_secs_f64();
        thr.push_row([
            n.to_string(),
            "exact".to_string(),
            r.slots.to_string(),
            fmt(dt * 1e3),
            fmt(r.slots as f64 / dt),
        ]);
    }
    result.add_table("throughput", thr);

    // (c) Unified-core identity: alternate paths through `SimCore` are
    // bit-identical to the plain shims. `RunReport` carries floats and
    // vectors, so "identical" is checked on the serialized report.
    let mut ident = Table::new(["path", "baseline", "seeds", "bit-identical"]);
    let ident_seeds: std::ops::Range<u64> = if quick { 9000..9010 } else { 9000..9100 };
    let ident_n = 64u64;
    let adv = saturating(eps, 16);
    let json = |r: &jle_engine::RunReport| serde_json::to_string(r).expect("RunReport serializes");
    let mut faulty_ok = 0u64;
    let mut arena_cohort_ok = 0u64;
    let mut arena_exact_ok = 0u64;
    let empty_plan = FaultPlan::empty();
    let mut arena = SimArena::new();
    let total = ident_seeds.clone().count() as u64;
    for seed in ident_seeds {
        let config =
            SimConfig::new(ident_n, CdModel::Strong).with_seed(seed).with_max_slots(1_000_000);
        let exact = run_exact(&config, &adv, |_| Box::new(PerStation::new(LeskProtocol::new(eps))));
        let faulty = run_exact_faulty(&config, &adv, &empty_plan, move |_| {
            Box::new(PerStation::new(LeskProtocol::new(eps)))
        });
        if json(&exact) == json(&faulty) {
            faulty_ok += 1;
        }
        let exact_arena = run_exact_in(
            &config,
            &adv,
            |_| Box::new(PerStation::new(LeskProtocol::new(eps))),
            &mut arena,
        );
        if json(&exact) == json(&exact_arena) {
            arena_exact_ok += 1;
        }
        let cohort = run_cohort(&config, &adv, || LeskProtocol::new(eps));
        let cohort_arena = run_cohort_in(&config, &adv, || LeskProtocol::new(eps), &mut arena);
        if json(&cohort) == json(&cohort_arena) {
            arena_cohort_ok += 1;
        }
    }
    for (path, baseline, ok) in [
        ("run_exact_faulty (empty plan)", "run_exact", faulty_ok),
        ("run_exact_in (shared arena)", "run_exact", arena_exact_ok),
        ("run_cohort_in (shared arena)", "run_cohort", arena_cohort_ok),
    ] {
        ident.push_row([
            path.to_string(),
            baseline.to_string(),
            total.to_string(),
            format!("{ok}/{total}"),
        ]);
        assert_eq!(ok, total, "{path} diverged from {baseline}");
    }
    result.add_table("unified-core identity (serialized-report equality)", ident);

    result.note(
        "the two engines' election-time distributions agree to within Monte-Carlo noise, and \
         the cohort engine's per-slot cost is independent of n — it sustains the same \
         slots/sec at n = 2^20 as at 2^10, where the exact engine scales as O(n) per slot"
            .to_string(),
    );
    result.note(
        "every alternate path through the unified SimCore (empty-plan fault backend, \
         arena-reusing runs) reproduced the plain shims bit for bit on every seed checked"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 3);
        assert!(!r.notes.is_empty());
    }
}
