//! E26 — multi-hop cluster elections: topology × jamming sweep.
//!
//! The paper's model is a single shared channel. E26 runs the same
//! election machinery over interference *graphs*
//! ([`jle_radio::Topology`]): each node perceives its own closed
//! neighborhood's channel, clusters elect leaders concurrently with
//! [`ClusterElection`] (LESK per cluster), and an inter-cluster
//! notification/merge layer floods claimed-leader ids until the whole
//! network agrees on one network-wide leader — the minimum claimant.
//!
//! Two scenario families from the topology layer:
//!
//! * **dense-linear** (`dense_linear(k, m)`): a chain of `k` clique
//!   clusters of `m` stations bridged by gateway edges — concurrent
//!   elections with pairwise gateway interference and a `k`-hop flood
//!   diameter.
//! * **core-tail** (`core_tail(c, t)`): a `c`-clique cluster with a
//!   `t`-node path hanging off it, each tail node a singleton cluster —
//!   a dense election next to a sparse flooding spine.
//!
//! Claims measured: (1) *convergence* — every arm (topology × CD model ×
//! jamming) ends with all clusters resolved and every station agreeing
//! on the same network leader, who is the only station terminating with
//! `Status::Leader`; (2) *jamming pricing* — convergence slots grow as ε
//! shrinks, mirroring the single-channel Theorem 2.6 shape; (3)
//! *interference accounting* — cross-cluster interference events (an
//! unjammed local collision with at most one own-cluster transmitter)
//! track gateway count, quantifying what concurrent neighbors cost.
//!
//! The topology descriptor string is part of every arm's parameter tree,
//! so the orchestrator's content-addressed cache can never serve a
//! result across topologies.

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Figure, Series, Table};
use jle_engine::{catch_trial, run_multihop, RunReport, SimConfig, StopRule, TrialOutcome};
use jle_protocols::ClusterElection;
use jle_radio::{CdModel, Topology};
use serde::{Serialize, Value};

const T_WINDOW: u64 = 32;
/// Spread-phase quiet horizon: must exceed the announce flood time
/// across the widest scenario (the full dense-linear chain), see
/// `ClusterElection::with_quiet_target`.
const QUIET: u64 = 1_024;

/// One scenario: a named topology with its cluster assignment.
struct Scenario {
    name: &'static str,
    topo: Topology,
    clusters: Vec<u32>,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let dense = if quick { Topology::dense_linear(3, 4) } else { Topology::dense_linear(8, 6) };
    let core = if quick { Topology::core_tail(4, 3) } else { Topology::core_tail(8, 8) };
    vec![
        Scenario { name: "dense-linear", topo: dense.0, clusters: dense.1 },
        Scenario { name: "core-tail", topo: core.0, clusters: core.1 },
    ]
}

/// Canonical parameter tree of one arm. The topology *descriptor* is the
/// load-bearing entry: it salts the orchestrator fingerprint, so cached
/// sweeps can never alias across interference graphs.
fn arm_params(scenario: &Scenario, cd: CdModel, adv: &AdversarySpec, horizon: u64) -> Value {
    serde_json::json!({
        "kind": "cluster_election",
        "topology": scenario.topo.descriptor(),
        "n": scenario.clusters.len(),
        "clusters": scenario.clusters.iter().copied().max().map_or(0, |m| m + 1),
        "cd": format!("{cd:?}"),
        "adv": adv.to_json_value(),
        "horizon": horizon,
        "proto": { "proto": "cluster-election/lesk", "eps": 0.4, "quiet": QUIET },
    })
}

/// Measured statistics of one arm.
struct ArmStats {
    /// Fraction of runs ending with every cluster resolved, network-wide
    /// agreement, and exactly the network leader terminating as Leader.
    converged: f64,
    med_converged_at: f64,
    med_last_cluster: f64,
    mean_cross_cluster: f64,
    panics: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_arm(
    ctx: &ExpContext,
    scenario: &Scenario,
    cd: CdModel,
    adv: &AdversarySpec,
    eps: f64,
    horizon: u64,
    trials: u64,
    base_seed: u64,
    point: &str,
) -> ArmStats {
    let params = arm_params(scenario, cd, adv, horizon);
    let outcomes: Vec<TrialOutcome<RunReport>> =
        ctx.run_trials("e26", point, params, base_seed, trials, |seed| {
            catch_trial(|| {
                let config = SimConfig::new(scenario.clusters.len() as u64, cd)
                    .with_seed(seed)
                    .with_max_slots(horizon)
                    .with_stop(StopRule::AllTerminated);
                run_multihop(&config, adv, &scenario.topo, Some(&scenario.clusters), |i| {
                    Box::new(
                        ClusterElection::for_assignment(i, &scenario.clusters, eps)
                            .with_quiet_target(QUIET),
                    )
                })
            })
        });
    let panics = outcomes.iter().filter(|o| o.is_panicked()).count() as u64;
    let reports: Vec<&RunReport> = outcomes.iter().filter_map(|o| o.as_ok()).collect();
    let done = reports.len().max(1) as f64;
    let is_converged = |r: &RunReport| {
        r.multihop.as_ref().is_some_and(|mh| {
            mh.all_clusters_resolved()
                && mh.converged_at.is_some()
                && mh.network_leader.is_some()
                && r.leaders == mh.network_leader.into_iter().collect::<Vec<_>>()
        })
    };
    let collect = |f: &dyn Fn(&RunReport) -> Option<u64>| {
        reports.iter().filter_map(|r| f(r)).map(|v| v as f64).collect::<Vec<f64>>()
    };
    let conv = collect(&|r| r.multihop.as_ref().and_then(|m| m.converged_at));
    let last = collect(&|r| r.multihop.as_ref().and_then(|m| m.last_cluster_resolution()));
    ArmStats {
        converged: reports.iter().filter(|r| is_converged(r)).count() as f64 / done,
        med_converged_at: if conv.is_empty() { f64::NAN } else { median(&conv) },
        med_last_cluster: if last.is_empty() { f64::NAN } else { median(&last) },
        mean_cross_cluster: reports
            .iter()
            .map(|r| r.multihop.as_ref().map_or(0, |m| m.cross_cluster_interference) as f64)
            .sum::<f64>()
            / done,
        panics,
    }
}

/// Run E26.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e26",
        "multi-hop cluster elections: topology x jamming sweep",
        "beyond the model (single shared channel generalized to interference graphs)",
    );
    let trials = if quick { 8 } else { 40 };
    let horizon: u64 = if quick { 100_000 } else { 400_000 };
    let eps = 0.4;

    // Adversary sweep: none, and saturating jammers at two ε levels. The
    // jam flag is global (every neighborhood is hit at once), the
    // worst case for concurrent elections.
    let advs: Vec<(&str, AdversarySpec)> = if quick {
        vec![("none", AdversarySpec::passive()), ("sat eps=0.4", saturating(0.4, T_WINDOW))]
    } else {
        vec![
            ("none", AdversarySpec::passive()),
            ("sat eps=0.6", saturating(0.6, T_WINDOW)),
            ("sat eps=0.4", saturating(0.4, T_WINDOW)),
        ]
    };
    let cds = [CdModel::Strong, CdModel::Weak];

    let mut all_converged = true;
    let mut fig = Figure::new(
        "network convergence vs jamming",
        "adversary arm index (0 = none, rising jam rate)",
        "median slots to network-wide agreement",
    );
    for (si, scenario) in scenarios(quick).iter().enumerate() {
        let mut table = Table::new([
            "cd",
            "adversary",
            "converged",
            "median convergence slot",
            "median last cluster resolution",
            "cross-cluster events/run",
            "panicked trials",
        ]);
        for (ci, &cd) in cds.iter().enumerate() {
            let mut series = Series::new(format!("{} ({cd:?})", scenario.name));
            for (ai, (adv_name, adv)) in advs.iter().enumerate() {
                let a = run_arm(
                    ctx,
                    scenario,
                    cd,
                    adv,
                    eps,
                    horizon,
                    trials,
                    260_000 + (si * 100 + ci * 10 + ai) as u64 * 101,
                    &format!("{}/{cd:?}/{adv_name}", scenario.name),
                );
                all_converged &= a.converged == 1.0 && a.panics == 0;
                series.push(ai as f64, a.med_converged_at);
                table.push_row([
                    format!("{cd:?}"),
                    adv_name.to_string(),
                    format!("{:.2}", a.converged),
                    fmt(a.med_converged_at),
                    fmt(a.med_last_cluster),
                    format!("{:.0}", a.mean_cross_cluster),
                    format!("{}", a.panics),
                ]);
            }
            fig = fig.with_series(series);
        }
        result.add_table(
            &format!(
                "{} — {} (n={}, eps={eps}, quiet horizon {QUIET}, \
                 stop: all stations terminated)",
                scenario.name,
                scenario.topo.descriptor(),
                scenario.clusters.len(),
            ),
            table,
        );
    }
    result.add_figure(fig);
    result.note(format!(
        "single-network-leader convergence (every run: all clusters resolved, every \
         station agreeing on the minimum claimant, exactly one Leader status): {}",
        if all_converged { "HELD" } else { "VIOLATED" }
    ));
    result.note(
        "the topology descriptor is part of each arm's cache key, so cached sweeps \
         never alias across interference graphs"
            .to_string(),
    );
    result.note(
        "cross-cluster interference counts unjammed local collisions with at most one \
         own-cluster transmitter: the slots a cluster would have resolved sooner \
         without its neighbors"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.figures.len(), 1);
        assert!(
            r.notes.iter().any(|n| n.contains("HELD")),
            "multi-hop convergence must hold: {:?}",
            r.notes
        );
    }
}
