//! E18 — negative control: the commit-first rule is load-bearing.
//!
//! The model (Section 1.1) forces the adversary to decide on jamming
//! *before* seeing the stations' actions in the slot. This experiment
//! removes that rule: an "oracle" jammer sees the transmitter count and
//! jams exactly the would-be `Single`s. Result: with the very same
//! `(T, 1−ε)` budget under which LESK elects in `O(log n)` slots, the
//! oracle blocks elections essentially forever — no protocol could do
//! better, since the oracle only ever spends budget on actual `Single`s.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_adversary::Rate;
use jle_analysis::{fmt, Table};
use jle_engine::{run_cohort, run_cohort_against_oracle, SimConfig};
use jle_protocols::LeskProtocol;
use jle_radio::CdModel;
use serde::Serialize;

/// Run E18.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e18",
        "negative control: action-observing (oracle) jammer vs the fair model",
        "Section 1.1: 'it has to make a jamming decision before it knows the actions'",
    );
    let n = 256u64;
    let trials = if quick { 10 } else { 40 };
    let cap = 200_000u64;
    let eps_grid: Vec<f64> = if quick { vec![0.2] } else { vec![0.05, 0.1, 0.2, 0.3] };

    let mut table = Table::new([
        "eps",
        "fair jammer: success rate",
        "fair: median slots",
        "oracle jammer: success rate",
        "oracle: singles suppressed (median)",
    ]);
    for (i, &eps) in eps_grid.iter().enumerate() {
        let t = 32u64;
        let seed0 = 180_000 + i as u64 * 11;
        let fair: Vec<(bool, f64)> = ctx.run_trials(
            "e18",
            &format!("fair/eps={eps}"),
            serde_json::json!({
                "kind": "oracle_control_fair",
                "n": n,
                "eps": eps,
                "t": t,
                "adv": saturating(eps, t).to_json_value(),
                "max_slots": cap,
            }),
            seed0,
            trials,
            |seed| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(cap);
                let r = run_cohort(&config, &saturating(eps, t), || LeskProtocol::new(eps));
                (r.leader_elected(), r.slots as f64)
            },
        );
        let oracle: Vec<(bool, f64)> = ctx.run_trials(
            "e18",
            &format!("oracle/eps={eps}"),
            serde_json::json!({
                "kind": "oracle_control_oracle",
                "n": n,
                "eps": eps,
                "t": t,
                "max_slots": cap,
            }),
            seed0,
            trials,
            |seed| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(cap);
                let r = run_cohort_against_oracle(&config, Rate::from_f64(eps), t, || {
                    LeskProtocol::new(eps)
                });
                // Every jam of the oracle is a suppressed Single.
                (r.leader_elected(), r.counts.jammed as f64)
            },
        );
        let rate = |v: &[(bool, f64)]| v.iter().filter(|x| x.0).count() as f64 / v.len() as f64;
        let med = |v: &[(bool, f64)]| {
            let mut xs: Vec<f64> = v.iter().map(|x| x.1).collect();
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        };
        table.push_row([
            format!("{eps:.2}"),
            format!("{:.2}", rate(&fair)),
            fmt(med(&fair)),
            format!("{:.2}", rate(&oracle)),
            fmt(med(&oracle)),
        ]);
    }
    result.add_table(&format!("fair vs oracle (n={n}, cap {cap} slots)"), table);
    result.note(
        "with identical budgets the fair (commit-first) jammer cannot stop LESK, while the \
         action-observing oracle suppresses every affordable Single and blocks the election \
         for the entire cap — the model's commit-before-actions clause is exactly what makes \
         fast robust election possible"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
