//! E25 — open-world elections: churn, leader leases, and split brain.
//!
//! E24 relaxed the perfect-station assumption; E25 drops the closed-world
//! one. Stations *join* mid-run with fresh state, *leave*, and *rejoin*
//! with history lost ([`jle_engine::ChurnPlan`]), and the run never
//! terminates on its own — [`StopRule::Horizon`] makes the horizon the
//! measurement window. A one-shot election is useless here, so every
//! station runs [`LeaseProtocol`]: the winner keeps a lease alive with
//! periodic beacons, followers run missed-beacon loss detection, and on
//! lease loss the cohort re-enters election (each station's inner
//! election is a [`Supervisor`]-wrapped LESK, so E24's restart machinery
//! guards each attempt). A shared [`LeaderLedger`] plus
//! [`SplitBrainObserver`] measures what the protocol cannot see: slot
//! windows with two or more concurrent leadership believers, and how
//! long they take to resolve.
//!
//! Claims measured (not proven — the paper's theorems say nothing about
//! churn): (1) *convergence* — once churn stops, the cohort converges
//! back to exactly one live believer well before the horizon, and every
//! split-brain window resolves (the tables report the worst observed
//! resolution time as the measured bound); (2) *churn pricing* — re-
//! election count and split-brain exposure grow with churn rate and with
//! jamming strength; (3) *estimation drift* — joiners start from a fresh
//! estimate, so LESK's estimate error against the *live* station count
//! grows with churn even though the closed-world dynamics are unbiased.

use std::sync::{Arc, Mutex};

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Figure, Series, Table};
use jle_engine::{
    catch_trial, run_exact_churn, ChurnPlan, FaultPlan, FaultyStations, LeaderLedger, Outcome,
    PerStation, Protocol, RunReport, SimConfig, SimCore, SplitBrainObserver, StopRule,
    TelemetryObserver, TrialOutcome,
};
use jle_orchestrator::WorkSpec;
use jle_protocols::{
    LeaseConfig, LeaseLossCause, LeaseProtocol, LeskProtocol, ReElectionRecord, ReElectionSink,
};
use jle_radio::CdModel;
use jle_telemetry::AnomalyKind;
use serde::{Serialize, Value};

const N: u64 = 24;
const T_WINDOW: u64 = 32;
/// Inner-election watchdog (same sane default as E24).
const WATCHDOG: u64 = 16_384;
/// Salt decoupling churn-plan streams from the engine seed.
const PLAN_SALT: u64 = 0xC4C4;
/// Leader beacon period.
const BEACON: u64 = 8;
/// Consecutive jammed beacons tolerated before the leader steps down.
/// The saturating jammer's burst is `(1-eps)·T` slots, i.e. at most
/// three consecutive beacons at the swept `eps`, so honest leaders
/// survive jamming alone and step-downs signal real contention.
const MISS_TOL: u32 = 10;
/// Follower missed-beacon watchdog (initial; doubles per firing) and the
/// ledger's belief TTL.
const LEASE_TIMEOUT: u64 = 512;

fn lease_config() -> LeaseConfig {
    LeaseConfig::new(BEACON, MISS_TOL, LEASE_TIMEOUT)
}

/// Churn plan for one seed: joiners staggered into the first eighth of
/// the horizon, leaves in the first quarter, optionally rejoining one
/// eighth later — so all churn is over by `3/8 · horizon` and the tail
/// tests convergence. Without rejoins, departures are permanent (the
/// *exodus* mode): a departed leader leaves nobody mid-election, so the
/// follower silence watchdog is the only recovery path and every leader
/// departure forces a measurable re-election.
fn churn_of(seed: u64, prob: f64, horizon: u64, rejoin: bool) -> ChurnPlan {
    let plan = ChurnPlan::new(seed ^ PLAN_SALT)
        .with_staggered_joins(N, prob, horizon / 8)
        .with_random_leaves(N, prob, horizon / 4);
    if rejoin {
        plan.with_rejoins(horizon / 8)
    } else {
        plan
    }
}

/// Canonical parameter tree of one open-world arm. The churn *descriptor*
/// (per-seed plans are derived from it) is part of the cache key, so a
/// cached sweep can never mix plans.
fn arm_params(
    adv: &AdversarySpec,
    horizon: u64,
    churn_prob: f64,
    rejoin: bool,
    proto: Value,
) -> Value {
    serde_json::json!({
        "kind": "open_world_election",
        "n": N,
        "adv": adv.to_json_value(),
        "horizon": horizon,
        "churn": {
            "prob": churn_prob,
            "join_window": horizon / 8,
            "leave_window": horizon / 4,
            "rejoin_after": if rejoin { horizon / 8 } else { 0 },
            "salt": PLAN_SALT,
        },
        "proto": proto,
    })
}

/// Measured statistics of one lease arm.
struct LeaseArmStats {
    /// Fraction of runs ending with exactly one live believer.
    converged: f64,
    med_latency: f64,
    mean_reelections: f64,
    mean_split_windows: f64,
    mean_split_slots: f64,
    /// Worst observed split-brain window (slots) — the measured
    /// resolution bound.
    max_split: u64,
    panics: u64,
}

/// One line summarizing a trial's lease losses, for the flight-recorder
/// detail field.
fn summarize_losses(log: &[ReElectionRecord]) -> String {
    let count = |c: LeaseLossCause| log.iter().filter(|r| r.cause == c).count();
    format!(
        "{} lease loss(es): {} silence, {} beacon contention; first at slot {} (station {})",
        log.len(),
        count(LeaseLossCause::Silence),
        count(LeaseLossCause::BeaconContention),
        log[0].slot,
        log[0].station,
    )
}

/// Run one lease arm as a cacheable work unit: `trials` open-world runs
/// at churn probability `churn_prob`, each with its own ledger and
/// split-brain observer. Returns per-trial `(report, lease_losses)`.
#[allow(clippy::too_many_arguments)]
fn run_lease_arm(
    ctx: &ExpContext,
    point: &str,
    params: Value,
    trials: u64,
    base_seed: u64,
    horizon: u64,
    adv: &AdversarySpec,
    eps: f64,
    churn_prob: f64,
    rejoin: bool,
) -> LeaseArmStats {
    let recorder = ctx.flight_recorder().cloned();
    let metrics = recorder
        .as_ref()
        .map(|_| jle_engine::EngineMetrics::register(ctx.orchestrator().stats().registry()));
    let fingerprint = recorder.as_ref().map(|_| {
        ctx.orchestrator().fingerprint_hex::<(TrialOutcome<RunReport>, u64)>(&WorkSpec::new(
            "e25",
            point,
            params.clone(),
            base_seed,
        ))
    });
    let outcomes: Vec<(TrialOutcome<RunReport>, u64)> =
        ctx.run_trials("e25", point, params, base_seed, trials, |seed| {
            let ledger = LeaderLedger::new(LEASE_TIMEOUT);
            let losses: Arc<Mutex<Vec<ReElectionRecord>>> = Arc::new(Mutex::new(Vec::new()));
            let sink: ReElectionSink = {
                let log = Arc::clone(&losses);
                Arc::new(move |r: &ReElectionRecord| log.lock().expect("loss log").push(*r))
            };
            let factory = {
                let ledger = Arc::clone(&ledger);
                move |i: u64| -> Box<dyn Protocol> {
                    Box::new(
                        LeaseProtocol::over_supervised_lesk(
                            i,
                            eps,
                            WATCHDOG,
                            lease_config(),
                            Arc::clone(&ledger),
                        )
                        .with_reelection_sink(Arc::clone(&sink)),
                    )
                }
            };
            let out = catch_trial(|| {
                let config = SimConfig::new(N, CdModel::Strong)
                    .with_seed(seed)
                    .with_max_slots(horizon)
                    .with_stop(StopRule::Horizon);
                let plan = churn_of(seed, churn_prob, horizon, rejoin).overlay(&FaultPlan::empty());
                let mut split = SplitBrainObserver::new(Arc::clone(&ledger));
                let mut stations = FaultyStations::new(&config, &plan, factory);
                match &recorder {
                    None => SimCore::new(&config, adv).observe(&mut split).run(&mut stations),
                    Some(rec) => {
                        let mut obs = TelemetryObserver::new(&config)
                            .with_flight_recorder(Arc::clone(rec))
                            .with_context("experiment", "e25")
                            .with_context("point", point);
                        if let Some(m) = &metrics {
                            obs = obs.with_metrics(m.clone());
                        }
                        if let Some(fp) = &fingerprint {
                            obs = obs.with_fingerprint(fp.clone());
                        }
                        // The split observer deposits its stats in
                        // `finish`, before the telemetry observer's
                        // `after_run` classifies the outcome — so
                        // unresolved splits dump `split_brain` anomalies.
                        let report = SimCore::new(&config, adv)
                            .observe(&mut split)
                            .observe(&mut obs)
                            .run(&mut stations);
                        let log = losses.lock().expect("loss log");
                        if !log.is_empty() {
                            obs.dump_anomaly(AnomalyKind::LeaseLost, summarize_losses(&log));
                        }
                        report
                    }
                }
            });
            if let (Some(rec), Some(msg)) = (&recorder, out.panic_message()) {
                let _ = jle_engine::telemetry::dump_panic(rec, seed, fingerprint.as_deref(), msg);
            }
            let n_losses = losses.lock().expect("loss log").len() as u64;
            (out, n_losses)
        });
    let panics = outcomes.iter().filter(|(o, _)| o.is_panicked()).count() as u64;
    let reports: Vec<&RunReport> = outcomes.iter().filter_map(|(o, _)| o.as_ok()).collect();
    let done = reports.len().max(1) as f64;
    let latencies: Vec<f64> =
        reports.iter().filter_map(|r| r.resolved_at).map(|s| s as f64).collect();
    let mean =
        |f: &dyn Fn(&RunReport) -> u64| reports.iter().map(|r| f(r) as f64).sum::<f64>() / done;
    LeaseArmStats {
        converged: reports.iter().filter(|r| r.outcome() == Outcome::Elected).count() as f64 / done,
        med_latency: if latencies.is_empty() { f64::NAN } else { median(&latencies) },
        mean_reelections: mean(&|r| r.split_brain.reelections),
        mean_split_windows: mean(&|r| r.split_brain.windows),
        mean_split_slots: mean(&|r| r.split_brain.split_slots),
        max_split: reports.iter().map(|r| r.split_brain.longest_split).max().unwrap_or(0),
        panics,
    }
}

/// Run one estimation-drift arm: plain LESK to first clean `Single`
/// under churn, measuring the final estimate `u` against `log2` of the
/// stations actually live at resolution. Returns per-trial
/// `(report, u − log2(live))`.
#[allow(clippy::too_many_arguments)]
fn run_estimate_arm(
    ctx: &ExpContext,
    point: &str,
    params: Value,
    trials: u64,
    base_seed: u64,
    horizon: u64,
    adv: &AdversarySpec,
    eps: f64,
    churn_prob: f64,
) -> (f64, f64) {
    let outcomes: Vec<(TrialOutcome<RunReport>, f64)> =
        ctx.run_trials("e25", point, params, base_seed, trials, |seed| {
            let out = catch_trial(|| {
                let config = SimConfig::new(N, CdModel::Strong)
                    .with_seed(seed)
                    .with_max_slots(horizon)
                    .with_trace(true);
                let plan = churn_of(seed, churn_prob, horizon, true);
                let mut report = run_exact_churn(&config, adv, &plan, move |_| {
                    Box::new(PerStation::new(LeskProtocol::new(eps)))
                });
                let u_final = report.trace.as_ref().and_then(|t| t.estimates.last().copied());
                let at = report.resolved_at.unwrap_or(report.slots);
                let live = plan.live_at(at, N).max(1) as f64;
                // Strip the trace before the report enters the cache:
                // only the drift number is needed downstream.
                report.trace = None;
                let drift = u_final.map(|u| u - live.log2()).unwrap_or(f64::NAN);
                (report, drift)
            });
            match out {
                TrialOutcome::Ok((report, drift)) => (TrialOutcome::Ok(report), drift),
                TrialOutcome::Panicked(msg) => (TrialOutcome::Panicked(msg), f64::NAN),
            }
        });
    let drifts: Vec<f64> = outcomes
        .iter()
        .filter(|(o, d)| o.as_ok().is_some() && d.is_finite())
        .map(|(_, d)| *d)
        .collect();
    let abs: Vec<f64> = drifts.iter().map(|d| d.abs()).collect();
    if drifts.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (median(&drifts), median(&abs))
    }
}

/// Run E25.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e25",
        "open-world elections: churn, leader leases, and split brain",
        "outside the formal model (closed-world assumption relaxed)",
    );
    let trials = if quick { 10 } else { 50 };
    let horizon: u64 = if quick { 16_384 } else { 65_536 };
    let lease_proto = serde_json::json!({
        "proto": "lease/supervised-lesk",
        "beacon": BEACON,
        "miss_tol": MISS_TOL,
        "lease_timeout": LEASE_TIMEOUT,
        "watchdog": WATCHDOG,
    });

    // ── Table 1: churn-rate × churn-mode × jamming sweep ───────────────
    //
    // Two churn modes: *rejoin* (departed stations come back fresh — the
    // returning electors' Singles quietly hand leadership over, so
    // explicit re-elections are rare) and *exodus* (departures are
    // permanent — a departed leader leaves only settled followers behind,
    // so the silence watchdog is the sole recovery path and re-elections
    // are the measurement).
    let eps_sweep: Vec<f64> = if quick { vec![0.5] } else { vec![0.5, 0.25] };
    let modes: Vec<(&str, f64, bool)> = if quick {
        vec![("closed", 0.0, true), ("rejoin", 0.5, true), ("exodus", 0.5, false)]
    } else {
        vec![
            ("closed", 0.0, true),
            ("rejoin", 0.25, true),
            ("rejoin", 0.5, true),
            ("exodus", 0.25, false),
            ("exodus", 0.5, false),
        ]
    };
    let mut t1 = Table::new([
        "eps",
        "churn mode",
        "churn prob",
        "converged",
        "median latency",
        "re-elections/run",
        "split windows/run",
        "split slots/run",
        "max split (slots)",
        "panicked trials",
    ]);
    let mut fig = Figure::new(
        "split-brain exposure vs churn rate",
        "per-station churn probability",
        "mean split-brain slots per run",
    );
    let mut all_converged = true;
    let mut worst_split = 0u64;
    // (eps, mode, churn, mean re-elections) for the data-derived notes.
    let mut reelect_log: Vec<(f64, &str, f64, f64)> = Vec::new();
    for (ei, &eps) in eps_sweep.iter().enumerate() {
        let adv = saturating(eps, T_WINDOW);
        let mut series = Series::new(format!("eps={eps} (rejoin)"));
        for (ci, &(mode, churn, rejoin)) in modes.iter().enumerate() {
            let base_seed = 250_000 + (ei * 10 + ci) as u64 * 101;
            let a = run_lease_arm(
                ctx,
                &format!("lease/eps={eps}/{mode}/churn={churn}"),
                arm_params(&adv, horizon, churn, rejoin, lease_proto.clone()),
                trials,
                base_seed,
                horizon,
                &adv,
                eps,
                churn,
                rejoin,
            );
            all_converged &= a.converged >= 0.9;
            worst_split = worst_split.max(a.max_split);
            reelect_log.push((eps, mode, churn, a.mean_reelections));
            if rejoin {
                series.push(churn, a.mean_split_slots);
            }
            t1.push_row([
                format!("{eps}"),
                mode.to_string(),
                format!("{churn:.2}"),
                format!("{:.2}", a.converged),
                fmt(a.med_latency),
                format!("{:.2}", a.mean_reelections),
                format!("{:.2}", a.mean_split_windows),
                format!("{:.1}", a.mean_split_slots),
                format!("{}", a.max_split),
                format!("{}", a.panics),
            ]);
        }
        fig = fig.with_series(series);
    }
    result.add_table(
        &format!(
            "leases under churn (n={N}, beacon {BEACON}, miss tolerance {MISS_TOL}, \
             lease timeout {LEASE_TIMEOUT}, horizon {horizon}, churn quiet after \
             3/8 of the horizon)"
        ),
        t1,
    );
    result.add_figure(fig);
    result.note(format!(
        "convergence (>= 90% of runs end with exactly one live believer): {}",
        if all_converged { "HELD" } else { "VIOLATED" }
    ));
    result.note(format!(
        "worst observed split-brain window: {worst_split} slot(s) — every split resolved \
         within {} lease timeout(s); abdication-on-rival-beacon resolves phase-distinct \
         splits in at most one beacon period once jamming relents",
        (worst_split / LEASE_TIMEOUT) + 1,
    ));
    // The exodus-vs-rejoin contrast is only attributable to *churn* at an
    // eps where the closed-world baseline barely re-elects (the lease is
    // provisioned for the jamming rate); where even the closed world
    // thrashes, the jammer — not the churn mode — owns the count.
    let closed_at = |eps: f64| {
        reelect_log
            .iter()
            .find(|(e, m, _, _)| *e == eps && *m == "closed")
            .map(|&(_, _, _, r)| r)
            .unwrap_or(0.0)
    };
    let peak_at = |eps: f64, mode: &str| {
        reelect_log
            .iter()
            .filter(|(e, m, _, _)| *e == eps && *m == mode)
            .map(|&(_, _, _, r)| r)
            .fold(0.0f64, f64::max)
    };
    for &eps in &eps_sweep {
        let (closed, rejoin, exodus) =
            (closed_at(eps), peak_at(eps, "rejoin"), peak_at(eps, "exodus"));
        if closed < 1.0 {
            result.note(format!(
                "eps={eps}: the lease is provisioned for the jamming rate (closed-world \
                 baseline {closed:.2} re-elections/run), so the re-election count is governed \
                 by *how* stations leave — permanent departures force the silence watchdog \
                 ({exodus:.1}/run) roughly {:.1}x more often than departures that rejoin \
                 ({rejoin:.1}/run), whose returning electors' Singles hand leadership over \
                 without the watchdog firing",
                if rejoin > 0.0 { exodus / rejoin } else { f64::NAN },
            ));
        } else {
            result.note(format!(
                "eps={eps}: lease constants are a function of the jamming rate — the \
                 saturating jammer erases beacons faster than miss tolerance {MISS_TOL} \
                 forgives, so even the closed world thrashes ({closed:.0} re-elections/run, \
                 ~one per step-down + election cycle) and churn mode no longer matters \
                 (rejoin {rejoin:.0}, exodus {exodus:.0}); availability degrades to repeated \
                 re-election while safety holds (every run still converges to one believer)"
            ));
        }
    }

    // ── Table 2: estimation drift as n drifts ──────────────────────────
    let adv = saturating(0.5, T_WINDOW);
    let lesk_proto = serde_json::json!({"proto": "lesk", "eps": 0.5});
    let mut t2 = Table::new(["churn prob", "median drift (u - log2 live)", "median |drift|"]);
    let drift_probs: Vec<f64> = if quick { vec![0.0, 0.5] } else { vec![0.0, 0.25, 0.5] };
    for (ci, &churn) in drift_probs.iter().enumerate() {
        let (drift, abs) = run_estimate_arm(
            ctx,
            &format!("estimate/churn={churn}"),
            arm_params(&adv, horizon, churn, true, lesk_proto.clone()),
            trials,
            251_000 + ci as u64 * 101,
            horizon,
            &adv,
            0.5,
            churn,
        );
        t2.push_row([format!("{churn:.2}"), format!("{drift:+.2}"), format!("{abs:.2}")]);
    }
    result.add_table(
        "LESK estimate vs live station count under churn (eps=0.5): joiners restart from \
         a fresh estimate, so error against the drifting ground truth grows with churn",
        t2,
    );
    result.note(
        "open-world runs use StopRule::Horizon: reaching the horizon is the expected \
         outcome, and Outcome classification is delegated to the leader ledger \
         (exactly one live believer = Elected, two or more = SplitBrain)"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.figures.len(), 1);
        assert!(
            r.notes.iter().any(|n| n.contains("HELD")),
            "open-world convergence must hold: {:?}",
            r.notes
        );
    }

    /// The convergence property, directly: a single churned run ends
    /// with exactly one live believer, and the report says so.
    #[test]
    fn churned_run_converges_to_one_believer() {
        let horizon = 16_384;
        let eps = 0.5;
        let adv = saturating(eps, T_WINDOW);
        let config = SimConfig::new(N, CdModel::Strong)
            .with_seed(0xE25)
            .with_max_slots(horizon)
            .with_stop(StopRule::Horizon);
        let plan = churn_of(0xE25, 0.5, horizon, true).overlay(&FaultPlan::empty());
        let ledger = LeaderLedger::new(LEASE_TIMEOUT);
        let factory = {
            let ledger = Arc::clone(&ledger);
            move |i: u64| -> Box<dyn Protocol> {
                Box::new(LeaseProtocol::over_supervised_lesk(
                    i,
                    eps,
                    WATCHDOG,
                    lease_config(),
                    Arc::clone(&ledger),
                ))
            }
        };
        let mut split = SplitBrainObserver::new(Arc::clone(&ledger));
        let mut stations = FaultyStations::new(&config, &plan, factory);
        let report = SimCore::new(&config, &adv).observe(&mut split).run(&mut stations);
        assert_eq!(report.slots, horizon, "horizon runs go the distance");
        assert!(!report.timed_out && !report.cap_hit, "the horizon is not a timeout");
        assert!(report.split_brain.tracked);
        assert_eq!(
            report.split_brain.believers.len(),
            1,
            "exactly one live believer once churn stops: {:?}",
            report.split_brain
        );
        assert_eq!(report.outcome(), Outcome::Elected);
    }
}
