//! The reproduction experiments, one module per paper claim.
//!
//! See `DESIGN.md` §5 for the full index. Every experiment is a pure
//! function `run(quick: bool) -> ExperimentResult`; `quick = true` trims
//! sweeps and trial counts for smoke tests, `quick = false` is the full
//! reproduction recorded in `EXPERIMENTS.md`.

pub mod e01_runtime_vs_n;
pub mod e02_runtime_vs_eps;
pub mod e03_runtime_vs_t;
pub mod e04_lesu_vs_n;
pub mod e05_lesu_vs_t;
pub mod e06_weak_cd;
pub mod e07_baselines;
pub mod e08_lower_bound;
pub mod e09_whp;
pub mod e10_trajectory;
pub mod e11_taxonomy;
pub mod e12_estimation;
pub mod e13_energy;
pub mod e14_adversaries;
pub mod e15_engines;
pub mod e16_k_selection;
pub mod e17_size_approx;
pub mod e18_oracle;
pub mod e19_fair_use;
pub mod e20_increment;
pub mod e21_no_cd;
pub mod e22_noise;
pub mod e23_duty_cycle;
pub mod e24_faults;

use crate::common::ExperimentResult;

/// All experiment ids, in order.
pub const ALL_IDS: [&str; 24] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24",
];

/// Run one experiment by id. Returns `None` for an unknown id.
pub fn run_by_id(id: &str, quick: bool) -> Option<ExperimentResult> {
    Some(match id {
        "e1" => e01_runtime_vs_n::run(quick),
        "e2" => e02_runtime_vs_eps::run(quick),
        "e3" => e03_runtime_vs_t::run(quick),
        "e4" => e04_lesu_vs_n::run(quick),
        "e5" => e05_lesu_vs_t::run(quick),
        "e6" => e06_weak_cd::run(quick),
        "e7" => e07_baselines::run(quick),
        "e8" => e08_lower_bound::run(quick),
        "e9" => e09_whp::run(quick),
        "e10" => e10_trajectory::run(quick),
        "e11" => e11_taxonomy::run(quick),
        "e12" => e12_estimation::run(quick),
        "e13" => e13_energy::run(quick),
        "e14" => e14_adversaries::run(quick),
        "e15" => e15_engines::run(quick),
        "e16" => e16_k_selection::run(quick),
        "e17" => e17_size_approx::run(quick),
        "e18" => e18_oracle::run(quick),
        "e19" => e19_fair_use::run(quick),
        "e20" => e20_increment::run(quick),
        "e21" => e21_no_cd::run(quick),
        "e22" => e22_noise::run(quick),
        "e23" => e23_duty_cycle::run(quick),
        "e24" => e24_faults::run(quick),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn unknown_id_is_none() {
        assert!(super::run_by_id("e99", true).is_none());
    }
}
