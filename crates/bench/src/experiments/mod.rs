//! The reproduction experiments, one module per paper claim.
//!
//! See `DESIGN.md` §5 for the full index. Every experiment is a pure
//! function `run(ctx: &ExpContext) -> ExperimentResult`; `ctx.quick`
//! trims sweeps and trial counts for smoke tests, and all Monte-Carlo
//! work is submitted through `ctx` so it is cached, resumable, and
//! reported by the orchestrator (`DESIGN.md` §9). The full reproduction
//! is recorded in `EXPERIMENTS.md`.

pub mod e01_runtime_vs_n;
pub mod e02_runtime_vs_eps;
pub mod e03_runtime_vs_t;
pub mod e04_lesu_vs_n;
pub mod e05_lesu_vs_t;
pub mod e06_weak_cd;
pub mod e07_baselines;
pub mod e08_lower_bound;
pub mod e09_whp;
pub mod e10_trajectory;
pub mod e11_taxonomy;
pub mod e12_estimation;
pub mod e13_energy;
pub mod e14_adversaries;
pub mod e15_engines;
pub mod e16_k_selection;
pub mod e17_size_approx;
pub mod e18_oracle;
pub mod e19_fair_use;
pub mod e20_increment;
pub mod e21_no_cd;
pub mod e22_noise;
pub mod e23_duty_cycle;
pub mod e24_faults;
pub mod e25_churn;
pub mod e26_topology;

use crate::common::{ExpContext, ExperimentResult};

/// All experiment ids, in order.
pub const ALL_IDS: [&str; 26] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25", "e26",
];

/// Run one experiment by id. Returns `None` for an unknown id.
pub fn run_by_id(id: &str, ctx: &ExpContext) -> Option<ExperimentResult> {
    Some(match id {
        "e1" => e01_runtime_vs_n::run(ctx),
        "e2" => e02_runtime_vs_eps::run(ctx),
        "e3" => e03_runtime_vs_t::run(ctx),
        "e4" => e04_lesu_vs_n::run(ctx),
        "e5" => e05_lesu_vs_t::run(ctx),
        "e6" => e06_weak_cd::run(ctx),
        "e7" => e07_baselines::run(ctx),
        "e8" => e08_lower_bound::run(ctx),
        "e9" => e09_whp::run(ctx),
        "e10" => e10_trajectory::run(ctx),
        "e11" => e11_taxonomy::run(ctx),
        "e12" => e12_estimation::run(ctx),
        "e13" => e13_energy::run(ctx),
        "e14" => e14_adversaries::run(ctx),
        "e15" => e15_engines::run(ctx),
        "e16" => e16_k_selection::run(ctx),
        "e17" => e17_size_approx::run(ctx),
        "e18" => e18_oracle::run(ctx),
        "e19" => e19_fair_use::run(ctx),
        "e20" => e20_increment::run(ctx),
        "e21" => e21_no_cd::run(ctx),
        "e22" => e22_noise::run(ctx),
        "e23" => e23_duty_cycle::run(ctx),
        "e24" => e24_faults::run(ctx),
        "e25" => e25_churn::run(ctx),
        "e26" => e26_topology::run(ctx),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn unknown_id_is_none() {
        let ctx = crate::common::ExpContext::ephemeral(true);
        assert!(super::run_by_id("e99", &ctx).is_none());
    }
}
