//! E20 — ablation of the paper's `a = 8/ε` design choice.
//!
//! Algorithm 1 increments the estimate by `ε/8` per `Collision`. The
//! stability argument needs only drift: above the band, Nulls (−1,
//! fraction ≥ ε) must dominate jam-collisions (+ε/d, fraction ≤ 1−ε),
//! i.e. `d > 1−ε` — so why 8? The ablation sweeps the divisor `d` and
//! shows the trade-off the constant buys:
//!
//! * small `d` (large steps): the cold-start climb is fast but the walk
//!   overshoots and oscillates around the band — more correcting slots;
//! * large `d` (tiny steps): clean tracking, but the climb and every
//!   recovery from an overshoot cost `d/ε` slots per unit of `u`.
//!
//! Measured at both cold and warm start, with and without jamming.

use crate::common::{median, saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Table};
use jle_protocols::LeskProtocol;
use jle_radio::CdModel;

/// Run E20.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e20",
        "ablation: the epsilon/8 increment (a = 8/eps)",
        "Algorithm 1 design choice; stability needs only divisor > 1-eps",
    );
    let n = 1024u64;
    let eps = 0.5;
    let log2n = (n as f64).log2();
    let divisors: Vec<f64> =
        if quick { vec![2.0, 8.0] } else { vec![0.6, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] };
    let trials = if quick { 10 } else { 60 };

    for (regime, warm) in [("cold start", false), ("warm start", true)] {
        let mut table = Table::new([
            "divisor d (increment eps/d)",
            "median slots (no jam)",
            "median slots (saturating)",
            "timeouts",
        ]);
        for (i, &d) in divisors.iter().enumerate() {
            let mk = move || {
                let p = LeskProtocol::with_increment_divisor(eps, d);
                if warm {
                    p.starting_at(log2n)
                } else {
                    p
                }
            };
            let proto = serde_json::json!({
                "proto": "lesk",
                "eps": eps,
                "divisor": d,
                "u0": if warm { log2n } else { 0.0 },
            });
            let (clean, t0) = ctx.election_slots(
                "e20",
                &format!("clean/{regime}/d={d}"),
                proto.clone(),
                n,
                CdModel::Strong,
                &AdversarySpec::passive(),
                trials,
                200_000 + i as u64 * 3 + warm as u64,
                2_000_000,
                mk,
            );
            let (jam, t1) = ctx.election_slots(
                "e20",
                &format!("saturating/{regime}/d={d}"),
                proto,
                n,
                CdModel::Strong,
                &saturating(eps, 32),
                trials,
                201_000 + i as u64 * 3 + warm as u64,
                2_000_000,
                mk,
            );
            table.push_row([
                format!("{d}"),
                fmt(median(&clean)),
                fmt(median(&jam)),
                format!("{}", t0 + t1),
            ]);
        }
        result.add_table(&format!("divisor sweep ({regime}, n={n}, eps={eps})"), table);
    }
    result.note(
        "cold start: election time scales like d·log2(n)/eps — the paper's d = 8 pays ~4x \
         over d = 2 for the climb; warm start: all divisors > 1−eps elect promptly, \
         confirming the stability condition; the paper's 8 buys the clean counting constants \
         of Lemmas 2.3–2.5 (a ≥ 8), not raw speed"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
