//! E13 — energy accounting (the paper's Section 1.3 remark).
//!
//! The paper does not analyze energy but "expects the energetic
//! efficiency … to be similar to the leader election from [3]". We
//! measure transmissions per station and total listening cost for every
//! protocol, with and without jamming.

use crate::common::{saturating, ExpContext, ExperimentResult};
use jle_adversary::AdversarySpec;
use jle_analysis::{fmt, Table};
use jle_engine::{run_cohort, SimConfig, UniformProtocol};
use jle_protocols::{
    ArssMacProtocol, BackoffProtocol, LeskProtocol, LesuProtocol, WillardProtocol,
};
use jle_radio::CdModel;
use serde::{Serialize, Value};

#[allow(clippy::too_many_arguments)]
fn energy_cells<U: UniformProtocol>(
    ctx: &ExpContext,
    point: &str,
    proto: Value,
    n: u64,
    adv: &AdversarySpec,
    trials: u64,
    seed: u64,
    factory: impl Fn() -> U + Sync,
) -> (f64, f64, f64) {
    let params = serde_json::json!({
        "kind": "energy",
        "n": n,
        "adv": adv.to_json_value(),
        "max_slots": 5_000_000u64,
        "proto": proto,
    });
    let rows: Vec<(f64, f64, f64)> = ctx.run_trials("e13", point, params, seed, trials, |s| {
        let config = SimConfig::new(n, CdModel::Strong).with_seed(s).with_max_slots(5_000_000);
        let r = run_cohort(&config, adv, &factory);
        (r.tx_per_station(n), r.energy.listens as f64 / n as f64, r.slots as f64)
    });
    let m = |f: &dyn Fn(&(f64, f64, f64)) -> f64| {
        let mut v: Vec<f64> = rows.iter().map(f).collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    (m(&|r| r.0), m(&|r| r.1), m(&|r| r.2))
}

/// Run E13.
pub fn run(ctx: &ExpContext) -> ExperimentResult {
    let quick = ctx.quick;
    let mut result = ExperimentResult::new(
        "e13",
        "energy: transmissions and listening per station",
        "Section 1.3 (energy expected similar to [3]; measured, not optimized)",
    );
    let ns: Vec<u64> = if quick { vec![256] } else { vec![64, 256, 1024, 4096] };
    let trials = if quick { 10 } else { 40 };

    for (name, adv) in
        [("none", AdversarySpec::passive()), ("saturating eps=0.5 T=32", saturating(0.5, 32))]
    {
        let mut table = Table::new([
            "n",
            "LESK tx/station",
            "LESU tx/station",
            "ARSS tx/station",
            "backoff tx/station",
            "Willard tx/station",
            "LESK listens/station",
        ]);
        for (i, &n) in ns.iter().enumerate() {
            let gamma = ArssMacProtocol::recommended_gamma(n, 32);
            let pt = |proto: &str| format!("{proto}/{name}/n={n}");
            let lesk = energy_cells(
                ctx,
                &pt("lesk"),
                serde_json::json!({"proto": "lesk", "eps": 0.5f64}),
                n,
                &adv,
                trials,
                130_000 + i as u64,
                || LeskProtocol::new(0.5),
            );
            let lesu = energy_cells(
                ctx,
                &pt("lesu"),
                serde_json::json!({"proto": "lesu"}),
                n,
                &adv,
                trials,
                131_000 + i as u64,
                LesuProtocol::new,
            );
            let arss = energy_cells(
                ctx,
                &pt("arss"),
                serde_json::json!({"proto": "arss", "gamma": gamma}),
                n,
                &adv,
                trials,
                132_000 + i as u64,
                || ArssMacProtocol::new(gamma),
            );
            let back = energy_cells(
                ctx,
                &pt("backoff"),
                serde_json::json!({"proto": "backoff"}),
                n,
                &adv,
                trials,
                133_000 + i as u64,
                BackoffProtocol::new,
            );
            let will = energy_cells(
                ctx,
                &pt("willard"),
                serde_json::json!({"proto": "willard"}),
                n,
                &adv,
                trials,
                134_000 + i as u64,
                WillardProtocol::new,
            );
            table.push_row([
                n.to_string(),
                fmt(lesk.0),
                fmt(lesu.0),
                fmt(arss.0),
                fmt(back.0),
                fmt(will.0),
                fmt(lesk.1),
            ]);
        }
        result.add_table(&format!("median energy ({name})"), table);
    }
    result.note(
        "per-station transmission counts stay O(1)-ish for LESK (each station transmits \
         ~p·slots ≈ slots/n times); listening dominates the energy budget, growing with the \
         election time — consistent with the paper's expectation of [3]-like efficiency"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_is_consistent() {
        let r = super::run(&crate::common::ExpContext::ephemeral(true));
        assert_eq!(r.tables.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
