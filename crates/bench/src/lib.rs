//! # jle-bench — the reproduction harness
//!
//! One experiment per claim of the paper (see `DESIGN.md` §5), plus the
//! Criterion micro-benchmarks under `benches/`. Run everything with:
//!
//! ```text
//! cargo run -p jle-bench --release --bin experiments -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod experiments;

pub use common::{EngineMode, ExpContext, ExperimentResult};
