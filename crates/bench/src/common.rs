//! Shared helpers for the reproduction experiments.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_analysis::{Figure, Summary, Table};
use jle_engine::{
    run_batch_exact_with, run_cohort, run_exact, run_fast_exact, Protocol, RunReport, SimConfig,
    SlotCost, UniformProtocol,
};
use jle_orchestrator::{Orchestrator, WorkSpec};
use jle_radio::CdModel;
use jle_sweepd::SweepClient;
use jle_telemetry::FlightRecorder;
use serde::{Deserialize, Serialize, Value};
use std::sync::{Arc, Mutex};

/// The outcome of one experiment: named tables plus free-form notes, all
/// renderable to markdown and CSV.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"e1"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Which paper claim this validates.
    pub paper_ref: String,
    /// Named tables (name → table).
    pub tables: Vec<(String, Table)>,
    /// Figures rendered to `results/<id>_<k>.svg` by the CLI.
    #[serde(skip)]
    pub figures: Vec<Figure>,
    /// Conclusions / measured headline numbers.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Create an empty result shell.
    pub fn new(id: &str, title: &str, paper_ref: &str) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            paper_ref: paper_ref.into(),
            ..Default::default()
        }
    }

    /// Append a table.
    pub fn add_table(&mut self, name: &str, table: Table) {
        self.tables.push((name.into(), table));
    }

    /// Append a figure (emitted as SVG by the experiments CLI).
    pub fn add_figure(&mut self, figure: Figure) {
        self.figures.push(figure);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render the whole result as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## {} — {}\n\n*Validates: {}*\n\n",
            self.id.to_uppercase(),
            self.title,
            self.paper_ref
        );
        for (name, table) in &self.tables {
            out.push_str(&format!("### {name}\n\n{}\n", table.to_markdown()));
        }
        if !self.notes.is_empty() {
            out.push_str("### Findings\n\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }
}

/// A saturating `(T, 1−ε)` adversary spec.
pub fn saturating(eps: f64, t_window: u64) -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(eps), t_window, JamStrategyKind::Saturating)
}

/// Which exact backend simulates `Protocol`-level (per-station)
/// experiments. Selected by the experiments CLI via `--engine`.
///
/// The two backends sample the same election laws from unrelated random
/// streams (statistically equivalent, bit-different), so the mode is also
/// folded into orchestrator cache keys — see
/// [`jle_orchestrator::Orchestrator::engine_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The legacy backend: every station stepped every slot
    /// ([`jle_engine::run_exact`]).
    #[default]
    Exact,
    /// The active-set backend with counter-based per-station streams
    /// ([`jle_engine::run_fast_exact`]): O(awake) per slot.
    FastExact,
    /// The batched SoA lockstep backend
    /// ([`jle_engine::run_batch_exact`]): bit-identical per trial to
    /// [`EngineMode::FastExact`] (DESIGN.md §17), so it shares the
    /// fast-exact cache tag instead of carrying its own.
    Batch,
}

impl EngineMode {
    /// Parse the CLI spelling (`exact` | `fast-exact` | `batch`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(EngineMode::Exact),
            "fast-exact" => Some(EngineMode::FastExact),
            "batch" => Some(EngineMode::Batch),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Exact => "exact",
            EngineMode::FastExact => "fast-exact",
            EngineMode::Batch => "batch",
        }
    }

    /// The cache-key tag ([`jle_orchestrator::Orchestrator::engine_mode`]).
    ///
    /// `Batch` deliberately aliases the fast-exact salt: its per-trial
    /// reports are bit-identical (the `batch-identity` CI job's
    /// contract), so batched and per-trial sweeps warm each other's
    /// caches instead of forking the store into twin populations.
    pub fn cache_tag(self) -> &'static str {
        match self {
            EngineMode::Exact => "exact",
            EngineMode::FastExact | EngineMode::Batch => "fast-exact",
        }
    }
}

/// Everything an experiment needs at run time: the `--quick` flag plus the
/// orchestrator all Monte-Carlo work is submitted through. Experiments
/// never call [`jle_engine::MonteCarlo`] directly anymore — routing
/// through the context is what makes every sweep cacheable, resumable,
/// and visible to telemetry.
#[derive(Clone)]
pub struct ExpContext {
    /// Trim sweeps and trial counts for smoke testing.
    pub quick: bool,
    orch: Arc<Orchestrator>,
    flight: Option<Arc<FlightRecorder>>,
    engine: EngineMode,
    server: Option<Arc<Mutex<SweepClient>>>,
}

impl ExpContext {
    /// A context submitting work through `orch`.
    pub fn new(quick: bool, orch: Arc<Orchestrator>) -> Self {
        ExpContext { quick, orch, flight: None, engine: EngineMode::default(), server: None }
    }

    /// A context with no cache and no reporters — unit tests and doc
    /// examples.
    pub fn ephemeral(quick: bool) -> Self {
        Self::new(quick, Arc::new(Orchestrator::ephemeral()))
    }

    /// Builder: dump flight-recorder postmortems (anomalous runs, caught
    /// panics, supervisor restarts) into `recorder`'s directory. Only
    /// *executed* trials can dump — cache-served trials never re-run, so
    /// a warm sweep produces no artifacts.
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// The flight recorder, if one is attached.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Builder: select the exact backend per-station experiments run on.
    ///
    /// The caller is responsible for tagging the orchestrator's cache
    /// keys to match ([`jle_orchestrator::Orchestrator::engine_mode`]) —
    /// the experiments CLI does both from the one `--engine` flag.
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// The selected exact backend.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Builder: route supported cohort-election units through a resident
    /// `jle-sweepd` service instead of the in-process orchestrator.
    ///
    /// Only units the service's work registry can reconstruct exactly
    /// ([`jle_sweepd::is_supported`]) are routed; everything else — and
    /// anything the server rejects or fails — falls back to local
    /// execution, so experiments behave identically with or without a
    /// server (the cache keys agree, so the two paths even share a
    /// store).
    pub fn with_server(mut self, client: SweepClient) -> Self {
        self.server = Some(Arc::new(Mutex::new(client)));
        self
    }

    /// Try to run a cohort-election unit on the attached server.
    /// `None` means "not routed" (no server, unsupported params, or a
    /// server-side error) and the caller must compute locally.
    fn server_reports(&self, spec: &WorkSpec, trials: u64) -> Option<Vec<RunReport>> {
        let server = self.server.as_ref()?;
        if !jle_sweepd::is_supported(&spec.params) {
            return None;
        }
        let mut client = server.lock().expect("sweepd client lock");
        match client.run_reports(spec, trials) {
            Ok(reports) => Some(reports),
            Err(e) => {
                eprintln!(
                    "warning: sweepd {}/{}: {e}; computing locally",
                    spec.experiment, spec.point
                );
                None
            }
        }
    }

    /// Run one per-station election on the selected exact backend.
    pub fn exact_election(
        &self,
        config: &SimConfig,
        adv: &AdversarySpec,
        factory: impl FnMut(u64) -> Box<dyn Protocol>,
    ) -> RunReport {
        match self.engine {
            EngineMode::Exact => run_exact(config, adv, factory),
            EngineMode::FastExact => run_fast_exact(config, adv, factory),
            // A width-1 batch: the per-trial seed authority is the
            // explicit slice, which here is the config's own seed.
            EngineMode::Batch => {
                let mut factory = factory;
                run_batch_exact_with(config, adv, &[config.seed], |_trial, station| {
                    factory(station)
                })
                .pop()
                .expect("one seed yields one report")
            }
        }
    }

    /// The underlying orchestrator (for telemetry and stats).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// Submit `trials` seeded trials as one cacheable work unit.
    ///
    /// `params` must describe everything `f`'s behaviour depends on apart
    /// from the per-trial seed (`base_seed + index`); see
    /// [`jle_orchestrator::WorkSpec`]. The `quick` flag is deliberately
    /// *not* part of the key — a quick run computes a prefix of the full
    /// run's trial range for the same unit.
    pub fn run_trials<R, F>(
        &self,
        experiment: &str,
        point: &str,
        params: Value,
        base_seed: u64,
        trials: u64,
        f: F,
    ) -> Vec<R>
    where
        R: Send + Serialize + Deserialize + SlotCost,
        F: Fn(u64) -> R + Sync,
    {
        let spec = WorkSpec::new(experiment, point, params, base_seed);
        self.orch.run_trials(&spec, trials, f)
    }

    /// Run `trials` cohort elections and return the per-trial slot counts
    /// (timeouts are reported as `max_slots`, plus the timeout count).
    ///
    /// `proto` names the protocol and its parameters for the cache key
    /// (the factory closure itself cannot be hashed), e.g.
    /// `json!({"proto": "lesk", "eps": 0.5})`.
    #[allow(clippy::too_many_arguments)]
    pub fn election_slots<U, F>(
        &self,
        experiment: &str,
        point: &str,
        proto: Value,
        n: u64,
        cd: CdModel,
        adv: &AdversarySpec,
        trials: u64,
        base_seed: u64,
        max_slots: u64,
        factory: F,
    ) -> (Vec<f64>, u64)
    where
        U: UniformProtocol,
        F: Fn() -> U + Sync,
    {
        let params = election_params(proto, n, cd, adv, max_slots);
        let spec = WorkSpec::new(experiment, point, params, base_seed);
        let reports: Vec<RunReport> = match self.server_reports(&spec, trials) {
            Some(reports) => reports,
            None => self.orch.run_trials(&spec, trials, |seed| {
                let config = SimConfig::new(n, cd).with_seed(seed).with_max_slots(max_slots);
                run_cohort(&config, adv, &factory)
            }),
        };
        let timeouts = reports.iter().filter(|r| r.timed_out).count() as u64;
        (reports.iter().map(|r| r.slots as f64).collect(), timeouts)
    }
}

/// The canonical parameter tree of a cohort-election work unit.
pub fn election_params(
    proto: Value,
    n: u64,
    cd: CdModel,
    adv: &AdversarySpec,
    max_slots: u64,
) -> Value {
    serde_json::json!({
        "kind": "cohort_election",
        "n": n,
        "cd": cd,
        "adv": adv.to_json_value(),
        "max_slots": max_slots,
        "proto": proto,
    })
}

/// Convenience: median of a sample (panics on empty).
pub fn median(xs: &[f64]) -> f64 {
    jle_analysis::percentile(xs, 0.5)
}

/// Render a [`Summary`] into `(median, mean, p90)` strings for tables.
pub fn summary_cells(s: &Summary) -> (String, String, String) {
    (jle_analysis::fmt(s.median), jle_analysis::fmt(s.mean), jle_analysis::fmt(s.p90))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jle_protocols::LeskProtocol;

    #[test]
    fn experiment_result_renders() {
        let mut r = ExperimentResult::new("e0", "smoke", "none");
        let mut t = Table::new(["a"]);
        t.push_row(["1"]);
        r.add_table("main", t);
        r.note("works");
        let md = r.to_markdown();
        assert!(md.contains("## E0 — smoke"));
        assert!(md.contains("### main"));
        assert!(md.contains("- works"));
    }

    #[test]
    fn election_slots_smoke() {
        let ctx = ExpContext::ephemeral(true);
        let (slots, timeouts) = ctx.election_slots(
            "e0",
            "smoke",
            serde_json::json!({"proto": "lesk", "eps": 0.5f64}),
            64,
            CdModel::Strong,
            &AdversarySpec::passive(),
            10,
            1,
            100_000,
            || LeskProtocol::new(0.5),
        );
        assert_eq!(slots.len(), 10);
        assert_eq!(timeouts, 0);
        assert!(median(&slots) > 0.0);
    }
}
