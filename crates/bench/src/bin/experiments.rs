//! CLI for the reproduction experiments.
//!
//! ```text
//! experiments list            # show all experiment ids and titles
//! experiments e1 e6 ...       # run specific experiments (full scale)
//! experiments all             # run everything
//! experiments --quick all     # trimmed sweeps (smoke test)
//! ```
//!
//! Results are printed as markdown and written to `results/<id>.md` and
//! `results/<id>.csv` (one CSV per table, suffixed when multiple).

use jle_bench::experiments::{run_by_id, ALL_IDS};
use jle_bench::ExperimentResult;
use std::fs;
use std::path::Path;
use std::time::Instant;

fn write_results(result: &ExperimentResult, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.md", result.id)), result.to_markdown())?;
    for (i, (name, table)) in result.tables.iter().enumerate() {
        let suffix = if result.tables.len() == 1 { String::new() } else { format!("_{i}") };
        let mut csv = format!("# {name}\n");
        csv.push_str(&table.to_csv());
        fs::write(dir.join(format!("{}{suffix}.csv", result.id)), csv)?;
    }
    for (i, figure) in result.figures.iter().enumerate() {
        if let Some(svg) = figure.to_svg() {
            let suffix = if result.figures.len() == 1 { String::new() } else { format!("_{i}") };
            fs::write(dir.join(format!("{}{suffix}.svg", result.id)), svg)?;
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let ids: Vec<String> = args.iter().filter(|a| !a.starts_with('-')).cloned().collect();

    if ids.is_empty() || ids[0] == "list" {
        eprintln!("usage: experiments [--quick] <id>... | all | list\n");
        eprintln!("available experiments:");
        for id in ALL_IDS {
            let title = match id {
                "e1" => "LESK runtime vs n (Thm 2.6, O(log n))",
                "e2" => "LESK runtime vs eps (Thm 2.6)",
                "e3" => "LESK runtime vs T (Thm 2.6 crossover)",
                "e4" => "LESU vs n, unknown eps + c ablation (Thm 2.9.1)",
                "e5" => "LESU vs large T, loglog T overhead (Thm 2.9.2)",
                "e6" => "weak-CD Notification overhead (Lemma 3.1, Thms 3.2/3.3)",
                "e7" => "baseline shoot-out (Section 1.3)",
                "e8" => "lower-bound adversary (Lemma 2.7)",
                "e9" => "w.h.p. failure rates (Thm 2.6)",
                "e10" => "estimate trajectory (Section 2.2)",
                "e11" => "slot taxonomy (Lemmas 2.2/2.3/2.5)",
                "e12" => "Estimation(2) window (Lemma 2.8)",
                "e13" => "energy accounting (Section 1.3)",
                "e14" => "adversary ablation (Section 1.1)",
                "e15" => "cohort vs exact engine (DESIGN §4)",
                "e16" => "k-selection extension (paper §4)",
                "e17" => "size approximation extension (paper §4)",
                "e18" => "oracle jammer negative control (model §1.1)",
                "e19" => "fair channel use + targeted jamming limit (paper §4)",
                "e20" => "ablation: the eps/8 increment constant (Alg. 1)",
                "e21" => "the no-CD open problem, quantified (paper §4)",
                "e22" => "jamming + environmental noise (beyond the model)",
                "e23" => "duty-cycled LESK: energy vs latency (extension, ref [13])",
                "e24" => "fault injection + restart supervision (beyond the model)",
                _ => "",
            };
            eprintln!("  {id:<4} {title}");
        }
        std::process::exit(if ids.is_empty() { 2 } else { 0 });
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        ALL_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let out_dir = Path::new("results");
    let mut failed = false;
    for id in selected {
        let start = Instant::now();
        match run_by_id(id, quick) {
            Some(result) => {
                let dt = start.elapsed();
                println!("{}", result.to_markdown());
                println!("_completed in {:.1}s_\n", dt.as_secs_f64());
                if let Err(e) = write_results(&result, out_dir) {
                    eprintln!("warning: could not write results for {id}: {e}");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
