//! CLI for the reproduction experiments.
//!
//! ```text
//! experiments list               # show all experiment ids and titles
//! experiments e1 e6 ...          # run specific experiments (full scale)
//! experiments all                # run everything
//! experiments --quick all        # trimmed sweeps (smoke test)
//! experiments --resume all       # reuse partial chunks after a kill
//! experiments --force e3         # recompute and overwrite cached results
//! experiments --jobs 4 all       # explicit worker parallelism
//! experiments --log run.jsonl e1 # append a machine-readable run log
//! ```
//!
//! All Monte-Carlo work routes through the `jle-orchestrator` scheduler:
//! every work unit is fingerprinted (experiment, parameters, seed range,
//! code salt) into a content-addressed key and looked up in the on-disk
//! store under `--cache-dir` (default `results/.cache`) before anything
//! simulates. A re-run of a completed experiment therefore executes zero
//! trials and reproduces byte-identical tables; `--resume` additionally
//! reuses partially completed units chunk-by-chunk, and `--force`
//! recomputes everything and overwrites the store.
//!
//! Results are printed as markdown and written to `results/<id>.md` and
//! `results/<id>.csv` (one CSV per table, suffixed when multiple).

use jle_bench::experiments::{run_by_id, ALL_IDS};
use jle_bench::{EngineMode, ExpContext, ExperimentResult};
use jle_orchestrator::{CachePolicy, Event, JsonlReporter, Orchestrator, StderrProgress};
use jle_telemetry::{FlightRecorder, MetricRegistry, SpanRecorder};
use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn write_results(result: &ExperimentResult, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.md", result.id)), result.to_markdown())?;
    for (i, (name, table)) in result.tables.iter().enumerate() {
        let suffix = if result.tables.len() == 1 { String::new() } else { format!("_{i}") };
        let mut csv = format!("# {name}\n");
        csv.push_str(&table.to_csv());
        fs::write(dir.join(format!("{}{suffix}.csv", result.id)), csv)?;
    }
    for (i, figure) in result.figures.iter().enumerate() {
        if let Some(svg) = figure.to_svg() {
            let suffix = if result.figures.len() == 1 { String::new() } else { format!("_{i}") };
            fs::write(dir.join(format!("{}{suffix}.svg", result.id)), svg)?;
        }
    }
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: experiments [flags] <id>... | all | list\n\n\
         flags:\n  \
         --quick, -q        trimmed sweeps and trial counts (smoke test)\n  \
         --cache-dir <dir>  result store root (default: results/.cache)\n  \
         --no-cache         run everything in memory, touch no store\n  \
         --resume           reuse partially completed units chunk-by-chunk\n  \
         --force            recompute everything, overwrite the store\n  \
         --jobs <n>         worker threads for trial execution\n  \
         --log <path>       append a JSONL run log (telemetry events)\n  \
         --no-progress      suppress the stderr progress reporter\n  \
         --metrics-out <p>  append a versioned metrics snapshot (JSONL) at exit;\n                     \
         also writes Prometheus text exposition to <p>.prom\n  \
         --trace-out <p>    write a Chrome trace_event JSON profile at exit\n  \
         --flight-recorder <dir>  dump flight-recorder postmortems (anomalies,\n                     \
         caught panics, supervisor restarts) into <dir>\n  \
         --engine <mode>    exact backend for per-station experiments:\n                     \
         exact (default) | fast-exact (active-set loop, counter-based\n                     \
         per-station streams; statistically equivalent, different bits —\n                     \
         cache keys are tagged so results never alias) | batch\n                     \
         (SoA lockstep backend; bit-identical to fast-exact, so it\n                     \
         shares the fast-exact cache salt)\n  \
         --server <ep>      route supported cohort-election units through a\n                     \
         resident jle-sweepd service (tcp:HOST:PORT or unix:PATH);\n                     \
         unsupported units fall back to local execution"
    );
    std::process::exit(2);
}

/// Parsed command line.
struct Cli {
    quick: bool,
    cache_dir: String,
    no_cache: bool,
    resume: bool,
    force: bool,
    jobs: Option<usize>,
    log: Option<String>,
    progress: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    flight_dir: Option<String>,
    engine: EngineMode,
    server: Option<String>,
    ids: Vec<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        quick: false,
        cache_dir: "results/.cache".into(),
        no_cache: false,
        resume: false,
        force: false,
        jobs: None,
        log: None,
        progress: true,
        metrics_out: None,
        trace_out: None,
        flight_dir: None,
        engine: EngineMode::default(),
        server: None,
        ids: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--quick" | "-q" => cli.quick = true,
            "--cache-dir" => cli.cache_dir = value("--cache-dir"),
            "--no-cache" => cli.no_cache = true,
            "--resume" => cli.resume = true,
            "--force" => cli.force = true,
            "--jobs" => {
                let v = value("--jobs");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cli.jobs = Some(n),
                    _ => {
                        eprintln!("error: --jobs expects a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--log" => cli.log = Some(value("--log")),
            "--no-progress" => cli.progress = false,
            "--metrics-out" => cli.metrics_out = Some(value("--metrics-out")),
            "--trace-out" => cli.trace_out = Some(value("--trace-out")),
            "--flight-recorder" => cli.flight_dir = Some(value("--flight-recorder")),
            "--engine" => {
                let v = value("--engine");
                cli.engine = EngineMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: --engine expects exact | fast-exact | batch, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--server" => cli.server = Some(value("--server")),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other}");
                usage();
            }
            other => cli.ids.push(other.to_string()),
        }
    }
    if cli.resume && cli.force {
        eprintln!("error: --resume and --force are mutually exclusive");
        std::process::exit(2);
    }
    cli
}

fn build_orchestrator(cli: &Cli, registry: &MetricRegistry, tracer: &SpanRecorder) -> Orchestrator {
    let mut orch = if cli.no_cache {
        Orchestrator::ephemeral()
    } else {
        match Orchestrator::with_cache_dir(&cli.cache_dir) {
            Ok(o) => o,
            Err(e) => {
                eprintln!(
                    "warning: cannot open cache dir {}: {e}; running without a cache",
                    cli.cache_dir
                );
                Orchestrator::ephemeral()
            }
        }
    };
    if cli.resume {
        orch = orch.policy(CachePolicy::Resume);
    }
    if cli.force {
        orch = orch.policy(CachePolicy::Force);
    }
    if let Some(jobs) = cli.jobs {
        orch = orch.jobs(jobs);
    }
    if cli.progress {
        orch = orch.reporter(StderrProgress::new(Duration::from_millis(250)));
    }
    if let Some(path) = &cli.log {
        match JsonlReporter::append(path) {
            Ok(r) => orch = orch.reporter(r),
            Err(e) => eprintln!("warning: cannot open run log {path}: {e}"),
        }
    }
    // Tag cache keys with the backend: fast-exact results are
    // statistically equivalent but bit-different, so they must never be
    // served for (or overwrite) exact-mode entries. Batch aliases the
    // fast-exact tag — its trials are bit-identical, so the two modes
    // share one warm cache (DESIGN.md §17).
    orch = orch.engine_mode(cli.engine.cache_tag());
    orch.metrics_registry(registry).tracer(tracer.clone())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);

    if cli.ids.is_empty() || cli.ids[0] == "list" {
        eprintln!("usage: experiments [flags] <id>... | all | list (--help for flags)\n");
        eprintln!("available experiments:");
        for id in ALL_IDS {
            let title = match id {
                "e1" => "LESK runtime vs n (Thm 2.6, O(log n))",
                "e2" => "LESK runtime vs eps (Thm 2.6)",
                "e3" => "LESK runtime vs T (Thm 2.6 crossover)",
                "e4" => "LESU vs n, unknown eps + c ablation (Thm 2.9.1)",
                "e5" => "LESU vs large T, loglog T overhead (Thm 2.9.2)",
                "e6" => "weak-CD Notification overhead (Lemma 3.1, Thms 3.2/3.3)",
                "e7" => "baseline shoot-out (Section 1.3)",
                "e8" => "lower-bound adversary (Lemma 2.7)",
                "e9" => "w.h.p. failure rates (Thm 2.6)",
                "e10" => "estimate trajectory (Section 2.2)",
                "e11" => "slot taxonomy (Lemmas 2.2/2.3/2.5)",
                "e12" => "Estimation(2) window (Lemma 2.8)",
                "e13" => "energy accounting (Section 1.3)",
                "e14" => "adversary ablation (Section 1.1)",
                "e15" => "cohort vs exact engine (DESIGN §4)",
                "e16" => "k-selection extension (paper §4)",
                "e17" => "size approximation extension (paper §4)",
                "e18" => "oracle jammer negative control (model §1.1)",
                "e19" => "fair channel use + targeted jamming limit (paper §4)",
                "e20" => "ablation: the eps/8 increment constant (Alg. 1)",
                "e21" => "the no-CD open problem, quantified (paper §4)",
                "e22" => "jamming + environmental noise (beyond the model)",
                "e23" => "duty-cycled LESK: energy vs latency (extension, ref [13])",
                "e24" => "fault injection + restart supervision (beyond the model)",
                "e25" => "open-world elections: churn, leases, split brain (beyond the model)",
                "e26" => "multi-hop cluster elections: topology x jamming (beyond the model)",
                _ => "",
            };
            eprintln!("  {id:<4} {title}");
        }
        std::process::exit(if cli.ids.is_empty() { 2 } else { 0 });
    }

    let selected: Vec<&str> = if cli.ids.iter().any(|i| i == "all") {
        ALL_IDS.to_vec()
    } else {
        cli.ids.iter().map(String::as_str).collect()
    };

    // One registry + tracer for the whole run: the orchestrator's
    // jle_orchestrator_* counters and the CLI's spans land in the same
    // exports.
    let registry = MetricRegistry::new();
    let tracer =
        if cli.trace_out.is_some() { SpanRecorder::new() } else { SpanRecorder::disabled() };
    let orch = Arc::new(build_orchestrator(&cli, &registry, &tracer));
    orch.announce();
    let mut ctx = ExpContext::new(cli.quick, Arc::clone(&orch)).with_engine(cli.engine);
    if let Some(ep) = &cli.server {
        let endpoint = jle_sweepd::Endpoint::parse(ep).unwrap_or_else(|e| {
            eprintln!("error: --server: {e}");
            std::process::exit(2);
        });
        match jle_sweepd::SweepClient::connect(&endpoint) {
            Ok(client) => {
                eprintln!("experiments: routing cohort elections through {endpoint}");
                ctx = ctx.with_server(client);
            }
            Err(e) => {
                eprintln!("error: cannot connect to sweepd at {endpoint}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = &cli.flight_dir {
        match FlightRecorder::new(dir) {
            Ok(rec) => ctx = ctx.with_flight_recorder(Arc::new(rec)),
            Err(e) => eprintln!("warning: cannot open flight-recorder dir {dir}: {e}"),
        }
    }

    let out_dir = Path::new("results");
    let mut failed = false;
    let run_span = tracer.span("cli", "run");
    for id in selected {
        let start = Instant::now();
        let exp_span = tracer.span("cli", format!("experiment:{id}"));
        orch.emit(&Event::ExperimentStarted { id });
        match run_by_id(id, &ctx) {
            Some(result) => {
                let dt = start.elapsed();
                orch.emit(&Event::ExperimentFinished { id, wall_secs: dt.as_secs_f64() });
                println!("{}", result.to_markdown());
                println!("_completed in {:.1}s_\n", dt.as_secs_f64());
                if let Err(e) = write_results(&result, out_dir) {
                    eprintln!("warning: could not write results for {id}: {e}");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
        drop(exp_span);
    }
    drop(run_span);
    orch.summarize();
    if let Some(path) = &cli.metrics_out {
        if let Err(e) = registry.write_snapshot_jsonl(path) {
            eprintln!("warning: could not write metrics snapshot {path}: {e}");
        }
        let prom = format!("{path}.prom");
        if let Err(e) = registry.write_prometheus(&prom) {
            eprintln!("warning: could not write Prometheus exposition {prom}: {e}");
        }
    }
    if let Some(path) = &cli.trace_out {
        if let Err(e) = tracer.write_chrome_trace(path) {
            eprintln!("warning: could not write Chrome trace {path}: {e}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
