//! Bench-regression gate: re-runs the `engine_throughput` workload shapes
//! with a self-contained best-of-N harness and compares against the
//! latest entry in `results/BENCH.json`, failing on a regression beyond
//! the threshold (default 10%).
//!
//! ```text
//! bench_gate                     # absolute mode: measured vs recorded ns
//! bench_gate --normalize         # relative mode (CI): compare each arm's
//!                                # measured/recorded ratio to the median
//!                                # ratio, absorbing uniform machine-speed
//!                                # differences between the recording box
//!                                # and this one
//! bench_gate --threshold 0.25    # loosen the gate
//! bench_gate --samples 9         # more best-of samples (less noise)
//! ```
//!
//! The harness measures a representative arm per `engine_throughput`
//! group — the cheap slot loop (cohort), the O(n)-per-slot exact backend,
//! the election-scale arena path, and the active-set fast backend — with
//! workloads identical to the Criterion bench, so figures are comparable
//! to the recorded medians. Arms absent from the recorded baseline (new
//! groups mid-trajectory) are reported but never gate.
//!
//! Criterion itself is a dev-dependency and benches don't gate; this
//! binary is what CI runs (`--normalize`, release profile).

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{
    run_batch_uniform, run_cohort, run_exact, run_exact_in, run_fast_exact, Action, ChurnPlan,
    ExactStations, FaultPlan, FaultyStations, LeaderLedger, MultihopStations, PerStation, Protocol,
    SimArena, SimConfig, SimCore, SlotActions, SlotObserver, SplitBrainObserver, StdMesh,
    UniformProtocol,
};
use jle_radio::{CdModel, ChannelState, Observation, SlotTruth, Topology};
use jle_telemetry::SpanRecorder;
use std::hint::black_box;
use std::time::Instant;

/// Never-resolving workload: every station always transmits (identical to
/// the Criterion bench's `AlwaysCollide`).
#[derive(Debug, Clone)]
struct AlwaysCollide;
impl UniformProtocol for AlwaysCollide {
    fn tx_prob(&mut self, _: u64) -> f64 {
        1.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {}
    fn reset(&mut self) -> bool {
        true
    }
}

/// The lens's disabled path as an observer: attached but declining
/// probes and estimates, so each slot costs the engine one branch and
/// one virtual call.
struct IdleLens;

impl SlotObserver for IdleLens {
    fn on_slot(
        &mut self,
        _slot: u64,
        _truth: &SlotTruth,
        _actions: &SlotActions,
        _estimate: Option<f64>,
    ) {
    }
}

/// Sleep-heavy never-resolving workload (identical to the Criterion
/// bench's `DutySleeper`): awake one slot in `period`, honest wake hint.
#[derive(Debug)]
struct DutySleeper {
    period: u64,
    phase: u64,
}

impl Protocol for DutySleeper {
    fn act(&mut self, slot: u64, _: &mut dyn rand::RngCore) -> Action {
        if slot % self.period == self.phase {
            Action::Transmit
        } else {
            Action::Sleep
        }
    }
    fn feedback(&mut self, _: u64, _: bool, _: Observation) {}
    fn status(&self) -> jle_engine::Status {
        jle_engine::Status::Running
    }
    fn wake_hint(&self, slot: u64) -> u64 {
        let next = slot + 1;
        next + (self.phase + self.period - next % self.period) % self.period
    }
}

fn sat() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 64, JamStrategyKind::Saturating)
}

/// The 64-cluster unit-disk workload for the `multihop_throughput` arms:
/// 4096 stations at unit-square positions, partitioned into an 8×8 grid
/// of cells; two stations interfere when they share a cell and are within
/// disk radius (half the cell side). That yields ≥64 interference
/// components of ~64 stations each — the shape per-component sharding is
/// built for — with the grid cell as the cluster assignment.
fn multihop_workload() -> (Topology, Vec<u32>) {
    const N: u64 = 4096;
    const GRID: u32 = 8;
    let positions = jle_radio::unit_disk_positions(N, 7);
    let cell = |&(x, y): &(f64, f64)| {
        let cx = ((x * f64::from(GRID)) as u32).min(GRID - 1);
        let cy = ((y * f64::from(GRID)) as u32).min(GRID - 1);
        cy * GRID + cx
    };
    let clusters: Vec<u32> = positions.iter().map(cell).collect();
    let r = 0.5 / f64::from(GRID);
    let mut edges = Vec::new();
    for i in 0..N as usize {
        for j in (i + 1)..N as usize {
            if clusters[i] == clusters[j] {
                let (dx, dy) = (positions[i].0 - positions[j].0, positions[i].1 - positions[j].1);
                if dx * dx + dy * dy <= r * r {
                    edges.push((i as u64, j as u64));
                }
            }
        }
    }
    let topo = Topology::explicit(N, &edges).expect("grid-cell disk graph");
    (topo, clusters)
}

/// One `multihop_throughput` arm: the 64-cluster unit-disk workload under
/// a saturating jammer, never resolving, with the sharding threshold
/// forced (`usize::MAX` keeps the slot loop serial, `1` forces
/// per-component sharding on).
fn multihop_arm(par_threshold: usize) -> Box<dyn FnMut()> {
    let (topo, clusters) = multihop_workload();
    Box::new(move || {
        let adv = sat();
        let config = SimConfig::new(4096, CdModel::Strong).with_seed(7).with_max_slots(128);
        let mut stations = MultihopStations::new(&config, &topo, |_| {
            Box::new(StdMesh::new(Box::new(PerStation::new(AlwaysCollide))))
        })
        .with_clusters(&clusters)
        .with_parallel_threshold(par_threshold);
        black_box(SimCore::new(&config, &adv).run(&mut stations));
    })
}

/// One measured arm: the Criterion group/arm it mirrors, the per-sample
/// iteration count, and the workload.
struct Arm {
    group: &'static str,
    name: &'static str,
    iters: u32,
    run: Box<dyn FnMut()>,
}

fn arms() -> Vec<Arm> {
    vec![
        Arm {
            group: "cohort_slots",
            name: "fresh/65536",
            iters: 25,
            run: Box::new(|| {
                let adv = sat();
                let config =
                    SimConfig::new(1 << 16, CdModel::Strong).with_seed(7).with_max_slots(50_000);
                black_box(run_cohort(&config, &adv, || AlwaysCollide));
            }),
        },
        Arm {
            group: "exact_slots",
            name: "fresh/1024",
            iters: 5,
            run: Box::new(|| {
                let adv = sat();
                let config =
                    SimConfig::new(1 << 10, CdModel::Strong).with_seed(7).with_max_slots(2_000);
                black_box(run_exact(&config, &adv, |_| Box::new(PerStation::new(AlwaysCollide))));
            }),
        },
        Arm {
            group: "exact_short_runs",
            name: "arena/1024",
            iters: 200,
            run: {
                let mut arena = SimArena::new();
                Box::new(move || {
                    let adv = sat();
                    let config =
                        SimConfig::new(1 << 10, CdModel::Strong).with_seed(7).with_max_slots(16);
                    black_box(run_exact_in(
                        &config,
                        &adv,
                        |_| Box::new(PerStation::new(AlwaysCollide)),
                        &mut arena,
                    ));
                })
            },
        },
        // Paired A/B arms for the open-world stack's disabled-path
        // overhead: same workload as exact_slots, once pristine and once
        // through the churn wrapper (empty plan, proven bit-identical)
        // with the split-brain observer attached to an idle ledger. The
        // pair gates *against each other* (same process, same run — no
        // machine-speed normalization needed); see the churn-overhead
        // check in `main`.
        Arm {
            group: "churn_overhead",
            name: "pristine/1024",
            iters: 5,
            run: Box::new(|| {
                let adv = sat();
                let config =
                    SimConfig::new(1 << 10, CdModel::Strong).with_seed(7).with_max_slots(2_000);
                black_box(run_exact(&config, &adv, |_| Box::new(PerStation::new(AlwaysCollide))));
            }),
        },
        Arm {
            group: "churn_overhead",
            name: "empty_plan/1024",
            iters: 5,
            run: Box::new(|| {
                let adv = sat();
                let config =
                    SimConfig::new(1 << 10, CdModel::Strong).with_seed(7).with_max_slots(2_000);
                let plan = ChurnPlan::empty().overlay(&FaultPlan::empty());
                let mut split = SplitBrainObserver::new(LeaderLedger::new(512));
                let mut stations = FaultyStations::new(&config, &plan, |_: u64| {
                    Box::new(PerStation::new(AlwaysCollide)) as Box<dyn Protocol>
                });
                black_box(SimCore::new(&config, &adv).observe(&mut split).run(&mut stations));
            }),
        },
        // Paired A/B arms for the lens's disabled path: the same
        // workload bare, and with the replay-era hooks present but idle —
        // an attached observer that declines probes (so the engine takes
        // only the `wants_probes` branch plus one virtual call per slot)
        // inside a span on a *disabled* recorder. Gated against each
        // other in `main` like the churn pair.
        Arm {
            group: "lens_overhead",
            name: "bare/1024",
            iters: 5,
            run: Box::new(|| {
                let adv = sat();
                let config =
                    SimConfig::new(1 << 10, CdModel::Strong).with_seed(7).with_max_slots(2_000);
                black_box(run_exact(&config, &adv, |_| Box::new(PerStation::new(AlwaysCollide))));
            }),
        },
        Arm {
            group: "lens_overhead",
            name: "hooks_idle/1024",
            iters: 5,
            run: Box::new(|| {
                let adv = sat();
                let config =
                    SimConfig::new(1 << 10, CdModel::Strong).with_seed(7).with_max_slots(2_000);
                let tracer = SpanRecorder::disabled();
                let _span = tracer.span("engine", "run:seed=7");
                let mut idle = IdleLens;
                let mut stations = ExactStations::new(&config, |_| {
                    Box::new(PerStation::new(AlwaysCollide)) as Box<dyn Protocol>
                });
                black_box(SimCore::new(&config, &adv).observe(&mut idle).run(&mut stations));
            }),
        },
        // Paired A/B arms for the multi-hop per-neighborhood backend:
        // one 64-cluster unit-disk workload (4096 stations, mean degree
        // ~32, never-resolving), run once with sharding disabled
        // (threshold above the population) and once with per-component
        // rayon sharding forced on. Both arms record against BENCH.json;
        // the pair also makes parallel speedup visible in the printout.
        Arm {
            group: "multihop_throughput",
            name: "serial/4096x64",
            iters: 3,
            run: multihop_arm(usize::MAX),
        },
        Arm {
            group: "multihop_throughput",
            name: "sharded/4096x64",
            iters: 3,
            run: multihop_arm(1),
        },
        // Paired A/B arms for the batched lockstep backend: the same 256
        // election-scale trials (n = 1024, 16 slots, never resolving, the
        // degenerate p == 1.0 word path) run one at a time through the
        // fast-exact backend and as one SoA batch. The pair gates
        // *against each other* in `main`: the batch arm must be at least
        // --batch-speedup-threshold times faster per trial set.
        Arm {
            group: "batch_speedup",
            name: "per_trial/1024",
            iters: 2,
            run: Box::new(|| {
                let adv = sat();
                for seed in 7..7 + 256u64 {
                    let config =
                        SimConfig::new(1 << 10, CdModel::Strong).with_seed(seed).with_max_slots(16);
                    black_box(run_fast_exact(&config, &adv, |_| {
                        Box::new(PerStation::new(AlwaysCollide))
                    }));
                }
            }),
        },
        Arm {
            group: "batch_speedup",
            name: "batch/1024",
            iters: 20,
            run: Box::new(|| {
                let adv = sat();
                let seeds: Vec<u64> = (7..7 + 256u64).collect();
                let config = SimConfig::new(1 << 10, CdModel::Strong).with_max_slots(16);
                black_box(run_batch_uniform(&config, &adv, &seeds, || AlwaysCollide));
            }),
        },
        Arm {
            group: "fast_exact",
            name: "fast/65536",
            iters: 25,
            run: Box::new(|| {
                let adv = sat();
                let config =
                    SimConfig::new(1 << 16, CdModel::Strong).with_seed(7).with_max_slots(256);
                black_box(run_fast_exact(&config, &adv, |i| {
                    Box::new(DutySleeper { period: 64, phase: i % 64 })
                }));
            }),
        },
    ]
}

/// Best-of-`samples` ns/iter for one arm (one untimed warmup sample).
fn measure(arm: &mut Arm, samples: u32) -> f64 {
    let time_one = |run: &mut dyn FnMut(), iters: u32| {
        let start = Instant::now();
        for _ in 0..iters {
            run();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    time_one(&mut arm.run, arm.iters.div_ceil(4)); // warmup
    (0..samples).map(|_| time_one(&mut arm.run, arm.iters)).fold(f64::INFINITY, f64::min)
}

/// The recorded `ns_per_iter` for `group`/`arm` in the newest history
/// entry, if present.
fn baseline_ns(latest: &serde_json::Value, group: &str, arm: &str) -> Option<f64> {
    latest.get("groups")?.get(group)?.get("results")?.get(arm)?.get("ns_per_iter")?.as_f64()
}

struct Cli {
    threshold: f64,
    samples: u32,
    normalize: bool,
    baseline: String,
    /// Allowed overhead of the churn wrapper + idle split-brain observer
    /// over the pristine exact run (same-process A/B pair).
    churn_overhead_threshold: f64,
    /// Allowed overhead of the idle lens hooks (attached non-probing
    /// observer + disabled span recorder) over the bare exact run
    /// (same-process A/B pair).
    lens_overhead_threshold: f64,
    /// Latency budget for a warm-cache submission through an in-process
    /// `jle-sweepd` service (socket round-trips + scheduling + cache
    /// replay), in milliseconds.
    sweepd_budget_ms: f64,
    /// Minimum throughput ratio of the batched backend over the
    /// per-trial fast-exact loop on the same 256-trial workload
    /// (same-process A/B pair; the PR's acceptance floor).
    batch_speedup_threshold: f64,
}

/// Same-run A/B pair for the sweepd service path: one work unit computed
/// once into a shared store, then replayed warm both directly through an
/// `Orchestrator` and through an in-process `jle-sweepd` over TCP
/// loopback. Returns best-of-`samples` ns/iter for (direct, server).
///
/// The pair has no recorded baseline — the direct arm is this machine's
/// own yardstick — so the gate is the absolute `--sweepd-budget-ms`
/// bound on the server arm, not a BENCH.json comparison.
fn measure_sweepd_overhead(samples: u32) -> std::io::Result<(f64, f64)> {
    use jle_engine::SimConfig;
    use jle_orchestrator::{Orchestrator, ResultStore, WorkSpec};
    use jle_protocols::LeskProtocol;
    use jle_sweepd::{Endpoint, ServerConfig, SweepClient, SweepServer};
    use serde::Serialize;

    let dir = std::env::temp_dir().join(format!("jle-bench-sweepd-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (n, max_slots, trials) = (64u64, 100_000u64, 32u64);
    let spec = WorkSpec::new(
        "bench_gate",
        "sweepd_overhead",
        serde_json::json!({
            "kind": "cohort_election",
            "n": n,
            "cd": jle_radio::CdModel::Strong,
            "adv": AdversarySpec::passive().to_json_value(),
            "max_slots": max_slots,
            "proto": {"proto": "lesk", "eps": 0.5f64},
        }),
        424_242,
    );

    let store = ResultStore::open(&dir)?;
    let mut run_direct = || {
        let orch = Orchestrator::with_store(store.clone());
        let reports: Vec<jle_engine::RunReport> = orch.run_trials(&spec, trials, |seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(max_slots);
            run_cohort(&config, &AdversarySpec::passive(), || LeskProtocol::new(0.5))
        });
        black_box(reports);
    };
    let time_one = |run: &mut dyn FnMut(), iters: u32| {
        let start = Instant::now();
        for _ in 0..iters {
            run();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    time_one(&mut run_direct, 2); // warmup: first call computes the unit
    let direct_ns =
        (0..samples).map(|_| time_one(&mut run_direct, 10)).fold(f64::INFINITY, f64::min);

    let config = ServerConfig { cache_dir: Some(dir.clone()), workers: 1, ..Default::default() };
    let server = SweepServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), config)
        .map_err(|e| std::io::Error::other(format!("bind sweepd: {e}")))?;
    let addr = server.tcp_addr().expect("tcp endpoint");
    let handle = server.spawn();
    let mut client = SweepClient::connect(&Endpoint::Tcp(addr.to_string()))
        .map_err(|e| std::io::Error::other(format!("connect sweepd: {e}")))?;
    let mut run_server = || {
        black_box(client.run_reports(&spec, trials).expect("sweepd warm submission"));
    };
    time_one(&mut run_server, 2); // warmup
    let server_ns =
        (0..samples).map(|_| time_one(&mut run_server, 10)).fold(f64::INFINITY, f64::min);

    drop(client);
    let _ = handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok((direct_ns, server_ns))
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate [--threshold <frac>] [--samples <n>] [--normalize] \
         [--baseline <path>] [--churn-overhead-threshold <frac>]\n\
         [--lens-overhead-threshold <frac>] [--sweepd-budget-ms <ms>]\n\
         [--batch-speedup-threshold <ratio>]\n\n\
         Fails (exit 1) when a measured engine_throughput arm regresses more\n\
         than <frac> (default 0.10) against the newest results/BENCH.json\n\
         entry. --normalize gates each arm against the median measured/recorded\n\
         ratio instead of the raw ratio, absorbing uniform machine-speed\n\
         differences (use in CI). The churn_overhead pair additionally gates\n\
         the disabled open-world stack against its same-run pristine twin\n\
         (default limit 0.02), the lens_overhead pair gates the idle\n\
         tracing/probe hooks the same way (default limit 0.02), and the\n\
         sweepd_overhead pair submits a warm-cache\n\
         unit through an in-process jle-sweepd and gates the round-trip\n\
         against --sweepd-budget-ms (default 50). The batch_speedup pair\n\
         runs the same 256 election-scale trials per-trial and batched and\n\
         fails unless the batched backend is at least\n\
         --batch-speedup-threshold (default 10) times faster."
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        threshold: 0.10,
        samples: 5,
        normalize: false,
        baseline: "results/BENCH.json".into(),
        churn_overhead_threshold: 0.02,
        lens_overhead_threshold: 0.02,
        sweepd_budget_ms: 50.0,
        batch_speedup_threshold: 10.0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--threshold" => match value("--threshold").parse::<f64>() {
                Ok(t) if t > 0.0 => cli.threshold = t,
                _ => {
                    eprintln!("error: --threshold expects a positive fraction");
                    std::process::exit(2);
                }
            },
            "--samples" => match value("--samples").parse::<u32>() {
                Ok(n) if n >= 1 => cli.samples = n,
                _ => {
                    eprintln!("error: --samples expects a positive integer");
                    std::process::exit(2);
                }
            },
            "--normalize" => cli.normalize = true,
            "--baseline" => cli.baseline = value("--baseline"),
            "--churn-overhead-threshold" => {
                match value("--churn-overhead-threshold").parse::<f64>() {
                    Ok(t) if t > 0.0 => cli.churn_overhead_threshold = t,
                    _ => {
                        eprintln!("error: --churn-overhead-threshold expects a positive fraction");
                        std::process::exit(2);
                    }
                }
            }
            "--lens-overhead-threshold" => {
                match value("--lens-overhead-threshold").parse::<f64>() {
                    Ok(t) if t > 0.0 => cli.lens_overhead_threshold = t,
                    _ => {
                        eprintln!("error: --lens-overhead-threshold expects a positive fraction");
                        std::process::exit(2);
                    }
                }
            }
            "--batch-speedup-threshold" => {
                match value("--batch-speedup-threshold").parse::<f64>() {
                    Ok(t) if t > 0.0 => cli.batch_speedup_threshold = t,
                    _ => {
                        eprintln!("error: --batch-speedup-threshold expects a positive ratio");
                        std::process::exit(2);
                    }
                }
            }
            "--sweepd-budget-ms" => match value("--sweepd-budget-ms").parse::<f64>() {
                Ok(t) if t > 0.0 => cli.sweepd_budget_ms = t,
                _ => {
                    eprintln!("error: --sweepd-budget-ms expects a positive number");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other}");
                usage();
            }
        }
    }
    cli
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);

    let raw = std::fs::read_to_string(&cli.baseline).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {}: {e}", cli.baseline);
        std::process::exit(2);
    });
    let doc: serde_json::Value = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("error: {} is not valid JSON: {e}", cli.baseline);
        std::process::exit(2);
    });
    let latest = doc
        .get("history")
        .and_then(|h| h.as_seq())
        .and_then(|entries| entries.first())
        .unwrap_or_else(|| {
            eprintln!("error: {} has no history entries", cli.baseline);
            std::process::exit(2);
        })
        .clone();
    let date = latest.get("date").and_then(|d| d.as_str()).unwrap_or("?");
    eprintln!(
        "bench_gate: measuring {} arms (best of {}) against {} entry dated {date}",
        arms().len(),
        cli.samples,
        cli.baseline,
    );

    // Measure everything first; gate after, so --normalize sees all ratios.
    let mut rows: Vec<(String, f64, Option<f64>)> = Vec::new();
    for mut arm in arms() {
        let label = format!("{}/{}", arm.group, arm.name);
        let ns = measure(&mut arm, cli.samples);
        let base = baseline_ns(&latest, arm.group, arm.name);
        rows.push((label, ns, base));
    }

    let mut ratios: Vec<f64> =
        rows.iter().filter_map(|(_, ns, base)| base.map(|b| ns / b)).collect();
    ratios.sort_by(f64::total_cmp);
    let pivot = if cli.normalize && !ratios.is_empty() {
        ratios[ratios.len() / 2] // median measured/recorded ratio
    } else {
        1.0
    };
    if cli.normalize {
        eprintln!("bench_gate: normalizing by median machine-speed ratio {pivot:.3}");
    }

    let mut failed = false;
    for (label, ns, base) in &rows {
        match base {
            None => println!("{label:<28} {ns:>12.0} ns/iter   (new arm, no baseline — skipped)"),
            Some(b) => {
                let rel = ns / b / pivot - 1.0;
                let verdict = if rel > cli.threshold {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "{label:<28} {ns:>12.0} ns/iter   baseline {b:>12.0}   {rel:>+7.1}%   {verdict}",
                    rel = rel * 100.0
                );
            }
        }
    }

    // Same-run A/B gate: the open-world stack, fully disabled (empty
    // churn plan + idle split-brain observer), must be nearly free next
    // to the pristine exact run measured in the *same* process.
    let arm_ns = |name: &str| {
        rows.iter()
            .find(|(label, _, _)| label == &format!("churn_overhead/{name}"))
            .map(|(_, ns, _)| *ns)
    };
    if let (Some(pristine), Some(wrapped)) = (arm_ns("pristine/1024"), arm_ns("empty_plan/1024")) {
        let overhead = wrapped / pristine - 1.0;
        let verdict = if overhead > cli.churn_overhead_threshold {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "churn_overhead (disabled path)           {overhead:>+7.1}%   (limit {:.0}%)   {verdict}",
            cli.churn_overhead_threshold * 100.0,
            overhead = overhead * 100.0,
        );
    }

    // Same-run A/B gate for the lens hooks' disabled path: an attached
    // observer that declines probes plus a disabled span recorder must
    // be nearly free next to the bare exact run from the same process.
    let lens_ns = |name: &str| {
        rows.iter()
            .find(|(label, _, _)| label == &format!("lens_overhead/{name}"))
            .map(|(_, ns, _)| *ns)
    };
    if let (Some(bare), Some(idle)) = (lens_ns("bare/1024"), lens_ns("hooks_idle/1024")) {
        let overhead = idle / bare - 1.0;
        let verdict = if overhead > cli.lens_overhead_threshold {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "lens_overhead (disabled path)            {overhead:>+7.1}%   (limit {:.0}%)   {verdict}",
            cli.lens_overhead_threshold * 100.0,
            overhead = overhead * 100.0,
        );
    }

    // Same-run A/B gate for the batched backend: the SoA lockstep pass
    // over 256 election-scale trials must beat the per-trial fast-exact
    // loop on the same workload by at least the acceptance floor. Ratio
    // of same-process measurements — no machine-speed normalization.
    let batch_ns = |name: &str| {
        rows.iter()
            .find(|(label, _, _)| label == &format!("batch_speedup/{name}"))
            .map(|(_, ns, _)| *ns)
    };
    if let (Some(per_trial), Some(batched)) = (batch_ns("per_trial/1024"), batch_ns("batch/1024")) {
        let speedup = per_trial / batched;
        let verdict = if speedup < cli.batch_speedup_threshold {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "batch_speedup (256 trials, n=1024)       {speedup:>7.1}x   (floor {:.0}x)   {verdict}",
            cli.batch_speedup_threshold,
        );
    }

    // Absolute-budget gate: a warm-cache submission through the resident
    // service (loopback round-trips + admission + scheduling + replay)
    // must land within --sweepd-budget-ms. The same-run direct arm is
    // printed next to it so the service's markup is visible.
    match measure_sweepd_overhead(cli.samples) {
        Ok((direct_ns, server_ns)) => {
            let server_ms = server_ns / 1e6;
            let verdict = if server_ms > cli.sweepd_budget_ms {
                failed = true;
                "FAIL"
            } else {
                "ok"
            };
            println!("sweepd_overhead/direct_warm  {direct_ns:>12.0} ns/iter   (yardstick)");
            println!(
                "sweepd_overhead/server_warm  {server_ns:>12.0} ns/iter   \
                 {server_ms:.2} ms (budget {:.0} ms)   {verdict}",
                cli.sweepd_budget_ms
            );
        }
        Err(e) => {
            eprintln!("bench_gate: sweepd_overhead arm failed to run: {e}");
            failed = true;
        }
    }

    if failed {
        eprintln!(
            "bench_gate: FAIL — at least one arm regressed more than {:.0}% \
             (threshold overridable with --threshold)",
            cli.threshold * 100.0
        );
        std::process::exit(1);
    }
    eprintln!("bench_gate: ok — no arm regressed more than {:.0}%", cli.threshold * 100.0);
}
