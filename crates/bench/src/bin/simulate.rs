//! Single-scenario simulator CLI — run one election and print a JSON
//! report (for scripting / downstream tooling).
//!
//! ```text
//! simulate --n 1024 --protocol lesk --eps 0.5 --adversary saturating \
//!          --adv-eps 0.5 --t-window 32 --cd strong --seed 7 [--trials 100]
//! ```
//!
//! With `--trials k` the run is repeated over consecutive seeds and the
//! JSON carries summary statistics instead of a single report.

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{run_cohort, run_exact, MonteCarlo, RunReport, SimConfig, StopRule};
use jle_protocols::{
    lewk, lewu, ArssMacProtocol, BackoffProtocol, LeskProtocol, LesuProtocol, WillardProtocol,
};
use jle_radio::CdModel;
use serde_json::json;

#[derive(Debug, Clone)]
struct Args {
    n: u64,
    protocol: String,
    eps: f64,
    adversary: String,
    adv_eps: f64,
    t_window: u64,
    cd: CdModel,
    seed: u64,
    trials: u64,
    max_slots: u64,
    noise: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 64,
        protocol: "lesk".into(),
        eps: 0.5,
        adversary: "saturating".into(),
        adv_eps: 0.5,
        t_window: 32,
        cd: CdModel::Strong,
        seed: 0,
        trials: 1,
        max_slots: 10_000_000,
        noise: 0.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].clone();
        let val = argv.get(i + 1).ok_or_else(|| format!("missing value for {key}"))?;
        match key.as_str() {
            "--n" => args.n = val.parse().map_err(|e| format!("--n: {e}"))?,
            "--protocol" => args.protocol = val.clone(),
            "--eps" => args.eps = val.parse().map_err(|e| format!("--eps: {e}"))?,
            "--adversary" => args.adversary = val.clone(),
            "--adv-eps" => args.adv_eps = val.parse().map_err(|e| format!("--adv-eps: {e}"))?,
            "--t-window" => args.t_window = val.parse().map_err(|e| format!("--t-window: {e}"))?,
            "--cd" => {
                args.cd = match val.as_str() {
                    "strong" => CdModel::Strong,
                    "weak" => CdModel::Weak,
                    "none" | "nocd" | "no-cd" => CdModel::NoCd,
                    other => return Err(format!("unknown CD model: {other}")),
                }
            }
            "--seed" => args.seed = val.parse().map_err(|e| format!("--seed: {e}"))?,
            "--trials" => args.trials = val.parse().map_err(|e| format!("--trials: {e}"))?,
            "--max-slots" => {
                args.max_slots = val.parse().map_err(|e| format!("--max-slots: {e}"))?
            }
            "--noise" => args.noise = val.parse().map_err(|e| format!("--noise: {e}"))?,
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn adversary_spec(args: &Args) -> Result<AdversarySpec, String> {
    let rate = Rate::from_f64(args.adv_eps);
    let kind = match args.adversary.as_str() {
        "none" => return Ok(AdversarySpec::passive()),
        "saturating" => JamStrategyKind::Saturating,
        "periodic" | "periodic-front" => JamStrategyKind::PeriodicFront,
        "random" => JamStrategyKind::Random { prob: 1.0 - args.adv_eps },
        "reactive" | "reactive-null" => JamStrategyKind::ReactiveNull,
        "burst" => JamStrategyKind::Burst { on: args.t_window, off: args.t_window },
        "adaptive" => JamStrategyKind::AdaptiveEstimator {
            n: args.n,
            protocol_eps: args.eps,
            band: 3.0,
            initial_u: 0.0,
        },
        "sweep-targeted" => JamStrategyKind::SweepTargeted { n: args.n, band: 3.0 },
        other => return Err(format!("unknown adversary: {other}")),
    };
    Ok(AdversarySpec::new(rate, args.t_window, kind))
}

fn run_one(args: &Args, adv: &AdversarySpec, seed: u64) -> Result<RunReport, String> {
    let config = SimConfig::new(args.n, args.cd)
        .with_seed(seed)
        .with_max_slots(args.max_slots)
        .with_noise(args.noise);
    let eps = args.eps;
    let n = args.n;
    Ok(match args.protocol.as_str() {
        "lesk" => run_cohort(&config, adv, || LeskProtocol::new(eps)),
        "lesu" => run_cohort(&config, adv, LesuProtocol::new),
        "backoff" => run_cohort(&config, adv, BackoffProtocol::new),
        "willard" => run_cohort(&config, adv, WillardProtocol::new),
        "arss" => run_cohort(&config, adv, || {
            ArssMacProtocol::new(ArssMacProtocol::recommended_gamma(n, adv.t_window))
        }),
        "lewk" => {
            run_exact(&config.with_stop(StopRule::AllTerminated), adv, |_| Box::new(lewk(eps)))
        }
        "lewu" => run_exact(&config.with_stop(StopRule::AllTerminated), adv, |_| Box::new(lewu())),
        other => return Err(format!("unknown protocol: {other}")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: simulate [--n N] [--protocol lesk|lesu|lewk|lewu|backoff|willard|arss] \
                 [--eps F] [--adversary none|saturating|periodic|random|reactive|burst|adaptive|sweep-targeted] \
                 [--adv-eps F] [--t-window T] [--cd strong|weak|none] [--seed S] [--trials K] \
                 [--max-slots M] [--noise Q]"
            );
            std::process::exit(2);
        }
    };
    let adv = match adversary_spec(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if args.trials <= 1 {
        match run_one(&args, &adv, args.seed) {
            Ok(r) => println!(
                "{}",
                serde_json::to_string_pretty(&json!({
                    "config": {
                        "n": args.n, "protocol": args.protocol, "eps": args.eps,
                        "adversary": adv.label(), "cd": format!("{:?}", args.cd),
                        "seed": args.seed, "noise": args.noise,
                    },
                    "slots": r.slots,
                    "leader_elected": r.leader_elected(),
                    "resolved_at": r.resolved_at,
                    "winner": r.winner,
                    "leaders": r.leaders,
                    "timed_out": r.timed_out,
                    "jam_fraction": r.jam_fraction(),
                    "noise_slots": r.noise_slots,
                    "counts": {
                        "nulls": r.counts.nulls, "singles": r.counts.singles,
                        "collisions": r.counts.collisions, "jammed": r.counts.jammed,
                    },
                    "energy": {
                        "transmissions": r.energy.transmissions,
                        "listens": r.energy.listens,
                        "tx_per_station": r.tx_per_station(args.n),
                    },
                }))
                .expect("json")
            ),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let mc = MonteCarlo::new(args.trials, args.seed);
    let reports: Vec<Result<RunReport, String>> = mc.run(|seed| run_one(&args, &adv, seed));
    let mut slots = Vec::new();
    let mut successes = 0u64;
    for r in &reports {
        match r {
            Ok(r) => {
                slots.push(r.slots as f64);
                successes += r.leader_elected() as u64;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let summary = jle_analysis::Summary::of(&slots).expect("non-empty");
    println!(
        "{}",
        serde_json::to_string_pretty(&json!({
            "config": {
                "n": args.n, "protocol": args.protocol, "eps": args.eps,
                "adversary": adv.label(), "cd": format!("{:?}", args.cd),
                "base_seed": args.seed, "trials": args.trials, "noise": args.noise,
            },
            "success_rate": successes as f64 / args.trials as f64,
            "slots": {
                "mean": summary.mean, "median": summary.median,
                "p90": summary.p90, "p99": summary.p99,
                "min": summary.min, "max": summary.max,
            },
        }))
        .expect("json")
    );
}
