//! Single-scenario simulator CLI — run one election and print a JSON
//! report (for scripting / downstream tooling).
//!
//! ```text
//! simulate --n 1024 --protocol lesk --eps 0.5 --adversary saturating \
//!          --adv-eps 0.5 --t-window 32 --cd strong --seed 7 [--trials 100]
//! ```
//!
//! With `--trials k` the run is repeated over consecutive seeds and the
//! JSON carries summary statistics instead of a single report.

use std::sync::Arc;

use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{
    run_cohort, run_exact, run_exact_churn, run_multihop, run_multihop_std, ChurnPlan, FaultPlan,
    FaultyStations, LeaderLedger, MonteCarlo, PerStation, Protocol, RngDiscipline, RunReport,
    SimConfig, SimCore, SplitBrainObserver, StopRule,
};
use jle_protocols::{
    lewk, lewu, ArssMacProtocol, BackoffProtocol, ClusterElection, LeaseConfig, LeaseProtocol,
    LeskProtocol, LesuProtocol, WillardProtocol,
};
use jle_radio::{CdModel, Topology};
use serde::Serialize;
use serde_json::json;

#[derive(Debug, Clone)]
struct Args {
    n: u64,
    protocol: String,
    eps: f64,
    adversary: String,
    adv_eps: f64,
    t_window: u64,
    cd: CdModel,
    seed: u64,
    trials: u64,
    max_slots: u64,
    noise: f64,
    /// Seed of the churn plan (`--churn-*`); defaults to `seed ^ 0xC4C4`
    /// when any churn probability is set.
    churn_seed: Option<u64>,
    churn_join_prob: f64,
    churn_join_window: u64,
    churn_leave_prob: f64,
    churn_leave_window: u64,
    /// 0 = departures are permanent.
    churn_rejoin_after: u64,
    /// Lease mode (`--lease-beacon`): wrap each station's election in a
    /// leader lease and run to the horizon.
    lease_beacon: Option<u64>,
    lease_miss_tolerance: u32,
    lease_timeout: u64,
    /// Route the run through a resident `jle-sweepd` service
    /// (`tcp:HOST:PORT` or `unix:PATH`). Only plain cohort elections
    /// (no churn, lease, or noise) can be served remotely.
    server: Option<String>,
    /// Write the end-to-end Chrome trace of a `--server` run to this
    /// path (`--trace-out`): client submit spans with the server's
    /// admission/queue/execute/deliver stages, orchestrator chunks, and
    /// engine runs spliced in under one trace id. Written even if the
    /// run panics (truncated but valid). Validate with
    /// `jle-lens trace-check`.
    trace_out: Option<String>,
    /// Interference topology (`--topology`): `complete` (the paper's
    /// single shared channel, the default) or a graph spec —
    /// `dense-linear:K,M`, `core-tail:C,T`, `unit-disk:N,R,SEED`. Graph
    /// runs go through the per-neighborhood multi-hop engine and set
    /// `--n` from the topology.
    topology: String,
}

/// A parsed `--topology` value: `None` for the single-channel default,
/// otherwise the interference graph plus the cluster assignment its
/// constructor implies (unit disks have no canonical clustering — the
/// cluster protocol treats every node as a singleton cluster there).
type ParsedTopology = Option<(Topology, Option<Vec<u32>>)>;

fn parse_topology(spec: &str) -> Result<ParsedTopology, String> {
    if spec == "complete" {
        return Ok(None);
    }
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("--topology: expected KIND:ARGS, got `{spec}`"))?;
    let nums: Vec<&str> = rest.split(',').collect();
    let int = |s: &str, what: &str| -> Result<u64, String> {
        s.trim().parse::<u64>().map_err(|e| format!("--topology {kind}: {what}: {e}"))
    };
    match kind {
        "dense-linear" => {
            if nums.len() != 2 {
                return Err("--topology dense-linear:K,M takes two integers".into());
            }
            let (k, m) = (int(nums[0], "K")?, int(nums[1], "M")?);
            if k == 0 || m == 0 || k > 4_096 || m > 4_096 {
                return Err("--topology dense-linear: K and M must be in 1..=4096".into());
            }
            let (topo, clusters) = Topology::dense_linear(k as u32, m as u32);
            Ok(Some((topo, Some(clusters))))
        }
        "core-tail" => {
            if nums.len() != 2 {
                return Err("--topology core-tail:C,T takes two integers".into());
            }
            let (c, t) = (int(nums[0], "C")?, int(nums[1], "T")?);
            if c == 0 || c > 4_096 || t > 4_096 {
                return Err("--topology core-tail: C must be in 1..=4096, T in 0..=4096".into());
            }
            let (topo, clusters) = Topology::core_tail(c as u32, t as u32);
            Ok(Some((topo, Some(clusters))))
        }
        "unit-disk" => {
            if nums.len() != 3 {
                return Err("--topology unit-disk:N,R,SEED takes three values".into());
            }
            let n = int(nums[0], "N")?;
            let r: f64 =
                nums[1].trim().parse().map_err(|e| format!("--topology unit-disk: R: {e}"))?;
            let seed = int(nums[2], "SEED")?;
            let topo = Topology::unit_disk(n, r, seed)
                .map_err(|e| format!("--topology unit-disk: {e}"))?;
            Ok(Some((topo, None)))
        }
        other => Err(format!(
            "unknown topology kind `{other}` (expected complete, dense-linear, core-tail, \
             or unit-disk)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 64,
        protocol: "lesk".into(),
        eps: 0.5,
        adversary: "saturating".into(),
        adv_eps: 0.5,
        t_window: 32,
        cd: CdModel::Strong,
        seed: 0,
        trials: 1,
        max_slots: 10_000_000,
        noise: 0.0,
        churn_seed: None,
        churn_join_prob: 0.0,
        churn_join_window: 1_024,
        churn_leave_prob: 0.0,
        churn_leave_window: 2_048,
        churn_rejoin_after: 0,
        lease_beacon: None,
        lease_miss_tolerance: 10,
        lease_timeout: 512,
        server: None,
        trace_out: None,
        topology: "complete".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].clone();
        let val = argv.get(i + 1).ok_or_else(|| format!("missing value for {key}"))?;
        match key.as_str() {
            "--n" => args.n = val.parse().map_err(|e| format!("--n: {e}"))?,
            "--protocol" => args.protocol = val.clone(),
            "--eps" => args.eps = val.parse().map_err(|e| format!("--eps: {e}"))?,
            "--adversary" => args.adversary = val.clone(),
            "--adv-eps" => args.adv_eps = val.parse().map_err(|e| format!("--adv-eps: {e}"))?,
            "--t-window" => args.t_window = val.parse().map_err(|e| format!("--t-window: {e}"))?,
            "--cd" => {
                args.cd = match val.as_str() {
                    "strong" => CdModel::Strong,
                    "weak" => CdModel::Weak,
                    "none" | "nocd" | "no-cd" => CdModel::NoCd,
                    other => return Err(format!("unknown CD model: {other}")),
                }
            }
            "--seed" => args.seed = val.parse().map_err(|e| format!("--seed: {e}"))?,
            "--trials" => args.trials = val.parse().map_err(|e| format!("--trials: {e}"))?,
            "--max-slots" => {
                args.max_slots = val.parse().map_err(|e| format!("--max-slots: {e}"))?
            }
            "--noise" => args.noise = val.parse().map_err(|e| format!("--noise: {e}"))?,
            "--churn-seed" => {
                args.churn_seed = Some(val.parse().map_err(|e| format!("--churn-seed: {e}"))?)
            }
            "--churn-join-prob" => {
                args.churn_join_prob = val.parse().map_err(|e| format!("--churn-join-prob: {e}"))?
            }
            "--churn-join-window" => {
                args.churn_join_window =
                    val.parse().map_err(|e| format!("--churn-join-window: {e}"))?
            }
            "--churn-leave-prob" => {
                args.churn_leave_prob =
                    val.parse().map_err(|e| format!("--churn-leave-prob: {e}"))?
            }
            "--churn-leave-window" => {
                args.churn_leave_window =
                    val.parse().map_err(|e| format!("--churn-leave-window: {e}"))?
            }
            "--churn-rejoin-after" => {
                args.churn_rejoin_after =
                    val.parse().map_err(|e| format!("--churn-rejoin-after: {e}"))?
            }
            "--lease-beacon" => {
                args.lease_beacon = Some(val.parse().map_err(|e| format!("--lease-beacon: {e}"))?)
            }
            "--lease-miss-tolerance" => {
                args.lease_miss_tolerance =
                    val.parse().map_err(|e| format!("--lease-miss-tolerance: {e}"))?
            }
            "--lease-timeout" => {
                args.lease_timeout = val.parse().map_err(|e| format!("--lease-timeout: {e}"))?
            }
            "--server" => args.server = Some(val.clone()),
            "--trace-out" => args.trace_out = Some(val.clone()),
            "--topology" => args.topology = val.clone(),
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn adversary_spec(args: &Args) -> Result<AdversarySpec, String> {
    let rate = Rate::from_f64(args.adv_eps);
    let kind = match args.adversary.as_str() {
        "none" => return Ok(AdversarySpec::passive()),
        "saturating" => JamStrategyKind::Saturating,
        "periodic" | "periodic-front" => JamStrategyKind::PeriodicFront,
        "random" => JamStrategyKind::Random { prob: 1.0 - args.adv_eps },
        "reactive" | "reactive-null" => JamStrategyKind::ReactiveNull,
        "burst" => JamStrategyKind::Burst { on: args.t_window, off: args.t_window },
        "adaptive" => JamStrategyKind::AdaptiveEstimator {
            n: args.n,
            protocol_eps: args.eps,
            band: 3.0,
            initial_u: 0.0,
        },
        "sweep-targeted" => JamStrategyKind::SweepTargeted { n: args.n, band: 3.0 },
        other => return Err(format!("unknown adversary: {other}")),
    };
    Ok(AdversarySpec::new(rate, args.t_window, kind))
}

impl Args {
    fn wants_churn(&self) -> bool {
        self.churn_seed.is_some() || self.churn_join_prob > 0.0 || self.churn_leave_prob > 0.0
    }

    /// The churn plan for one engine seed (empty when no churn flags).
    fn churn_plan(&self, seed: u64) -> ChurnPlan {
        if !self.wants_churn() {
            return ChurnPlan::empty();
        }
        let mut plan = ChurnPlan::new(self.churn_seed.unwrap_or(seed ^ 0xC4C4))
            .with_staggered_joins(self.n, self.churn_join_prob, self.churn_join_window)
            .with_random_leaves(self.n, self.churn_leave_prob, self.churn_leave_window);
        if self.churn_rejoin_after > 0 {
            plan = plan.with_rejoins(self.churn_rejoin_after);
        }
        plan
    }
}

/// Open-world run: leases over supervised LESK, churn overlay, horizon
/// stop, split-brain tracking. Needs strong CD (beacon self-verification).
fn run_lease(
    args: &Args,
    adv: &AdversarySpec,
    seed: u64,
    beacon: u64,
) -> Result<RunReport, String> {
    if args.cd != CdModel::Strong {
        return Err("lease mode needs --cd strong (beacon self-verification)".into());
    }
    if args.protocol != "lesk" {
        return Err(format!("lease mode supports --protocol lesk, not {}", args.protocol));
    }
    let config = SimConfig::new(args.n, args.cd)
        .with_seed(seed)
        .with_max_slots(args.max_slots)
        .with_noise(args.noise)
        .with_stop(StopRule::Horizon);
    let lease = LeaseConfig::new(beacon, args.lease_miss_tolerance, args.lease_timeout);
    let ledger = LeaderLedger::new(args.lease_timeout);
    let plan = args.churn_plan(seed).overlay(&FaultPlan::empty());
    let eps = args.eps;
    let factory = {
        let ledger = Arc::clone(&ledger);
        move |i: u64| -> Box<dyn Protocol> {
            Box::new(LeaseProtocol::over_supervised_lesk(
                i,
                eps,
                16_384,
                lease,
                Arc::clone(&ledger),
            ))
        }
    };
    let mut split = SplitBrainObserver::new(ledger);
    let mut stations = FaultyStations::new(&config, &plan, factory);
    Ok(SimCore::new(&config, adv).observe(&mut split).run(&mut stations))
}

/// The scenario as a sweepd work-unit parameter tree, when the service
/// can reconstruct it exactly. Churn, lease, noise, and non-uniform
/// protocols only exist locally.
fn server_params(args: &Args, adv: &AdversarySpec) -> Option<serde::Value> {
    if args.wants_churn() || args.lease_beacon.is_some() || args.noise != 0.0 {
        return None;
    }
    let proto = match args.protocol.as_str() {
        "lesk" => json!({"proto": "lesk", "eps": args.eps}),
        "lesu" => json!({"proto": "lesu"}),
        "backoff" => json!({"proto": "backoff"}),
        "willard" => json!({"proto": "willard"}),
        _ => return None,
    };
    Some(json!({
        "kind": "cohort_election",
        "n": args.n,
        "cd": args.cd,
        "adv": adv.to_json_value(),
        "max_slots": args.max_slots,
        "proto": proto,
    }))
}

/// Run the scenario on a resident `jle-sweepd` service and return the
/// per-seed reports (`seed`, `seed+1`, … — the same seeds a local
/// Monte-Carlo run uses).
fn run_on_server(args: &Args, adv: &AdversarySpec, ep: &str) -> Result<Vec<RunReport>, String> {
    let params = server_params(args, adv).ok_or_else(|| {
        "--server only supports plain cohort elections \
         (--protocol lesk|lesu|backoff|willard, no churn/lease/noise)"
            .to_string()
    })?;
    let endpoint = jle_sweepd::Endpoint::parse(ep).map_err(|e| format!("--server: {e}"))?;
    let mut client = jle_sweepd::SweepClient::connect(&endpoint)
        .map_err(|e| format!("cannot connect to sweepd at {endpoint}: {e}"))?;
    // Flush-on-drop so even a panicking run leaves a valid (truncated)
    // trace document behind.
    let _trace_flush = args.trace_out.as_ref().map(|path| {
        client.enable_tracing();
        client.tracer().flush_on_drop(path)
    });
    let point = format!(
        "{}/n={}/cd={:?}/adv={}/seed={}",
        args.protocol,
        args.n,
        args.cd,
        adv.label(),
        args.seed
    );
    let spec = jle_orchestrator::WorkSpec::new("simulate", &point, params, args.seed);
    client.run_reports(&spec, args.trials.max(1)).map_err(|e| format!("sweepd {point}: {e}"))
}

/// Graph-topology run: route through the per-neighborhood multi-hop
/// engine. Closed-world only — churn, lease, noise, and the sweepd
/// service are single-channel features.
fn run_graph(
    args: &Args,
    adv: &AdversarySpec,
    seed: u64,
    topo: &Topology,
    clusters: &Option<Vec<u32>>,
) -> Result<RunReport, String> {
    if args.wants_churn() || args.lease_beacon.is_some() || args.noise != 0.0 {
        return Err("--topology graphs are closed-world: no churn, lease, or noise flags".into());
    }
    let config = SimConfig::new(args.n, args.cd).with_seed(seed).with_max_slots(args.max_slots);
    let eps = args.eps;
    Ok(match args.protocol.as_str() {
        "cluster" => {
            // Cluster elections converge when *everyone* has powered
            // down; unit disks carry no canonical clustering, so every
            // node elects (and floods) as its own singleton cluster.
            let assign: Vec<u32> = clusters.clone().unwrap_or_else(|| (0..args.n as u32).collect());
            run_multihop(
                &config.with_stop(StopRule::AllTerminated),
                adv,
                topo,
                Some(&assign),
                |i| Box::new(ClusterElection::for_assignment(i, &assign, eps)),
            )
        }
        "lesk" => run_multihop_std(&config, adv, topo, RngDiscipline::Shared, move |_| {
            Box::new(PerStation::new(LeskProtocol::new(eps)))
        }),
        "lesu" => run_multihop_std(&config, adv, topo, RngDiscipline::Shared, |_| {
            Box::new(PerStation::new(LesuProtocol::new()))
        }),
        "backoff" => run_multihop_std(&config, adv, topo, RngDiscipline::Shared, |_| {
            Box::new(PerStation::new(BackoffProtocol::new()))
        }),
        "lewk" => run_multihop_std(
            &config.with_stop(StopRule::AllTerminated),
            adv,
            topo,
            RngDiscipline::Shared,
            move |_| Box::new(lewk(eps)),
        ),
        "lewu" => run_multihop_std(
            &config.with_stop(StopRule::AllTerminated),
            adv,
            topo,
            RngDiscipline::Shared,
            |_| Box::new(lewu()),
        ),
        other => {
            return Err(format!(
                "graph topologies support --protocol cluster|lesk|lesu|backoff|lewk|lewu, \
                 not {other}"
            ))
        }
    })
}

fn run_one(
    args: &Args,
    adv: &AdversarySpec,
    seed: u64,
    topology: &ParsedTopology,
) -> Result<RunReport, String> {
    if let Some((topo, clusters)) = topology {
        return run_graph(args, adv, seed, topo, clusters);
    }
    if args.protocol == "cluster" {
        return Err("--protocol cluster needs a graph --topology (it elects per cluster)".into());
    }
    if let Some(beacon) = args.lease_beacon {
        return run_lease(args, adv, seed, beacon);
    }
    let config = SimConfig::new(args.n, args.cd)
        .with_seed(seed)
        .with_max_slots(args.max_slots)
        .with_noise(args.noise);
    let eps = args.eps;
    let n = args.n;
    if args.wants_churn() {
        let plan = args.churn_plan(seed);
        return Ok(match args.protocol.as_str() {
            "lesk" => run_exact_churn(&config, adv, &plan, move |_| {
                Box::new(PerStation::new(LeskProtocol::new(eps)))
            }),
            "lesu" => run_exact_churn(&config, adv, &plan, |_| {
                Box::new(PerStation::new(LesuProtocol::new()))
            }),
            "lewk" => {
                run_exact_churn(&config.with_stop(StopRule::AllTerminated), adv, &plan, move |_| {
                    Box::new(lewk(eps))
                })
            }
            "lewu" => {
                run_exact_churn(&config.with_stop(StopRule::AllTerminated), adv, &plan, |_| {
                    Box::new(lewu())
                })
            }
            other => {
                return Err(format!(
                    "churn runs use the exact engine: --protocol lesk|lesu|lewk|lewu, not {other}"
                ))
            }
        });
    }
    Ok(match args.protocol.as_str() {
        "lesk" => run_cohort(&config, adv, || LeskProtocol::new(eps)),
        "lesu" => run_cohort(&config, adv, LesuProtocol::new),
        "backoff" => run_cohort(&config, adv, BackoffProtocol::new),
        "willard" => run_cohort(&config, adv, WillardProtocol::new),
        "arss" => run_cohort(&config, adv, || {
            ArssMacProtocol::new(ArssMacProtocol::recommended_gamma(n, adv.t_window))
        }),
        "lewk" => {
            run_exact(&config.with_stop(StopRule::AllTerminated), adv, |_| Box::new(lewk(eps)))
        }
        "lewu" => run_exact(&config.with_stop(StopRule::AllTerminated), adv, |_| Box::new(lewu())),
        other => return Err(format!("unknown protocol: {other}")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: simulate [--n N] [--protocol lesk|lesu|lewk|lewu|backoff|willard|arss] \
                 [--eps F] [--adversary none|saturating|periodic|random|reactive|burst|adaptive|sweep-targeted] \
                 [--adv-eps F] [--t-window T] [--cd strong|weak|none] [--seed S] [--trials K] \
                 [--max-slots M] [--noise Q] \
                 [--churn-seed S] [--churn-join-prob F] [--churn-join-window W] \
                 [--churn-leave-prob F] [--churn-leave-window W] [--churn-rejoin-after D] \
                 [--lease-beacon B] [--lease-miss-tolerance K] [--lease-timeout L] \
                 [--server tcp:HOST:PORT|unix:PATH] [--trace-out PATH] \
                 [--topology complete|dense-linear:K,M|core-tail:C,T|unit-disk:N,R,SEED]"
            );
            std::process::exit(2);
        }
    };
    let adv = match adversary_spec(&args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let topology = match parse_topology(&args.topology) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut args = args;
    if let Some((topo, _)) = &topology {
        // The graph fixes the population; `--n` is single-channel-only.
        args.n = topo.graph().map(|g| u64::from(g.n())).unwrap_or(args.n);
        if args.server.is_some() {
            eprintln!("error: --server runs are single-channel; drop --topology");
            std::process::exit(2);
        }
    }
    let args = args;
    if args.trace_out.is_some() && args.server.is_none() {
        eprintln!("error: --trace-out traces the service path; it needs --server");
        std::process::exit(2);
    }

    let server_reports: Option<Vec<RunReport>> = match &args.server {
        Some(ep) => match run_on_server(&args, &adv, ep) {
            Ok(reports) => Some(reports),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    if args.trials <= 1 {
        let one = match &server_reports {
            Some(reports) => Ok(reports[0].clone()),
            None => run_one(&args, &adv, args.seed, &topology),
        };
        match one {
            Ok(r) => println!(
                "{}",
                serde_json::to_string_pretty(&json!({
                    "config": {
                        "n": args.n, "protocol": args.protocol, "eps": args.eps,
                        "adversary": adv.label(), "cd": format!("{:?}", args.cd),
                        "seed": args.seed, "noise": args.noise,
                        "churn": args.wants_churn(),
                        "lease_beacon": args.lease_beacon,
                        "topology": args.topology,
                    },
                    "slots": r.slots,
                    "outcome": r.outcome().label(),
                    "leader_elected": r.leader_elected(),
                    "resolved_at": r.resolved_at,
                    "winner": r.winner,
                    "leaders": r.leaders,
                    "timed_out": r.timed_out,
                    "split_brain": args.lease_beacon.map(|_| json!({
                        "believers": r.split_brain.believers,
                        "windows": r.split_brain.windows,
                        "split_slots": r.split_brain.split_slots,
                        "longest_split": r.split_brain.longest_split,
                        "max_believers": r.split_brain.max_believers,
                        "reelections": r.split_brain.reelections,
                    })),
                    "multihop": r.multihop.as_ref().map(|m| json!({
                        "topology": m.topology,
                        "components": m.components,
                        "clusters": m.clusters.iter().map(|c| json!({
                            "cluster": c.cluster, "size": c.size,
                            "resolved_at": c.resolved_at, "leader": c.leader,
                        })).collect::<Vec<_>>(),
                        "all_clusters_resolved": m.all_clusters_resolved(),
                        "converged_at": m.converged_at,
                        "network_leader": m.network_leader,
                        "cross_cluster_interference": m.cross_cluster_interference,
                    })),
                    "jam_fraction": r.jam_fraction(),
                    "noise_slots": r.noise_slots,
                    "counts": {
                        "nulls": r.counts.nulls, "singles": r.counts.singles,
                        "collisions": r.counts.collisions, "jammed": r.counts.jammed,
                    },
                    "energy": {
                        "transmissions": r.energy.transmissions,
                        "listens": r.energy.listens,
                        "tx_per_station": r.tx_per_station(args.n),
                    },
                }))
                .expect("json")
            ),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let reports: Vec<Result<RunReport, String>> = match server_reports {
        Some(reports) => reports.into_iter().map(Ok).collect(),
        None => MonteCarlo::new(args.trials, args.seed)
            .run(|seed| run_one(&args, &adv, seed, &topology)),
    };
    let mut slots = Vec::new();
    let mut successes = 0u64;
    for r in &reports {
        match r {
            Ok(r) => {
                slots.push(r.slots as f64);
                // Open-world (lease) runs never terminate, so "success"
                // is the ledger's verdict; closed-world runs keep the
                // classic election criterion.
                successes += if args.lease_beacon.is_some() {
                    (r.outcome() == jle_engine::Outcome::Elected) as u64
                } else {
                    r.leader_elected() as u64
                };
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let summary = jle_analysis::Summary::of(&slots).expect("non-empty");
    println!(
        "{}",
        serde_json::to_string_pretty(&json!({
            "config": {
                "n": args.n, "protocol": args.protocol, "eps": args.eps,
                "adversary": adv.label(), "cd": format!("{:?}", args.cd),
                "base_seed": args.seed, "trials": args.trials, "noise": args.noise,
            },
            "success_rate": successes as f64 / args.trials as f64,
            "slots": {
                "mean": summary.mean, "median": summary.median,
                "p90": summary.p90, "p99": summary.p99,
                "min": summary.min, "max": summary.max,
            },
        }))
        .expect("json")
    );
}
