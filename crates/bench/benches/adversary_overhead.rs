//! Criterion: per-slot cost of jamming strategies (decision + budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jle_adversary::{AdversarySpec, JamBudget, JamStrategyKind, Rate};
use jle_radio::{ChannelHistory, SlotTruth};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

const SLOTS: u64 = 100_000;

fn drive(spec: &AdversarySpec) -> u64 {
    let mut strategy = spec.strategy();
    let mut budget = spec.budget();
    let mut history = ChannelHistory::new(4096);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut jams = 0u64;
    for _ in 0..SLOTS {
        let want = strategy.decide(&history, &budget, &mut rng);
        let jam = want && budget.can_jam();
        budget.advance(jam);
        history.push(&SlotTruth::new(jams % 3, jam));
        jams += jam as u64;
    }
    jams
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_slots");
    group.throughput(Throughput::Elements(SLOTS));
    let eps = Rate::from_f64(0.3);
    let kinds: Vec<(&str, JamStrategyKind)> = vec![
        ("none", JamStrategyKind::None),
        ("saturating", JamStrategyKind::Saturating),
        ("periodic", JamStrategyKind::PeriodicFront),
        ("random", JamStrategyKind::Random { prob: 0.5 }),
        ("reactive", JamStrategyKind::ReactiveNull),
        (
            "adaptive",
            JamStrategyKind::AdaptiveEstimator {
                n: 1 << 16,
                protocol_eps: 0.3,
                band: 3.0,
                initial_u: 0.0,
            },
        ),
    ];
    for (name, kind) in kinds {
        let spec = AdversarySpec::new(eps, 64, kind);
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| black_box(drive(spec)))
        });
    }
    group.finish();
}

fn bench_budget_window_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_try_jam");
    group.throughput(Throughput::Elements(SLOTS));
    for t in [4u64, 256, 16_384] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let mut budget = JamBudget::new(Rate::from_f64(0.3), t);
                let mut jams = 0u64;
                for _ in 0..SLOTS {
                    jams += budget.try_jam() as u64;
                }
                black_box(jams)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_strategies, bench_budget_window_sizes
}
criterion_main!(benches);
