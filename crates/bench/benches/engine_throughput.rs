//! Criterion: per-slot simulation cost — cohort (n-independent) vs exact
//! (O(n) per slot). Counterpart of experiment E15(b).
//!
//! Each engine is measured twice: `fresh` allocates every run (the plain
//! `run_*` shims), `arena` reuses one [`SimArena`] across iterations
//! (`run_*_in`). The arena must be no slower on the cohort engine (it has
//! almost nothing to reuse) and faster on the exact engine, whose per-run
//! station/buffer allocations the arena amortizes away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{
    run_batch_uniform, run_cohort, run_cohort_in, run_exact, run_exact_in, run_fast_exact,
    run_fast_exact_in, CohortStations, EngineMetrics, PerStation, SimArena, SimConfig, SimCore,
    TelemetryObserver, UniformProtocol,
};
use jle_radio::{CdModel, ChannelState};
use jle_telemetry::MetricRegistry;
use std::hint::black_box;

/// Never-resolving workload: every station always transmits.
#[derive(Debug, Clone)]
struct AlwaysCollide;
impl UniformProtocol for AlwaysCollide {
    fn tx_prob(&mut self, _: u64) -> f64 {
        1.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {}
    fn reset(&mut self) -> bool {
        true // stateless: the arena can recycle the station boxes
    }
}

fn sat() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 64, JamStrategyKind::Saturating)
}

fn bench_cohort(c: &mut Criterion) {
    let mut group = c.benchmark_group("cohort_slots");
    const SLOTS: u64 = 50_000;
    group.throughput(Throughput::Elements(SLOTS));
    for k in [10u32, 16, 20] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_cohort(&config, &adv, || AlwaysCollide))
            })
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, &n| {
            let adv = sat();
            let mut arena = SimArena::new();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_cohort_in(&config, &adv, || AlwaysCollide, &mut arena))
            })
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_slots");
    const SLOTS: u64 = 2_000;
    group.throughput(Throughput::Elements(SLOTS));
    for k in [6u32, 8, 10] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_exact(&config, &adv, |_| Box::new(PerStation::new(AlwaysCollide))))
            })
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, &n| {
            let adv = sat();
            let mut arena = SimArena::new();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_exact_in(
                    &config,
                    &adv,
                    |_| Box::new(PerStation::new(AlwaysCollide)),
                    &mut arena,
                ))
            })
        });
    }
    group.finish();
}

fn bench_exact_short(c: &mut Criterion) {
    // Election-scale runs: a jammed election resolves in tens of slots,
    // so Monte-Carlo loops run *short* exact simulations back to back and
    // per-run setup — n station boxes allocated, initialized, and dropped,
    // plus the flag buffers and history ring — is a real fraction of the
    // work. This is the regime the arena exists for: `AlwaysCollide` is
    // resettable, so the arena arm recycles every station box in place
    // (allocation-free steady state). The long-run groups above only have
    // to show the arena is never slower.
    let mut group = c.benchmark_group("exact_short_runs");
    const SLOTS: u64 = 16;
    group.sample_size(30);
    group.throughput(Throughput::Elements(SLOTS));
    for k in [8u32, 10] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_exact(&config, &adv, |_| Box::new(PerStation::new(AlwaysCollide))))
            })
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, &n| {
            let adv = sat();
            let mut arena = SimArena::new();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_exact_in(
                    &config,
                    &adv,
                    |_| Box::new(PerStation::new(AlwaysCollide)),
                    &mut arena,
                ))
            })
        });
        // The bitset fast path on the same short-run workload: the
        // single-trial baseline the batched backend is measured against
        // (see `batch_throughput` below and the `batch_speedup` gate arm).
        group.bench_with_input(BenchmarkId::new("fast_exact", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_fast_exact(&config, &adv, |_| {
                    Box::new(PerStation::new(AlwaysCollide))
                }))
            })
        });
    }
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    // The batched-backend tentpole measurement: K election-scale trials
    // per call, SoA lockstep, vs the same K trials run one at a time
    // through the fast-exact backend. `AlwaysCollide` keeps every trial
    // alive for the full slot budget (uniform never-resolving workload,
    // the degenerate p == 1.0 word path), so both arms do K × SLOTS slots
    // of work and the ratio is pure backend overhead. Throughput is in
    // trials; the acceptance bar (>= 10x at election scale) is gated by
    // `bench_gate --batch-speedup-threshold` and recorded in
    // results/BENCH.json.
    let mut group = c.benchmark_group("batch_throughput");
    const SLOTS: u64 = 16;
    const TRIALS: u64 = 256;
    group.sample_size(30);
    group.throughput(Throughput::Elements(TRIALS));
    let seeds: Vec<u64> = (0..TRIALS).map(|t| 7 + t).collect();
    for k in [8u32, 10] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::new("per_trial", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                for &seed in &seeds {
                    let config =
                        SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(SLOTS);
                    black_box(run_fast_exact(&config, &adv, |_| {
                        Box::new(PerStation::new(AlwaysCollide))
                    }));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_max_slots(SLOTS);
                black_box(run_batch_uniform(&config, &adv, &seeds, || AlwaysCollide))
            })
        });
    }
    group.finish();
}

/// Sleep-heavy, never-resolving workload for the fast backend: awake one
/// slot in `period` (always transmitting — 1024 awake stations collide
/// forever, so runs always walk the full slot budget), asleep otherwise,
/// with an honest `wake_hint`. The legacy backend still steps all `n`
/// stations every slot; the active-set backend touches only the awake
/// `n/period`.
#[derive(Debug)]
struct DutySleeper {
    period: u64,
    phase: u64,
}

impl jle_engine::Protocol for DutySleeper {
    fn act(&mut self, slot: u64, _: &mut dyn rand::RngCore) -> jle_engine::Action {
        if slot % self.period == self.phase {
            jle_engine::Action::Transmit
        } else {
            jle_engine::Action::Sleep
        }
    }
    fn feedback(&mut self, _: u64, _: bool, _: jle_radio::Observation) {}
    fn status(&self) -> jle_engine::Status {
        jle_engine::Status::Running
    }
    fn wake_hint(&self, slot: u64) -> u64 {
        let next = slot + 1;
        next + (self.phase + self.period - next % self.period) % self.period
    }
}

fn bench_fast_exact(c: &mut Criterion) {
    // The tentpole measurement: legacy O(n)-per-slot backend vs the
    // active-set backend on a duty-cycled (sleep-heavy) network. The
    // acceptance bar is fast >= 5x legacy at n = 65536 with period 64;
    // the recorded figures in results/BENCH.json track the trajectory.
    let mut group = c.benchmark_group("fast_exact");
    const SLOTS: u64 = 256;
    const PERIOD: u64 = 64;
    group.throughput(Throughput::Elements(SLOTS));
    let factory = |i: u64| {
        Box::new(DutySleeper { period: PERIOD, phase: i % PERIOD }) as Box<dyn jle_engine::Protocol>
    };
    {
        let n = 1u64 << 16;
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_exact(&config, &adv, factory))
            })
        });
        group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_fast_exact(&config, &adv, factory))
            })
        });
        group.bench_with_input(BenchmarkId::new("fast_arena", n), &n, |b, &n| {
            let adv = sat();
            let mut arena = SimArena::new();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_fast_exact_in(&config, &adv, factory, &mut arena))
            })
        });
    }
    // Million-station arm: fast backend only — the legacy backend at this
    // scale is the problem the backend exists to solve (~100x the work).
    let n = 1u64 << 20;
    group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, &n| {
        let adv = sat();
        b.iter(|| {
            let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
            black_box(run_fast_exact(&config, &adv, factory))
        })
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // A/B for the telemetry tax on the hot loop, same machine, same
    // binary. `disabled` is the default path every Monte-Carlo trial
    // takes (no observer attached — the per-slot cost is an iteration
    // over an empty observer list), and is the arm held to the <2%
    // regression budget against the pre-telemetry baseline in
    // results/BENCH.json. `enabled` attaches the full stack — slot ring,
    // engine metric counters, per-slot channel-state tallies — and is
    // expected to cost real time on this cheapest-possible workload
    // (~20 ns/slot); it is recorded to keep the enabled tax honest, not
    // held to the 2% budget.
    let mut group = c.benchmark_group("telemetry_cohort");
    const SLOTS: u64 = 50_000;
    const N: u64 = 1 << 16;
    group.throughput(Throughput::Elements(SLOTS));
    group.bench_function(BenchmarkId::new("disabled", N), |b| {
        let adv = sat();
        b.iter(|| {
            let config = SimConfig::new(N, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
            black_box(run_cohort(&config, &adv, || AlwaysCollide))
        })
    });
    group.bench_function(BenchmarkId::new("enabled", N), |b| {
        let adv = sat();
        let registry = MetricRegistry::new();
        let metrics = EngineMetrics::register(&registry);
        b.iter(|| {
            let config = SimConfig::new(N, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
            let mut obs = TelemetryObserver::new(&config).with_metrics(metrics.clone());
            let mut stations = CohortStations::new(AlwaysCollide);
            black_box(SimCore::new(&config, &adv).observe(&mut obs).run(&mut stations))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cohort, bench_exact, bench_exact_short, bench_batch_throughput,
        bench_fast_exact, bench_telemetry
}
criterion_main!(benches);
