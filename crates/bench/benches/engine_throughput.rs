//! Criterion: per-slot simulation cost — cohort (n-independent) vs exact
//! (O(n) per slot). Counterpart of experiment E15(b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{run_cohort, run_exact, PerStation, SimConfig, UniformProtocol};
use jle_radio::{CdModel, ChannelState};
use std::hint::black_box;

/// Never-resolving workload: every station always transmits.
#[derive(Debug, Clone)]
struct AlwaysCollide;
impl UniformProtocol for AlwaysCollide {
    fn tx_prob(&mut self, _: u64) -> f64 {
        1.0
    }
    fn on_state(&mut self, _: u64, _: ChannelState) {}
}

fn sat() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.5), 64, JamStrategyKind::Saturating)
}

fn bench_cohort(c: &mut Criterion) {
    let mut group = c.benchmark_group("cohort_slots");
    const SLOTS: u64 = 50_000;
    group.throughput(Throughput::Elements(SLOTS));
    for k in [10u32, 16, 20] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_cohort(&config, &adv, || AlwaysCollide))
            })
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_slots");
    const SLOTS: u64 = 2_000;
    group.throughput(Throughput::Elements(SLOTS));
    for k in [6u32, 8, 10] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let adv = sat();
            b.iter(|| {
                let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(SLOTS);
                black_box(run_exact(&config, &adv, |_| Box::new(PerStation::new(AlwaysCollide))))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cohort, bench_exact
}
criterion_main!(benches);
