//! Criterion: the `(T, 1−ε)` budget enforcer in isolation — the hot inner
//! loop of every simulated slot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jle_adversary::{JamBudget, Rate};
use std::hint::black_box;

const OPS: u64 = 1_000_000;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_patterns");
    group.throughput(Throughput::Elements(OPS));

    group.bench_function("greedy", |b| {
        b.iter(|| {
            let mut budget = JamBudget::new(Rate::from_f64(0.5), 256);
            let mut total = 0u64;
            for _ in 0..OPS {
                total += budget.try_jam() as u64;
            }
            black_box(total)
        })
    });

    group.bench_function("skip_only", |b| {
        b.iter(|| {
            let mut budget = JamBudget::new(Rate::from_f64(0.5), 256);
            for _ in 0..OPS {
                budget.skip();
            }
            black_box(budget.now())
        })
    });

    group.bench_function("alternating", |b| {
        b.iter(|| {
            let mut budget = JamBudget::new(Rate::from_f64(0.5), 256);
            let mut total = 0u64;
            for i in 0..OPS {
                if i % 2 == 0 {
                    total += budget.try_jam() as u64;
                } else {
                    budget.skip();
                }
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_eps_extremes(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_eps");
    group.throughput(Throughput::Elements(OPS));
    for (name, eps) in [("tiny_eps", 0.01), ("half", 0.5), ("large_eps", 0.99)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &eps, |b, &eps| {
            b.iter(|| {
                let mut budget = JamBudget::new(Rate::from_f64(eps), 1024);
                let mut total = 0u64;
                for _ in 0..OPS {
                    total += budget.try_jam() as u64;
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_patterns, bench_eps_extremes
}
criterion_main!(benches);
