//! Criterion: wall-clock cost of complete elections per protocol and
//! adversary (the micro-benchmark counterpart of experiments E1/E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{run_cohort, SimConfig};
use jle_protocols::{ArssMacProtocol, BackoffProtocol, LeskProtocol, LesuProtocol};
use jle_radio::CdModel;
use std::hint::black_box;

fn sat(eps: f64, t: u64) -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(eps), t, JamStrategyKind::Saturating)
}

fn bench_lesk_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("lesk_election");
    for k in [8u32, 12, 16] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::new("no_jam", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let config =
                    SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(10_000_000);
                black_box(run_cohort(&config, &AdversarySpec::passive(), || LeskProtocol::new(0.5)))
            })
        });
        group.bench_with_input(BenchmarkId::new("saturating", n), &n, |b, &n| {
            let adv = sat(0.5, 32);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let config =
                    SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(10_000_000);
                black_box(run_cohort(&config, &adv, || LeskProtocol::new(0.5)))
            })
        });
    }
    group.finish();
}

fn bench_protocol_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols_n1024_saturating");
    let n = 1024u64;
    let adv = sat(0.5, 32);
    group.bench_function("lesk", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(10_000_000);
            black_box(run_cohort(&config, &adv, || LeskProtocol::new(0.5)))
        })
    });
    group.bench_function("lesu", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(100_000_000);
            black_box(run_cohort(&config, &adv, LesuProtocol::new))
        })
    });
    group.bench_function("arss", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(100_000_000);
            black_box(run_cohort(&config, &adv, || {
                ArssMacProtocol::new(ArssMacProtocol::recommended_gamma(n, 32))
            }))
        })
    });
    group.bench_function("backoff_no_jam", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(10_000_000);
            black_box(run_cohort(&config, &AdversarySpec::passive(), BackoffProtocol::new))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lesk_by_n, bench_protocol_comparison
}
criterion_main!(benches);
