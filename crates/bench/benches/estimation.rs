//! Criterion: the `Estimation(2)` primitive and full LESU stacks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{run_cohort, SimConfig};
use jle_protocols::{EstimationProtocol, LesuProtocol};
use jle_radio::CdModel;
use std::hint::black_box;

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimation");
    for k in [8u32, 14, 20] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::new("clean", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let config =
                    SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(10_000_000);
                black_box(run_cohort(&config, &AdversarySpec::passive(), {
                    EstimationProtocol::paper
                }))
            })
        });
    }
    group.finish();
}

fn bench_lesu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lesu_full_stack");
    group.sample_size(10);
    let adv = AdversarySpec::new(Rate::from_f64(0.5), 32, JamStrategyKind::Saturating);
    for k in [8u32, 12] {
        let n = 1u64 << k;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let config =
                    SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(100_000_000);
                black_box(run_cohort(&config, &adv, LesuProtocol::new))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimation, bench_lesu
}
criterion_main!(benches);
