//! Criterion: what the orchestrator costs on top of raw `MonteCarlo`.
//!
//! Three arms over the identical workload (a small LESK election sweep):
//!
//! * **direct** — `MonteCarlo::run`, no fingerprinting, no store;
//! * **cold** — orchestrator with a fresh cache dir every iteration
//!   (fingerprint + simulate + atomic chunk writes);
//! * **warm** — orchestrator against a fully populated cache (fingerprint
//!   + shard reads, zero trials executed).
//!
//! The interesting numbers are the cold-vs-direct gap (write overhead,
//! should be small relative to simulation) and the warm arm's absolute
//! time (how cheap a fully cached re-run is).

use criterion::{criterion_group, criterion_main, Criterion};
use jle_adversary::{AdversarySpec, JamStrategyKind, Rate};
use jle_engine::{run_cohort, MonteCarlo, RunReport, SimConfig};
use jle_orchestrator::{Orchestrator, WorkSpec};
use jle_protocols::LeskProtocol;
use jle_radio::CdModel;
use std::hint::black_box;

const N: u64 = 64;
const EPS: f64 = 0.5;
const TRIALS: u64 = 64;
const BASE_SEED: u64 = 4_242;

fn adv() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(EPS), 32, JamStrategyKind::Saturating)
}

fn trial(seed: u64) -> RunReport {
    let config = SimConfig::new(N, CdModel::Strong).with_seed(seed).with_max_slots(100_000);
    run_cohort(&config, &adv(), || LeskProtocol::new(EPS))
}

fn spec() -> WorkSpec {
    WorkSpec::new(
        "bench",
        "overhead",
        serde_json::json!({"kind": "bench_overhead", "n": N, "eps": EPS}),
        BASE_SEED,
    )
}

fn bench_direct(c: &mut Criterion) {
    c.bench_function("orchestrator_overhead/direct_monte_carlo", |b| {
        b.iter(|| {
            let mc = MonteCarlo::new(TRIALS, BASE_SEED);
            black_box(mc.run(trial))
        })
    });
}

fn bench_cold(c: &mut Criterion) {
    // The vendored criterion shim has no `iter_with_setup`, so the fresh
    // cache dir is prepared inside the timed closure; clearing a tiny
    // directory is noise next to 64 simulated elections.
    let dir = std::env::temp_dir().join(format!("jle-bench-cold-{}", std::process::id()));
    c.bench_function("orchestrator_overhead/cold_cache", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let orch = Orchestrator::with_cache_dir(&dir).expect("cache dir");
            black_box(orch.run_trials::<RunReport, _>(&spec(), TRIALS, trial))
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_warm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("jle-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let orch = Orchestrator::with_cache_dir(&dir).expect("cache dir");
    // Populate once; every timed iteration is then a pure cache hit.
    orch.run_trials::<RunReport, _>(&spec(), TRIALS, trial);
    c.bench_function("orchestrator_overhead/warm_cache", |b| {
        b.iter(|| black_box(orch.run_trials::<RunReport, _>(&spec(), TRIALS, trial)))
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_direct, bench_cold, bench_warm
}
criterion_main!(benches);
