//! End-to-end smoke test for the experiments CLI's telemetry exports:
//! `--metrics-out` must produce a schema-valid versioned snapshot (plus
//! Prometheus text exposition), `--trace-out` a well-formed Chrome
//! `trace_event` document, and `--flight-recorder` parseable postmortem
//! artifacts. This is the CI telemetry-smoke entry point — it shells out
//! to the real binary, so flag parsing and exit-time export paths are
//! covered, not just the library APIs.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("jle-telemetry-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_json(path: &Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not valid JSON: {e:?}", path.display()))
}

#[test]
fn cli_exports_are_schema_valid() {
    let dir = workdir("cli");
    let metrics = dir.join("metrics.jsonl");
    let trace = dir.join("trace.json");
    let flight = dir.join("flight");

    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .current_dir(&dir)
        .args([
            "--quick",
            "--no-cache",
            "--no-progress",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--flight-recorder",
            flight.to_str().unwrap(),
            "e24",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("experiments binary runs");
    assert!(status.success(), "experiments e24 must exit 0");

    // Metrics snapshot: one JSONL line, versioned schema, both counter
    // families present with plausible totals.
    let text = std::fs::read_to_string(&metrics).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "one snapshot appended per run");
    let snap: Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(snap.get("schema").and_then(Value::as_str), Some("jle-metrics-v1"));
    let samples = snap.get("metrics").and_then(Value::as_seq).expect("metrics array");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing from snapshot"))
    };
    let executed = find("jle_orchestrator_executed_trials");
    assert_eq!(executed.get("type").and_then(Value::as_str), Some("counter"));
    assert!(executed.get("value").and_then(Value::as_u64).unwrap() > 0);
    let slots = find("jle_engine_slots_total");
    assert!(slots.get("value").and_then(Value::as_u64).unwrap() > 0, "engine metrics wired");
    let hist = find("jle_engine_election_slots");
    assert_eq!(hist.get("type").and_then(Value::as_str), Some("histogram"));
    assert!(hist.get("buckets").and_then(Value::as_seq).is_some(), "histogram has buckets");

    // Prometheus exposition next to the snapshot.
    let prom = std::fs::read_to_string(format!("{}.prom", metrics.display())).unwrap();
    assert!(prom.contains("# TYPE jle_orchestrator_executed_trials counter"), "{prom}");
    assert!(prom.contains("# TYPE jle_engine_election_slots histogram"), "{prom}");

    // Chrome trace: well-formed, complete events with the CLI's run and
    // experiment spans plus the orchestrator's unit/chunk spans.
    let doc = read_json(&trace);
    let events = doc.get("traceEvents").and_then(Value::as_seq).expect("traceEvents");
    assert!(!events.is_empty());
    for e in events {
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"), "complete events only");
        assert!(e.get("ts").and_then(Value::as_u64).is_some());
        assert!(e.get("dur").and_then(Value::as_u64).is_some());
    }
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Value::as_str)).collect();
    assert!(names.contains(&"run"), "CLI run span present: {names:?}");
    assert!(names.contains(&"experiment:e24"), "experiment span present: {names:?}");
    assert!(names.iter().any(|n| n.starts_with("unit:e24/")), "unit spans present");
    assert!(names.iter().any(|n| n.starts_with("chunk:")), "chunk spans present");

    // Flight recorder: e24's aggressive-watchdog arm fires restarts, so
    // artifacts must exist, parse, and carry seed + fingerprint.
    let mut artifacts: Vec<PathBuf> =
        std::fs::read_dir(&flight).unwrap().map(|e| e.unwrap().path()).collect();
    artifacts.sort();
    assert!(!artifacts.is_empty(), "anomalous trials must leave postmortems");
    for path in &artifacts {
        let record = read_json(path);
        assert_eq!(record.get("schema").and_then(Value::as_str), Some("jle-flight-v1"));
        assert!(record.get("seed").and_then(Value::as_u64).is_some());
        assert!(record.get("fingerprint").and_then(Value::as_str).is_some());
        assert!(record.get("replay").and_then(Value::as_str).is_some());
        assert!(record.get("events").and_then(Value::as_seq).is_some());
    }

    let _ = std::fs::remove_dir_all(&dir);
}
