//! End-to-end cache semantics at the experiment level (ISSUE acceptance):
//!
//! * a re-run of a completed experiment executes **zero** trials and
//!   reproduces byte-identical markdown and CSV;
//! * a sweep killed mid-flight (chunk-budget hook) and resumed with the
//!   `Resume` policy is bit-identical to an uninterrupted run.

use jle_bench::experiments::run_by_id;
use jle_bench::ExpContext;
use jle_orchestrator::{CachePolicy, Orchestrator};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jle-bench-cache-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ctx_with(dir: &PathBuf, policy: CachePolicy) -> ExpContext {
    let orch = Orchestrator::with_cache_dir(dir).expect("cache dir").policy(policy);
    ExpContext::new(true, Arc::new(orch))
}

/// Render every artifact the CLI would write, for byte comparison.
fn artifacts(r: &jle_bench::ExperimentResult) -> Vec<String> {
    let mut out = vec![r.to_markdown()];
    out.extend(r.tables.iter().map(|(_, t)| t.to_csv()));
    out
}

#[test]
fn warm_rerun_executes_zero_trials_and_is_byte_identical() {
    let dir = tmp_dir("warm");

    let cold = ctx_with(&dir, CachePolicy::Complete);
    let r1 = run_by_id("e2", &cold).expect("e2 exists");
    let s1 = cold.orchestrator().stats_snapshot();
    assert!(s1.executed_trials > 0, "cold run must simulate");
    assert_eq!(s1.cached_trials, 0, "cold run starts from an empty store");

    let warm = ctx_with(&dir, CachePolicy::Complete);
    let r2 = run_by_id("e2", &warm).expect("e2 exists");
    let s2 = warm.orchestrator().stats_snapshot();
    assert_eq!(s2.executed_trials, 0, "warm re-run must execute zero trials: {s2:?}");
    assert_eq!(s2.cached_trials, s2.planned_trials, "every trial served from the store");
    assert_eq!(artifacts(&r1), artifacts(&r2), "cached replay must be byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    // Uninterrupted reference run, no cache involved.
    let reference = run_by_id("e22", &ExpContext::ephemeral(true)).expect("e22 exists");

    // Kill the sweep mid-flight: the chunk budget lets one chunk land
    // in the store, then aborts the run the way a SIGKILL would (minus
    // the torn file, which the atomic rename rules out anyway).
    let dir = tmp_dir("resume");
    let killed = {
        let orch = Orchestrator::with_cache_dir(&dir).expect("cache dir").chunk_budget(1);
        ExpContext::new(true, Arc::new(orch))
    };
    let death = catch_unwind(AssertUnwindSafe(|| run_by_id("e22", &killed)));
    assert!(death.is_err(), "the chunk budget must abort the sweep mid-flight");
    let partial = killed.orchestrator().stats_snapshot();
    assert!(partial.executed_trials > 0, "some chunks must have completed before the kill");

    // Resume against the same store: partial chunks are reused, the rest
    // is recomputed, and the tables match the uninterrupted run exactly.
    let resumed_ctx = ctx_with(&dir, CachePolicy::Resume);
    let resumed = run_by_id("e22", &resumed_ctx).expect("e22 exists");
    let s = resumed_ctx.orchestrator().stats_snapshot();
    assert!(s.cached_trials > 0, "resume must reuse the pre-kill chunks: {s:?}");
    assert!(s.executed_trials < s.planned_trials, "resume must not recompute everything: {s:?}");
    assert_eq!(
        artifacts(&reference),
        artifacts(&resumed),
        "resumed run must be bit-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
