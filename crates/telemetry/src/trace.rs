//! Cross-process trace propagation: a [`TraceContext`] names one causal
//! tree of spans (trace id) and the position a remote child should attach
//! under (parent span id).
//!
//! A client mints one context per logical operation (`TraceContext::mint`
//! derives a process-unique trace id from wall time, pid, and a
//! monotonic counter), stamps its own [`SpanRecorder`](crate::SpanRecorder)
//! with it, and ships the context over the wire as a small JSON object.
//! The server side rebuilds the context, stamps its own recorder, and
//! every span either process records carries the same trace id — so the
//! merged Chrome trace shows one submit→result critical path even though
//! the spans were recorded by different processes on different clocks.

use serde::{Deserialize, Error, Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one causal span tree across process boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace id shared by every span of the tree (never 0).
    pub trace_id: u64,
    /// The span id of the remote parent the receiver should attach its
    /// root spans under (0 = attach at the trace root).
    pub parent_span: u64,
}

/// Process-wide mint counter: makes contexts minted in the same
/// nanosecond tick distinct.
static MINT_SEQ: AtomicU64 = AtomicU64::new(0);

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TraceContext {
    /// Mint a fresh root context (unique trace id, no parent yet).
    pub fn mint() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = MINT_SEQ.fetch_add(1, Ordering::Relaxed);
        let raw = mix64(nanos ^ mix64(u64::from(std::process::id()) ^ seq.rotate_left(17)));
        TraceContext { trace_id: raw.max(1), parent_span: 0 }
    }

    /// The same trace, re-rooted under span `parent_span` (what a caller
    /// ships to a callee whose spans should nest under one of its own).
    pub fn with_parent(self, parent_span: u64) -> Self {
        TraceContext { parent_span, ..self }
    }

    /// The trace id as the 16-hex-digit string used in trace exports.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

impl Serialize for TraceContext {
    fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("trace_id".into(), Value::Str(self.trace_hex())),
            ("parent_span".into(), Value::U64(self.parent_span)),
        ])
    }
}

impl Deserialize for TraceContext {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let hex = v
            .get("trace_id")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing_field("TraceContext", "trace_id"))?;
        let trace_id = u64::from_str_radix(hex, 16)
            .map_err(|_| Error::custom(format!("trace_id is not a hex u64: {hex:?}")))?;
        if trace_id == 0 {
            return Err(Error::custom("trace_id must be non-zero"));
        }
        let parent_span = v.get("parent_span").and_then(Value::as_u64).unwrap_or(0);
        Ok(TraceContext { trace_id, parent_span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_yields_distinct_nonzero_ids() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id, "two mints must not collide");
        assert_eq!(a.parent_span, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF_0123, parent_span: 42 };
        let text = serde_json::to_string(&ctx).unwrap();
        assert!(text.contains("0000deadbeef0123"), "{text}");
        let back: TraceContext = serde_json::from_str(&text).unwrap();
        assert_eq!(back, ctx);
    }

    #[test]
    fn zero_trace_id_is_rejected() {
        let r: Result<TraceContext, _> =
            serde_json::from_str(r#"{"trace_id":"0000000000000000","parent_span":0}"#);
        assert!(r.is_err());
    }

    #[test]
    fn with_parent_keeps_the_trace() {
        let ctx = TraceContext::mint();
        let child = ctx.with_parent(99);
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_eq!(child.parent_span, 99);
    }
}
