//! Typed metric registry: counters, gauges, and log₂-bucketed histograms
//! with Prometheus text exposition and a versioned JSONL snapshot export.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! over atomics — register once, then update lock-free from any thread.
//! Registration is idempotent: asking for an existing name returns the
//! same underlying metric, so independent subsystems can share a counter
//! by name. Names follow the `jle_<crate>_<name>` convention and must be
//! valid Prometheus metric names (`[a-zA-Z_:][a-zA-Z0-9_:]*`).

use serde::{Deserialize, Error, Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter handle (`u64`, relaxed atomics).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not attached to any registry (useful in
    /// tests and as a cheap default).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle (`f64` stored as bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: one for zero plus one per power of two
/// (bucket `i ≥ 1` covers `[2^(i−1), 2^i − 1]`; bucket 64 tops out at
/// `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed histogram handle over `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i − 1]`, so `u64::MAX` lands in bucket 64. The sum
/// saturates at `u64::MAX` rather than wrapping.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

/// Bucket index for an observation (see [`Histogram`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A free-standing histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // Saturating add via CAS loop; contention here is negligible (one
        // observation per trial, not per slot).
        let mut cur = self.0.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self.0.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (index = [`bucket_index`]).
    pub fn buckets(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct MetricEntry {
    name: String,
    help: String,
    handle: Handle,
}

/// A named collection of metrics; clones share the same underlying set.
///
/// ```
/// let reg = jle_telemetry::MetricRegistry::new();
/// let trials = reg.counter("jle_demo_trials", "trials executed");
/// trials.add(3);
/// assert!(reg.render_prometheus().contains("jle_demo_trials 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    entries: Arc<Mutex<Vec<MetricEntry>>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    fn register(&self, name: &str, help: &str, make: impl FnOnce() -> Handle) -> Handle {
        assert!(valid_metric_name(name), "invalid Prometheus metric name: {name:?}");
        let mut entries = self.entries.lock().expect("metric registry");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return e.handle.clone();
        }
        let handle = make();
        entries.push(MetricEntry {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Register (or fetch) a counter.
    ///
    /// # Panics
    /// Panics if `name` is not a valid metric name or is already
    /// registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, || Handle::Counter(Counter::default())) {
            Handle::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or fetch) a gauge. Panics like [`MetricRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, || Handle::Gauge(Gauge::default())) {
            Handle::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or fetch) a histogram. Panics like
    /// [`MetricRegistry::counter`].
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, || Handle::Histogram(Histogram::default())) {
            Handle::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Render every registered metric in Prometheus text exposition
    /// format (version 0.0.4), in registration order.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("metric registry");
        let mut out = String::new();
        for e in entries.iter() {
            out.push_str(&format!("# HELP {} {}\n", e.name, escape_help(&e.help)));
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.handle.kind()));
            match &e.handle {
                Handle::Counter(c) => out.push_str(&format!("{} {}\n", e.name, c.get())),
                Handle::Gauge(g) => out.push_str(&format!("{} {}\n", e.name, g.get())),
                Handle::Histogram(h) => {
                    let buckets = h.buckets();
                    let mut cum = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cum += b;
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            e.name,
                            escape_label(&bucket_upper_bound(i).to_string()),
                            cum
                        ));
                    }
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", e.name, h.count()));
                    out.push_str(&format!("{}_sum {}\n", e.name, h.sum()));
                    out.push_str(&format!("{}_count {}\n", e.name, h.count()));
                }
            }
        }
        out
    }

    /// Copy the registry into a serializable, versioned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metric registry");
        MetricsSnapshot {
            schema: crate::SCHEMA_VERSION,
            metrics: entries
                .iter()
                .map(|e| MetricSample {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    sample: match &e.handle {
                        Handle::Counter(c) => SampleValue::Counter(c.get()),
                        Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                        Handle::Histogram(h) => SampleValue::Histogram {
                            count: h.count(),
                            sum: h.sum(),
                            buckets: h.buckets(),
                        },
                    },
                })
                .collect(),
        }
    }

    /// Append one snapshot line (JSONL) to `path`, creating parent
    /// directories as needed.
    pub fn write_snapshot_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let line = serde_json::to_string(&self.snapshot())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(f, "{line}")
    }

    /// Write the Prometheus exposition to `path` (overwriting).
    pub fn write_prometheus(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.render_prometheus())
    }
}

/// `true` iff `name` matches `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escape a HELP line per the exposition format: backslash and newline.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value per the exposition format: backslash, newline,
/// and double quote.
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('"', "\\\"")
}

/// One metric's value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Observation count.
        count: u64,
        /// Saturating observation sum.
        sum: u64,
        /// Per-bucket counts, index = [`bucket_index`].
        buckets: Vec<u64>,
    },
}

/// One named metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (`jle_<crate>_<name>`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// The value.
    pub sample: SampleValue,
}

/// A point-in-time, versioned copy of a [`MetricRegistry`] — the payload
/// of the `--metrics-out` JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Snapshot schema version ([`crate::SCHEMA_VERSION`]).
    pub schema: u32,
    /// All registered metrics, in registration order.
    pub metrics: Vec<MetricSample>,
}

impl Serialize for MetricSample {
    fn to_json_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("help".into(), Value::Str(self.help.clone())),
        ];
        match &self.sample {
            SampleValue::Counter(v) => {
                m.push(("type".into(), Value::Str("counter".into())));
                m.push(("value".into(), Value::U64(*v)));
            }
            SampleValue::Gauge(v) => {
                m.push(("type".into(), Value::Str("gauge".into())));
                m.push(("value".into(), Value::F64(*v)));
            }
            SampleValue::Histogram { count, sum, buckets } => {
                m.push(("type".into(), Value::Str("histogram".into())));
                m.push(("count".into(), Value::U64(*count)));
                m.push(("sum".into(), Value::U64(*sum)));
                m.push((
                    "buckets".into(),
                    Value::Seq(buckets.iter().map(|&b| Value::U64(b)).collect()),
                ));
            }
        }
        Value::Map(m)
    }
}

impl Deserialize for MetricSample {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing_field("MetricSample", "name"))?
            .to_string();
        let help = v.get("help").and_then(Value::as_str).unwrap_or("").to_string();
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing_field("MetricSample", "type"))?;
        let sample = match ty {
            "counter" => SampleValue::Counter(
                v.get("value")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| Error::missing_field("MetricSample", "value"))?,
            ),
            "gauge" => SampleValue::Gauge(
                v.get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| Error::missing_field("MetricSample", "value"))?,
            ),
            "histogram" => SampleValue::Histogram {
                count: v
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| Error::missing_field("MetricSample", "count"))?,
                sum: v
                    .get("sum")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| Error::missing_field("MetricSample", "sum"))?,
                buckets: v
                    .get("buckets")
                    .and_then(Value::as_seq)
                    .ok_or_else(|| Error::missing_field("MetricSample", "buckets"))?
                    .iter()
                    .map(|b| {
                        b.as_u64().ok_or_else(|| Error::custom("histogram bucket must be a u64"))
                    })
                    .collect::<Result<Vec<u64>, Error>>()?,
            },
            other => return Err(Error::custom(format!("unknown metric type {other:?}"))),
        };
        Ok(MetricSample { name, help, sample })
    }
}

impl Serialize for MetricsSnapshot {
    fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("schema".into(), Value::Str(format!("jle-metrics-v{}", self.schema))),
            (
                "metrics".into(),
                Value::Seq(self.metrics.iter().map(Serialize::to_json_value).collect()),
            ),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let schema_str = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing_field("MetricsSnapshot", "schema"))?;
        let schema = schema_str
            .strip_prefix("jle-metrics-v")
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| {
            Error::custom(format!("unrecognized snapshot schema {schema_str:?}"))
        })?;
        let metrics = v
            .get("metrics")
            .and_then(Value::as_seq)
            .ok_or_else(|| Error::missing_field("MetricsSnapshot", "metrics"))?
            .iter()
            .map(MetricSample::from_json_value)
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(MetricsSnapshot { schema, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip_values() {
        let reg = MetricRegistry::new();
        let c = reg.counter("jle_test_trials", "trials");
        let g = reg.gauge("jle_test_fraction", "fraction");
        c.add(41);
        c.inc();
        g.set(0.25);
        assert_eq!(c.get(), 42);
        assert_eq!(g.get(), 0.25);
        // Idempotent registration returns the same handle.
        let c2 = reg.counter("jle_test_trials", "trials");
        c2.inc();
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn histogram_bucket_boundaries_including_zero_and_max() {
        // Satellite: bucket edges at 0, powers of two, and u64::MAX.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        let h = Histogram::detached();
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        h.observe(u64::MAX); // sum saturates instead of wrapping
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[64], 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), u64::MAX, "sum saturates at u64::MAX");
    }

    #[test]
    fn every_value_lands_in_its_declared_bucket() {
        for i in 0..HISTOGRAM_BUCKETS {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i > 0 {
                let lo = bucket_upper_bound(i - 1) + 1;
                assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            }
        }
    }

    #[test]
    fn prometheus_exposition_shape_and_escaping() {
        let reg = MetricRegistry::new();
        let c = reg.counter("jle_test_total", "line one\nline two with back\\slash");
        c.add(7);
        let h = reg.histogram("jle_test_slots", "slots");
        h.observe(0);
        h.observe(5);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP jle_test_total line one\\nline two with back\\\\slash"));
        assert!(text.contains("# TYPE jle_test_total counter"));
        assert!(text.contains("jle_test_total 7"));
        assert!(text.contains("# TYPE jle_test_slots histogram"));
        assert!(text.contains("jle_test_slots_bucket{le=\"0\"} 1"));
        // 5 lands in bucket [4,7]; cumulative over le="7" is 2.
        assert!(text.contains("jle_test_slots_bucket{le=\"7\"} 2"));
        assert!(text.contains("jle_test_slots_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("jle_test_slots_sum 5"));
        assert!(text.contains("jle_test_slots_count 2"));
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn metric_names_are_validated() {
        assert!(valid_metric_name("jle_engine_slots_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricRegistry::new();
        let _ = reg.counter("jle_test_x", "x");
        let _ = reg.gauge("jle_test_x", "x");
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let reg = MetricRegistry::new();
        reg.counter("jle_test_a", "a").add(3);
        reg.gauge("jle_test_b", "b").set(0.5);
        let h = reg.histogram("jle_test_c", "c");
        h.observe(9);
        h.observe(0);
        let snap = reg.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        assert!(text.contains("\"jle-metrics-v1\""));
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_rejects_unknown_schema() {
        let bad = r#"{"schema":"something-else","metrics":[]}"#;
        assert!(serde_json::from_str::<MetricsSnapshot>(bad).is_err());
    }
}
