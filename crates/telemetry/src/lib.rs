//! Observability core for the `jle-*` workspace: spans, metrics, and an
//! anomaly flight recorder.
//!
//! This crate is deliberately a *leaf* — it depends on nothing but the
//! vendored `serde`/`serde_json` shims, so every other crate (engine,
//! adversary, orchestrator, CLI) can depend on it without cycles. It
//! provides three independent facilities:
//!
//! * [`metrics`] — a process-wide [`MetricRegistry`] of named counters,
//!   gauges, and log₂-bucketed histograms, exported as Prometheus text
//!   exposition and as a versioned JSONL snapshot. Metric names follow
//!   the `jle_<crate>_<name>` convention (DESIGN.md §11).
//! * [`spans`] — a [`SpanRecorder`] of cheap begin/end spans (run →
//!   experiment → unit → chunk → trial granularity) with a Chrome
//!   `trace_event` JSON exporter, so any sweep can be profiled in
//!   `chrome://tracing` or Perfetto.
//! * [`flight`] — a fixed-size [`FlightRing`] of recent slot events plus
//!   a [`FlightRecorder`] that dumps the ring as a self-contained JSON
//!   artifact whenever an anomaly fires, including the seed and config
//!   fingerprint needed to replay the trial exactly.
//!
//! Everything here is strictly *passive*: recording a span, bumping a
//! counter, or filling the flight ring never touches simulation state or
//! RNG draw order (the engine's golden-seed suite pins this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod spans;
pub mod trace;

pub use flight::{AnomalyKind, FlightRecord, FlightRecorder, FlightRing, SlotEvent};
pub use metrics::{Counter, Gauge, Histogram, MetricRegistry, MetricsSnapshot};
pub use spans::{FlushGuard, SpanGuard, SpanRecorder};
pub use trace::TraceContext;

/// Schema version stamped into every metrics snapshot and flight-recorder
/// artifact this crate writes. Bump on any backwards-incompatible change
/// to either layout.
pub const SCHEMA_VERSION: u32 = 1;
