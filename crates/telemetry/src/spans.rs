//! Span recording with Chrome `trace_event` export.
//!
//! A [`SpanRecorder`] collects completed spans (name, category, start,
//! duration, thread) relative to its own epoch, and renders them as a
//! Chrome trace JSON document (`{"traceEvents":[...]}`, `"ph":"X"`
//! complete events) loadable in `chrome://tracing` or Perfetto.
//!
//! Spans are recorded via RAII guards: [`SpanRecorder::span`] starts the
//! clock, dropping the returned [`SpanGuard`] stops it and appends the
//! event. A disabled recorder ([`SpanRecorder::disabled`]) hands out
//! no-op guards — call sites never need to branch.
//!
//! Three facilities support end-to-end causal tracing (DESIGN.md §16):
//!
//! * **Identity** — every span gets a recorder-unique id and an optional
//!   parent id; a [`TraceContext`] stamped via
//!   [`SpanRecorder::set_trace`] tags every span with a cross-process
//!   trace id, rendered into the Chrome `args` object.
//! * **Crash safety** — spans still open are tracked in a registry;
//!   [`SpanRecorder::to_chrome_trace`] exports them truncated at "now",
//!   and [`SpanRecorder::flush_on_drop`] returns a guard that writes the
//!   trace on drop, *including during panic unwinding*, so a crashed
//!   worker yields a valid (truncated) trace instead of malformed JSON.
//! * **Merging** — [`SpanRecorder::export_events`] /
//!   [`SpanRecorder::import_events`] move spans between recorders in
//!   different processes, remapping span ids and rebasing timestamps so
//!   a client can splice a server's spans under its own submit span.

use crate::trace::TraceContext;
use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

#[derive(Debug, Clone)]
struct SpanEvent {
    name: String,
    cat: String,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    id: u64,
    parent: u64,
    /// Whether `parent` refers to a span id minted by *another* recorder
    /// (a cross-process [`TraceContext::parent_span`]). Id spaces are
    /// per-recorder, so without this flag an external parent id is
    /// ambiguous with a local one when exporting/importing.
    external_parent: bool,
    trace: u64,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    name: String,
    cat: String,
    started: Instant,
    tid: u64,
    parent: u64,
    external_parent: bool,
}

#[derive(Debug, Default)]
struct RecState {
    events: Vec<SpanEvent>,
    open: Vec<OpenSpan>,
    threads: Vec<ThreadId>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<RecState>,
    next_id: AtomicU64,
    trace_id: AtomicU64,
    parent_span: AtomicU64,
}

/// Shared recorder of completed spans (see the module docs). Clones share
/// the same buffer; recording is a short mutex-guarded push, cheap at
/// run/chunk/trial granularity (attach per-slot instrumentation to the
/// flight ring instead, which is lock-free per trial).
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    inner: Option<Arc<Inner>>,
}

impl SpanRecorder {
    /// An enabled recorder with its epoch at "now".
    pub fn new() -> Self {
        SpanRecorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(RecState::default()),
                next_id: AtomicU64::new(1),
                trace_id: AtomicU64::new(0),
                parent_span: AtomicU64::new(0),
            })),
        }
    }

    /// A recorder that drops everything; guards become no-ops.
    pub fn disabled() -> Self {
        SpanRecorder { inner: None }
    }

    /// An enabled recorder pre-stamped with `ctx` (see
    /// [`SpanRecorder::set_trace`]).
    pub fn with_trace(ctx: TraceContext) -> Self {
        let rec = SpanRecorder::new();
        rec.set_trace(ctx);
        rec
    }

    /// Whether this recorder keeps spans.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of completed spans recorded so far (open spans excluded).
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("span buffer").events.len(),
            None => 0,
        }
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans currently open (guards alive).
    pub fn open_spans(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("span buffer").open.len(),
            None => 0,
        }
    }

    /// Stamp every span recorded from now on with `ctx`: the trace id
    /// tags the span's `args.trace`, and spans without an explicit local
    /// parent attach under `ctx.parent_span` (the remote caller's span).
    /// Clones share the stamp.
    pub fn set_trace(&self, ctx: TraceContext) {
        if let Some(inner) = &self.inner {
            inner.trace_id.store(ctx.trace_id, Ordering::Relaxed);
            inner.parent_span.store(ctx.parent_span, Ordering::Relaxed);
        }
    }

    /// The stamped trace context, if any.
    pub fn trace(&self) -> Option<TraceContext> {
        let inner = self.inner.as_ref()?;
        let trace_id = inner.trace_id.load(Ordering::Relaxed);
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, parent_span: inner.parent_span.load(Ordering::Relaxed) })
    }

    /// Start a span in category `cat` (e.g. `"orchestrator"`); the span
    /// ends when the guard drops. Its parent is the recorder's stamped
    /// cross-process parent (0 when untraced).
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> SpanGuard {
        let parent = match &self.inner {
            Some(inner) => inner.parent_span.load(Ordering::Relaxed),
            None => 0,
        };
        // The stamped parent was minted by the remote caller's recorder —
        // a different id space than ours.
        self.span_raw(cat, name.into(), parent, parent != 0)
    }

    /// Start a span explicitly nested under `parent` (a live or completed
    /// span id from [`SpanGuard::id`]).
    pub fn child_span(&self, cat: &'static str, name: impl Into<String>, parent: u64) -> SpanGuard {
        self.span_raw(cat, name.into(), parent, false)
    }

    fn span_raw(
        &self,
        cat: &'static str,
        name: String,
        parent: u64,
        external_parent: bool,
    ) -> SpanGuard {
        match &self.inner {
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                {
                    let tid_owner = std::thread::current().id();
                    let mut st = inner.state.lock().expect("span buffer");
                    let tid = Self::tid_of(&mut st, tid_owner);
                    st.open.push(OpenSpan {
                        id,
                        name,
                        cat: cat.to_string(),
                        started,
                        tid,
                        parent,
                        external_parent,
                    });
                }
                SpanGuard { recorder: Some((Arc::clone(inner), id)) }
            }
            None => SpanGuard { recorder: None },
        }
    }

    /// Stable small integer for a thread (Chrome `tid`).
    fn tid_of(st: &mut RecState, id: ThreadId) -> u64 {
        match st.threads.iter().position(|t| *t == id) {
            Some(i) => i as u64,
            None => {
                st.threads.push(id);
                (st.threads.len() - 1) as u64
            }
        }
    }

    fn close(inner: &Inner, id: u64) {
        let trace = inner.trace_id.load(Ordering::Relaxed);
        let mut st = inner.state.lock().expect("span buffer");
        let Some(i) = st.open.iter().position(|o| o.id == id) else { return };
        let o = st.open.swap_remove(i);
        let ts_us = o.started.duration_since(inner.epoch).as_micros() as u64;
        let dur_us = o.started.elapsed().as_micros() as u64;
        st.events.push(SpanEvent {
            name: o.name,
            cat: o.cat,
            ts_us,
            dur_us,
            tid: o.tid,
            id,
            parent: o.parent,
            external_parent: o.external_parent,
            trace,
        });
    }

    /// All events — completed spans plus still-open spans truncated at
    /// "now" — in one snapshot.
    fn snapshot_events(&self) -> Vec<SpanEvent> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let trace = inner.trace_id.load(Ordering::Relaxed);
        let st = inner.state.lock().expect("span buffer");
        let mut out = st.events.clone();
        for o in &st.open {
            out.push(SpanEvent {
                name: o.name.clone(),
                cat: o.cat.clone(),
                ts_us: o.started.duration_since(inner.epoch).as_micros() as u64,
                dur_us: o.started.elapsed().as_micros() as u64,
                tid: o.tid,
                id: o.id,
                parent: o.parent,
                external_parent: o.external_parent,
                trace,
            });
        }
        out
    }

    fn event_to_value(e: &SpanEvent) -> Value {
        let mut args: Vec<(String, Value)> =
            vec![("span".into(), Value::U64(e.id)), ("parent".into(), Value::U64(e.parent))];
        if e.external_parent {
            args.push(("xparent".into(), Value::Bool(true)));
        }
        if e.trace != 0 {
            args.push(("trace".into(), Value::Str(format!("{:016x}", e.trace))));
        }
        Value::Map(vec![
            ("name".into(), Value::Str(e.name.clone())),
            ("cat".into(), Value::Str(e.cat.clone())),
            ("ph".into(), Value::Str("X".into())),
            ("ts".into(), Value::U64(e.ts_us)),
            ("dur".into(), Value::U64(e.dur_us)),
            ("pid".into(), Value::U64(1)),
            ("tid".into(), Value::U64(e.tid)),
            ("args".into(), Value::Map(args)),
        ])
    }

    /// Microseconds elapsed since this recorder's epoch (0 when
    /// disabled) — the clock [`SpanRecorder::import_events`]'s `at_us`
    /// is measured on.
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Render all spans as a Chrome trace JSON document. Spans whose
    /// guards are still alive are included truncated at "now", so the
    /// document is valid even mid-crash (see
    /// [`SpanRecorder::flush_on_drop`]).
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<Value> = self.snapshot_events().iter().map(Self::event_to_value).collect();
        let doc = Value::Map(vec![
            ("traceEvents".into(), Value::Seq(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        serde_json::to_string(&doc).expect("trace serialization")
    }

    /// Write the Chrome trace to `path` (overwriting), creating parent
    /// directories as needed.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_chrome_trace())
    }

    /// A guard that writes the Chrome trace to `path` when dropped —
    /// including during panic unwinding — so whatever recorded up to the
    /// crash survives as a valid, merely truncated, trace document.
    pub fn flush_on_drop(&self, path: impl Into<std::path::PathBuf>) -> FlushGuard {
        FlushGuard { recorder: self.clone(), path: path.into() }
    }

    /// Export every span (completed and open-truncated) as a JSON array
    /// suitable for [`SpanRecorder::import_events`] on another recorder,
    /// possibly in another process. Timestamps stay relative to this
    /// recorder's epoch; the importer rebases them.
    pub fn export_events(&self) -> Value {
        Value::Seq(self.snapshot_events().iter().map(Self::event_to_value).collect())
    }

    /// Import spans exported by [`SpanRecorder::export_events`].
    ///
    /// Timestamps are rebased so the earliest imported span starts at
    /// `at_us` microseconds past this recorder's epoch; imported span ids
    /// are remapped onto this recorder's id space (parent links *within*
    /// the import follow the remap, parent links pointing outside it —
    /// e.g. a remote root attached under one of our spans via
    /// [`TraceContext`] — are kept verbatim). Imported thread ids get a
    /// fresh tid block so remote lanes never merge with local ones.
    /// Returns the number of spans imported.
    pub fn import_events(&self, events: &Value, at_us: u64) -> usize {
        // (name, cat, ts, dur, tid, span id, parent id, xparent, trace)
        type ParsedSpan = (String, String, u64, u64, u64, u64, u64, bool, u64);
        let Some(inner) = &self.inner else { return 0 };
        let Some(seq) = events.as_seq() else { return 0 };
        let parsed: Vec<ParsedSpan> = seq
            .iter()
            .filter_map(|e| {
                let name = e.get("name")?.as_str()?.to_string();
                let cat = e.get("cat")?.as_str()?.to_string();
                let ts = e.get("ts").and_then(Value::as_u64)?;
                let dur = e.get("dur").and_then(Value::as_u64).unwrap_or(0);
                let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
                let args = e.get("args");
                let id = args.and_then(|a| a.get("span")).and_then(Value::as_u64).unwrap_or(0);
                let parent =
                    args.and_then(|a| a.get("parent")).and_then(Value::as_u64).unwrap_or(0);
                let xparent =
                    args.and_then(|a| a.get("xparent")).and_then(Value::as_bool).unwrap_or(false);
                let trace = args
                    .and_then(|a| a.get("trace"))
                    .and_then(Value::as_str)
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .unwrap_or(0);
                Some((name, cat, ts, dur, tid, id, parent, xparent, trace))
            })
            .collect();
        if parsed.is_empty() {
            return 0;
        }
        let min_ts = parsed.iter().map(|p| p.2).min().unwrap_or(0);
        // Fresh local ids for the imported spans; internal parent links
        // follow, external ones survive untouched.
        let id_map: std::collections::HashMap<u64, u64> = parsed
            .iter()
            .filter(|p| p.5 != 0)
            .map(|p| (p.5, inner.next_id.fetch_add(1, Ordering::Relaxed)))
            .collect();
        let mut st = inner.state.lock().expect("span buffer");
        let tid_base = st
            .events
            .iter()
            .map(|e| e.tid + 1)
            .max()
            .unwrap_or(0)
            .max(st.open.iter().map(|o| o.tid + 1).max().unwrap_or(0));
        let count = parsed.len();
        for (name, cat, ts, dur, tid, id, parent, xparent, trace) in parsed {
            // External parents were minted by *this side's* caller — by
            // construction they refer to our id space, so they resolve
            // verbatim (and stop being external here). Internal parents
            // follow the remap.
            let parent = if xparent { parent } else { id_map.get(&parent).copied().unwrap_or(0) };
            st.events.push(SpanEvent {
                name,
                cat,
                ts_us: at_us + (ts - min_ts),
                dur_us: dur,
                tid: tid_base + tid,
                id: id_map.get(&id).copied().unwrap_or(0),
                parent,
                external_parent: false,
                trace,
            });
        }
        count
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

/// RAII guard for an in-flight span; dropping it records the span.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Option<(Arc<Inner>, u64)>,
}

impl SpanGuard {
    /// This span's recorder-unique id (0 for a disabled recorder) — pass
    /// it to [`SpanRecorder::child_span`] or
    /// [`TraceContext::with_parent`] to nest work under this span.
    pub fn id(&self) -> u64 {
        self.recorder.as_ref().map_or(0, |(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, id)) = self.recorder.take() {
            SpanRecorder::close(&inner, id);
        }
    }
}

/// Writes the Chrome trace on drop — even during panic unwinding (see
/// [`SpanRecorder::flush_on_drop`]).
#[derive(Debug)]
pub struct FlushGuard {
    recorder: SpanRecorder,
    path: std::path::PathBuf,
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        let _ = self.recorder.write_chrome_trace(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_export_chrome_trace() {
        let rec = SpanRecorder::new();
        {
            let _run = rec.span("cli", "run");
            let _unit = rec.span("orchestrator", "unit:e1/p0");
        }
        assert_eq!(rec.len(), 2);
        let text = rec.to_chrome_trace();
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
            assert!(e.get("ts").and_then(Value::as_u64).is_some());
            assert!(e.get("dur").and_then(Value::as_u64).is_some());
            assert_eq!(e.get("pid").and_then(Value::as_u64), Some(1));
            assert!(e.get("args").and_then(|a| a.get("span")).and_then(Value::as_u64).unwrap() > 0);
        }
        // Inner span (dropped first) is recorded first.
        assert_eq!(events[0].get("name").and_then(Value::as_str), Some("unit:e1/p0"));
        assert_eq!(events[1].get("name").and_then(Value::as_str), Some("run"));
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        {
            let g = rec.span("cli", "ignored");
            assert_eq!(g.id(), 0);
        }
        assert!(rec.is_empty());
        assert!(rec.trace().is_none());
        let doc: Value = serde_json::from_str(&rec.to_chrome_trace()).unwrap();
        assert_eq!(doc.get("traceEvents").and_then(Value::as_seq).map(<[Value]>::len), Some(0));
    }

    #[test]
    fn threads_get_stable_small_tids() {
        let rec = SpanRecorder::new();
        {
            let _a = rec.span("t", "main-1");
        }
        let rec2 = rec.clone();
        std::thread::spawn(move || {
            let _b = rec2.span("t", "worker");
        })
        .join()
        .unwrap();
        {
            let _c = rec.span("t", "main-2");
        }
        let text = rec.to_chrome_trace();
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        let tid = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|e| e.get("tid"))
                .and_then(Value::as_u64)
                .unwrap()
        };
        assert_eq!(tid("main-1"), tid("main-2"), "same thread, same tid");
        assert_ne!(tid("main-1"), tid("worker"), "different thread, different tid");
    }

    #[test]
    fn open_spans_appear_truncated_in_the_export() {
        let rec = SpanRecorder::new();
        let _open = rec.span("worker", "still-running");
        assert_eq!(rec.len(), 0, "not completed yet");
        assert_eq!(rec.open_spans(), 1);
        let doc: Value = serde_json::from_str(&rec.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        assert_eq!(events.len(), 1, "open span exported truncated");
        assert_eq!(events[0].get("name").and_then(Value::as_str), Some("still-running"));
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("X"));
    }

    #[test]
    fn flush_guard_writes_a_valid_trace_during_panic() {
        let path = std::env::temp_dir().join(format!("jle-span-flush-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rec = SpanRecorder::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _flush = rec.flush_on_drop(&path);
            let _outer = rec.span("worker", "job");
            let _inner = rec.span("engine", "run");
            panic!("worker crashed mid-span");
        }));
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).expect("trace flushed during unwind");
        let doc: Value = serde_json::from_str(&text).expect("flushed trace is valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        // Guards dropped during unwinding, so both spans completed; the
        // point is the file exists and parses even though the scope died.
        assert_eq!(events.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_context_stamps_spans_and_parents() {
        let ctx = TraceContext { trace_id: 0xABCD, parent_span: 0 };
        let rec = SpanRecorder::with_trace(ctx);
        assert_eq!(rec.trace(), Some(ctx));
        let outer = rec.span("client", "submit");
        let outer_id = outer.id();
        {
            let _child = rec.child_span("client", "wait", outer_id);
        }
        drop(outer);
        let doc: Value = serde_json::from_str(&rec.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        for e in events {
            assert_eq!(
                e.get("args").and_then(|a| a.get("trace")).and_then(Value::as_str),
                Some("000000000000abcd")
            );
        }
        let wait = &events[0];
        assert_eq!(wait.get("name").and_then(Value::as_str), Some("wait"));
        assert_eq!(
            wait.get("args").and_then(|a| a.get("parent")).and_then(Value::as_u64),
            Some(outer_id)
        );
    }

    #[test]
    fn export_import_rebases_and_remaps() {
        // "Server" recorder: a root span carrying an external parent (the
        // client's span id, unknown to the server's id space) — stamped
        // via the trace context, exactly as sweepd does.
        let server = SpanRecorder::with_trace(TraceContext { trace_id: 7, parent_span: 12_345 });
        let root = server.span("sweepd", "stage:execute");
        let root_id = root.id();
        {
            let _child = server.child_span("engine", "run:seed=1", root_id);
        }
        drop(root);
        let exported = server.export_events();

        let client = SpanRecorder::new();
        {
            let _submit = client.span("client", "submit");
        }
        let imported = client.import_events(&exported, 500);
        assert_eq!(imported, 2);
        let doc: Value = serde_json::from_str(&client.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        assert_eq!(events.len(), 3);
        let by_name = |n: &str| {
            events.iter().find(|e| e.get("name").and_then(Value::as_str) == Some(n)).unwrap()
        };
        let stage = by_name("stage:execute");
        let run = by_name("run:seed=1");
        // External parent link kept verbatim.
        assert_eq!(
            stage.get("args").and_then(|a| a.get("parent")).and_then(Value::as_u64),
            Some(12_345)
        );
        // Internal parent link remapped alongside its span id.
        assert_eq!(
            run.get("args").and_then(|a| a.get("parent")),
            stage.get("args").and_then(|a| a.get("span")),
        );
        // Rebase: earliest imported span lands at 500µs past the epoch.
        let ts_min = events
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) != Some("client"))
            .filter_map(|e| e.get("ts").and_then(Value::as_u64))
            .min()
            .unwrap();
        assert_eq!(ts_min, 500);
        // Imported spans keep their trace id.
        assert_eq!(
            run.get("args").and_then(|a| a.get("trace")).and_then(Value::as_str),
            Some("0000000000000007")
        );
    }
}
