//! Span recording with Chrome `trace_event` export.
//!
//! A [`SpanRecorder`] collects completed spans (name, category, start,
//! duration, thread) relative to its own epoch, and renders them as a
//! Chrome trace JSON document (`{"traceEvents":[...]}`, `"ph":"X"`
//! complete events) loadable in `chrome://tracing` or Perfetto.
//!
//! Spans are recorded via RAII guards: [`SpanRecorder::span`] starts the
//! clock, dropping the returned [`SpanGuard`] stops it and appends the
//! event. A disabled recorder ([`SpanRecorder::disabled`]) hands out
//! no-op guards — call sites never need to branch.

use serde::Value;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

#[derive(Debug, Clone)]
struct SpanEvent {
    name: String,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
    threads: Mutex<Vec<ThreadId>>,
}

/// Shared recorder of completed spans (see the module docs). Clones share
/// the same buffer; recording is a short mutex-guarded push, cheap at
/// run/chunk/trial granularity (attach per-slot instrumentation to the
/// flight ring instead, which is lock-free per trial).
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    inner: Option<Arc<Inner>>,
}

impl SpanRecorder {
    /// An enabled recorder with its epoch at "now".
    pub fn new() -> Self {
        SpanRecorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A recorder that drops everything; guards become no-ops.
    pub fn disabled() -> Self {
        SpanRecorder { inner: None }
    }

    /// Whether this recorder keeps spans.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of completed spans recorded so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("span buffer").len(),
            None => 0,
        }
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Start a span in category `cat` (e.g. `"orchestrator"`); the span
    /// ends when the guard drops.
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> SpanGuard {
        match &self.inner {
            Some(inner) => {
                SpanGuard { recorder: Some((Arc::clone(inner), name.into(), cat, Instant::now())) }
            }
            None => SpanGuard { recorder: None },
        }
    }

    /// Stable small integer for the calling thread (Chrome `tid`).
    fn tid(inner: &Inner) -> u64 {
        let id = std::thread::current().id();
        let mut threads = inner.threads.lock().expect("span threads");
        match threads.iter().position(|t| *t == id) {
            Some(i) => i as u64,
            None => {
                threads.push(id);
                (threads.len() - 1) as u64
            }
        }
    }

    fn record(inner: &Inner, name: String, cat: &'static str, started: Instant) {
        let ts_us = started.duration_since(inner.epoch).as_micros() as u64;
        let dur_us = started.elapsed().as_micros() as u64;
        let tid = Self::tid(inner);
        inner.events.lock().expect("span buffer").push(SpanEvent { name, cat, ts_us, dur_us, tid });
    }

    /// Render all completed spans as a Chrome trace JSON document.
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<Value> = match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .events
                .lock()
                .expect("span buffer")
                .iter()
                .map(|e| {
                    Value::Map(vec![
                        ("name".into(), Value::Str(e.name.clone())),
                        ("cat".into(), Value::Str(e.cat.into())),
                        ("ph".into(), Value::Str("X".into())),
                        ("ts".into(), Value::U64(e.ts_us)),
                        ("dur".into(), Value::U64(e.dur_us)),
                        ("pid".into(), Value::U64(1)),
                        ("tid".into(), Value::U64(e.tid)),
                    ])
                })
                .collect(),
        };
        let doc = Value::Map(vec![
            ("traceEvents".into(), Value::Seq(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        serde_json::to_string(&doc).expect("trace serialization")
    }

    /// Write the Chrome trace to `path` (overwriting), creating parent
    /// directories as needed.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_chrome_trace())
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

/// RAII guard for an in-flight span; dropping it records the span.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Option<(Arc<Inner>, String, &'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, name, cat, started)) = self.recorder.take() {
            SpanRecorder::record(&inner, name, cat, started);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_export_chrome_trace() {
        let rec = SpanRecorder::new();
        {
            let _run = rec.span("cli", "run");
            let _unit = rec.span("orchestrator", "unit:e1/p0");
        }
        assert_eq!(rec.len(), 2);
        let text = rec.to_chrome_trace();
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
            assert!(e.get("ts").and_then(Value::as_u64).is_some());
            assert!(e.get("dur").and_then(Value::as_u64).is_some());
            assert_eq!(e.get("pid").and_then(Value::as_u64), Some(1));
        }
        // Inner span (dropped first) is recorded first.
        assert_eq!(events[0].get("name").and_then(Value::as_str), Some("unit:e1/p0"));
        assert_eq!(events[1].get("name").and_then(Value::as_str), Some("run"));
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _g = rec.span("cli", "ignored");
        }
        assert!(rec.is_empty());
        let doc: Value = serde_json::from_str(&rec.to_chrome_trace()).unwrap();
        assert_eq!(doc.get("traceEvents").and_then(Value::as_seq).map(<[Value]>::len), Some(0));
    }

    #[test]
    fn threads_get_stable_small_tids() {
        let rec = SpanRecorder::new();
        {
            let _a = rec.span("t", "main-1");
        }
        let rec2 = rec.clone();
        std::thread::spawn(move || {
            let _b = rec2.span("t", "worker");
        })
        .join()
        .unwrap();
        {
            let _c = rec.span("t", "main-2");
        }
        let text = rec.to_chrome_trace();
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        let tid = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|e| e.get("tid"))
                .and_then(Value::as_u64)
                .unwrap()
        };
        assert_eq!(tid("main-1"), tid("main-2"), "same thread, same tid");
        assert_ne!(tid("main-1"), tid("worker"), "different thread, different tid");
    }
}
