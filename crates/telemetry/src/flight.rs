//! Anomaly flight recorder: a ring of recent slot events dumped as a
//! self-contained JSON postmortem when something goes wrong.
//!
//! A [`FlightRing`] rides along inside a trial (filled by the engine's
//! `TelemetryObserver`, one push per slot, no allocation after warm-up).
//! When an anomaly fires — the slot cap, a crashed leader, a supervisor
//! restart, a caught panic — the ring's last `N` events plus the trial's
//! seed and config fingerprint are frozen into a [`FlightRecord`] and
//! written by the [`FlightRecorder`] as one JSON artifact. Because every
//! trial is seeded deterministically (`base_seed + trial_index`, see
//! `jle-orchestrator`), the seed + fingerprint pair suffices to replay
//! the exact trial; the artifact documents the replay in-line.

use serde::{Deserialize, Error, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One slot as the flight recorder saw it: aggregate actions plus the
/// channel outcome. Mirrors the engine's per-slot truth without depending
/// on `jle-radio` (this crate is a leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotEvent {
    /// Slot index.
    pub slot: u64,
    /// Number of transmitting stations.
    pub transmitters: u64,
    /// Number of listening stations.
    pub listeners: u64,
    /// Whether the slot was jammed (or noise-corrupted).
    pub jammed: bool,
}

impl Serialize for SlotEvent {
    fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("slot".into(), Value::U64(self.slot)),
            ("tx".into(), Value::U64(self.transmitters)),
            ("rx".into(), Value::U64(self.listeners)),
            ("jam".into(), Value::Bool(self.jammed)),
        ])
    }
}

impl Deserialize for SlotEvent {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let field = |k: &str| {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| Error::missing_field("SlotEvent", k))
        };
        Ok(SlotEvent {
            slot: field("slot")?,
            transmitters: field("tx")?,
            listeners: field("rx")?,
            jammed: v
                .get("jam")
                .and_then(Value::as_bool)
                .ok_or_else(|| Error::missing_field("SlotEvent", "jam"))?,
        })
    }
}

/// Fixed-capacity ring buffer of the most recent [`SlotEvent`]s.
#[derive(Debug, Clone)]
pub struct FlightRing {
    buf: Vec<SlotEvent>,
    cap: usize,
    next: usize,
    total: u64,
}

impl FlightRing {
    /// A ring keeping the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRing { buf: Vec::with_capacity(cap), cap, next: 0, total: 0 }
    }

    /// Record one event, evicting the oldest once full.
    pub fn push(&mut self, ev: SlotEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % self.cap;
        self.total += 1;
    }

    /// Events in chronological order (oldest retained first).
    pub fn events(&self) -> Vec<SlotEvent> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// Total events ever pushed (≥ retained count).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Forget everything (capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.total = 0;
    }
}

/// Why a flight record was dumped (the anomaly taxonomy; DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// The run hit its slot cap without resolving (`RunReport::cap_hit`).
    CapHit,
    /// The elected leader crashed before the horizon
    /// (`RunReport::leader_crashed`).
    LeaderCrashed,
    /// More than one station believes it is the leader.
    MultiLeader,
    /// A supervisor watchdog fired and restarted a station's election.
    SupervisorRestart,
    /// ≥2 stations concurrently believed they were leader (open-world
    /// lease runs; resolved or not — the detail says which).
    SplitBrain,
    /// A station lost sight of the leader's lease (missed beacons) and
    /// re-entered election.
    LeaseLost,
    /// A trial panicked and was caught by `MonteCarlo::run_caught`.
    Panic,
    /// Nothing went wrong — the record is a deliberate snapshot of a
    /// healthy run (e.g. a `jle-lens record` replay fixture).
    Snapshot,
}

impl AnomalyKind {
    /// All anomaly kinds, for exhaustive iteration in tests and docs.
    pub const ALL: [AnomalyKind; 8] = [
        AnomalyKind::CapHit,
        AnomalyKind::LeaderCrashed,
        AnomalyKind::MultiLeader,
        AnomalyKind::SupervisorRestart,
        AnomalyKind::SplitBrain,
        AnomalyKind::LeaseLost,
        AnomalyKind::Panic,
        AnomalyKind::Snapshot,
    ];

    /// Stable snake_case label used in filenames and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::CapHit => "cap_hit",
            AnomalyKind::LeaderCrashed => "leader_crashed",
            AnomalyKind::MultiLeader => "multi_leader",
            AnomalyKind::SupervisorRestart => "supervisor_restart",
            AnomalyKind::SplitBrain => "split_brain",
            AnomalyKind::LeaseLost => "lease_lost",
            AnomalyKind::Panic => "panic",
            AnomalyKind::Snapshot => "snapshot",
        }
    }

    /// Parse a [`AnomalyKind::label`] back.
    pub fn from_label(s: &str) -> Option<Self> {
        AnomalyKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// A self-contained postmortem: everything needed to understand — and
/// replay — one anomalous trial.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Artifact schema version ([`crate::SCHEMA_VERSION`]).
    pub schema: u32,
    /// What fired.
    pub anomaly: AnomalyKind,
    /// The trial's engine seed (replays the exact RNG streams).
    pub seed: u64,
    /// Content-addressed config fingerprint of the owning work unit
    /// (`jle-orchestrator`), when the trial ran under the orchestrator.
    pub fingerprint: Option<String>,
    /// The full run spec (params tree), when the producer chose to embed
    /// it — makes the artifact replayable on its own, without access to
    /// the result store that maps fingerprints back to specs.
    pub replay_spec: Option<Value>,
    /// Free-form detail (panic message, restart cause, ...).
    pub detail: String,
    /// Extra context as key/value pairs (experiment id, trial index, ...).
    pub context: Vec<(String, String)>,
    /// Total slot events observed by the trial (the ring may have
    /// dropped all but the last [`FlightRecord::events`]`.len()`).
    pub slots_seen: u64,
    /// The last retained slot events, oldest first.
    pub events: Vec<SlotEvent>,
}

impl FlightRecord {
    /// A record for `anomaly` with the ring's current contents.
    pub fn new(anomaly: AnomalyKind, seed: u64, ring: &FlightRing) -> Self {
        FlightRecord {
            schema: crate::SCHEMA_VERSION,
            anomaly,
            seed,
            fingerprint: None,
            replay_spec: None,
            detail: String::new(),
            context: Vec::new(),
            slots_seen: ring.total_pushed(),
            events: ring.events(),
        }
    }

    /// Attach the work unit's config fingerprint.
    pub fn with_fingerprint(mut self, fp: impl Into<String>) -> Self {
        self.fingerprint = Some(fp.into());
        self
    }

    /// Embed the full run spec so the artifact replays standalone.
    pub fn with_replay_spec(mut self, spec: Value) -> Self {
        self.replay_spec = Some(spec);
        self
    }

    /// Attach free-form detail text.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Attach one context key/value pair.
    pub fn with_context(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.context.push((key.into(), value.into()));
        self
    }
}

impl Serialize for FlightRecord {
    fn to_json_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("schema".into(), Value::Str(format!("jle-flight-v{}", self.schema))),
            ("anomaly".into(), Value::Str(self.anomaly.label().into())),
            ("seed".into(), Value::U64(self.seed)),
            (
                "fingerprint".into(),
                match &self.fingerprint {
                    Some(fp) => Value::Str(fp.clone()),
                    None => Value::Null,
                },
            ),
            ("detail".into(), Value::Str(self.detail.clone())),
            (
                "context".into(),
                Value::Map(
                    self.context.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect(),
                ),
            ),
            ("slots_seen".into(), Value::U64(self.slots_seen)),
            (
                "events".into(),
                Value::Seq(self.events.iter().map(Serialize::to_json_value).collect()),
            ),
        ];
        // Only present when embedded — older readers ignore it, older
        // artifacts simply lack it.
        if let Some(spec) = &self.replay_spec {
            m.push(("spec".into(), spec.clone()));
        }
        // Document the replay inline so a bare artifact is actionable.
        m.push((
            "replay".into(),
            Value::Str(format!(
                "re-run the owning work unit (fingerprint above) or any engine entry \
                 point with seed {}; trials are seeded deterministically so the same \
                 seed reproduces the identical slot sequence",
                self.seed
            )),
        ));
        Value::Map(m)
    }
}

impl Deserialize for FlightRecord {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let schema_str = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing_field("FlightRecord", "schema"))?;
        let schema = schema_str
            .strip_prefix("jle-flight-v")
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| Error::custom(format!("unrecognized flight schema {schema_str:?}")))?;
        let anomaly = v
            .get("anomaly")
            .and_then(Value::as_str)
            .and_then(AnomalyKind::from_label)
            .ok_or_else(|| Error::missing_field("FlightRecord", "anomaly"))?;
        let seed = v
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("FlightRecord", "seed"))?;
        let fingerprint = match v.get("fingerprint") {
            None | Some(Value::Null) => None,
            Some(fp) => Some(
                fp.as_str()
                    .ok_or_else(|| Error::custom("fingerprint must be a string"))?
                    .to_string(),
            ),
        };
        let detail = v.get("detail").and_then(Value::as_str).unwrap_or("").to_string();
        let context = v
            .get("context")
            .and_then(Value::as_map)
            .map(|m| {
                m.iter()
                    .map(|(k, val)| {
                        val.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| Error::custom("context values must be strings"))
                    })
                    .collect::<Result<Vec<_>, Error>>()
            })
            .transpose()?
            .unwrap_or_default();
        let slots_seen = v.get("slots_seen").and_then(Value::as_u64).unwrap_or(0);
        let events = v
            .get("events")
            .and_then(Value::as_seq)
            .ok_or_else(|| Error::missing_field("FlightRecord", "events"))?
            .iter()
            .map(SlotEvent::from_json_value)
            .collect::<Result<Vec<_>, Error>>()?;
        let replay_spec = match v.get("spec") {
            None | Some(Value::Null) => None,
            Some(spec) => Some(spec.clone()),
        };
        Ok(FlightRecord {
            schema,
            anomaly,
            seed,
            fingerprint,
            replay_spec,
            detail,
            context,
            slots_seen,
            events,
        })
    }
}

/// Writes [`FlightRecord`]s as JSON artifacts into a directory, with a
/// global cap so a pathological sweep cannot fill the disk.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    seq: AtomicU64,
    limit: u64,
}

impl FlightRecorder {
    /// Default cap on artifacts written per recorder.
    pub const DEFAULT_LIMIT: u64 = 256;

    /// A recorder writing into `dir` (created if absent).
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FlightRecorder { dir, seq: AtomicU64::new(0), limit: Self::DEFAULT_LIMIT })
    }

    /// Override the artifact cap.
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = limit;
        self
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of artifacts written so far.
    pub fn written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed).min(self.limit)
    }

    /// Dump one record; returns the artifact path, or `None` if the cap
    /// was reached (the record is silently dropped — postmortems past the
    /// first few hundred add nothing).
    pub fn dump(&self, record: &FlightRecord) -> std::io::Result<Option<PathBuf>> {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        if n >= self.limit {
            return Ok(None);
        }
        let name = format!("flight-{:05}-{}-seed{}.json", n, record.anomaly.label(), record.seed);
        let path = self.dir.join(name);
        let text = serde_json::to_string_pretty(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(&path, text)?;
        Ok(Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(slot: u64) -> SlotEvent {
        SlotEvent { slot, transmitters: slot % 3, listeners: 5, jammed: slot.is_multiple_of(2) }
    }

    #[test]
    fn ring_wraps_and_preserves_chronological_order() {
        let mut ring = FlightRing::new(4);
        assert!(ring.is_empty());
        for slot in 0..3 {
            ring.push(ev(slot));
        }
        // Under capacity: everything retained, in order.
        assert_eq!(ring.events().iter().map(|e| e.slot).collect::<Vec<_>>(), vec![0, 1, 2]);
        for slot in 3..10 {
            ring.push(ev(slot));
        }
        // Wrapped: last 4, oldest first.
        assert_eq!(ring.events().iter().map(|e| e.slot).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(ring.total_pushed(), 10);
        assert_eq!(ring.len(), 4);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = FlightRing::new(0);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.events().iter().map(|e| e.slot).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn anomaly_labels_roundtrip() {
        for kind in AnomalyKind::ALL {
            assert_eq!(AnomalyKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(AnomalyKind::from_label("nonsense"), None);
    }

    #[test]
    fn record_serde_roundtrip() {
        let mut ring = FlightRing::new(3);
        for slot in 0..5 {
            ring.push(ev(slot));
        }
        let rec = FlightRecord::new(AnomalyKind::CapHit, 0xA11CE, &ring)
            .with_fingerprint("deadbeef")
            .with_detail("hit the cap at 4000 slots")
            .with_context("experiment", "e24");
        let text = serde_json::to_string(&rec).unwrap();
        assert!(text.contains("\"jle-flight-v1\""));
        assert!(text.contains("\"cap_hit\""));
        assert!(text.contains("\"replay\""));
        let back: FlightRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.slots_seen, 5);
        assert_eq!(back.events.len(), 3);
    }

    #[test]
    fn recorder_writes_artifacts_and_respects_the_cap() {
        let dir = std::env::temp_dir().join(format!("jle-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(&dir).unwrap().with_limit(2);
        let ring = FlightRing::new(2);
        let record = FlightRecord::new(AnomalyKind::Panic, 7, &ring).with_detail("boom");
        let p1 = rec.dump(&record).unwrap().expect("first artifact");
        let p2 = rec.dump(&record).unwrap().expect("second artifact");
        assert!(rec.dump(&record).unwrap().is_none(), "cap reached");
        assert_ne!(p1, p2);
        let text = std::fs::read_to_string(&p1).unwrap();
        let back: FlightRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back.anomaly, AnomalyKind::Panic);
        assert_eq!(back.seed, 7);
        assert_eq!(rec.written(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
