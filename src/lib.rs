//! # jamming-leader-election
//!
//! A from-scratch Rust reproduction of *Electing a Leader in Wireless
//! Networks Quickly Despite Jamming* (Marek Klonowski, Dominik Pająk,
//! SPAA 2015).
//!
//! The workspace implements the paper's protocols — **LESK** (leader
//! election in strong-CD with known ε), the **Estimation** primitive,
//! **LESU** (unknown ε), and the **Notification** transformation yielding
//! **LEWK/LEWU** for weak-CD — together with every substrate they need:
//! a slotted single-hop radio channel simulator, an adaptive
//! `(T, 1−ε)`-bounded jamming adversary framework with exact budget
//! enforcement, baseline protocols, a Monte-Carlo experiment harness, and
//! an analysis toolkit.
//!
//! This facade crate simply re-exports the workspace members under stable
//! paths; see `DESIGN.md` for the full architecture and `EXPERIMENTS.md`
//! for the reproduction results.
//!
//! ## Quickstart
//!
//! ```
//! use jamming_leader_election::prelude::*;
//!
//! // 64 stations, strong collision detection, a saturating
//! // (T = 32, 1 - eps = 1/2)-bounded jammer, LESK with known eps = 1/2.
//! let eps = Rate::from_f64(0.5);
//! let config = SimConfig::new(64, CdModel::Strong)
//!     .with_seed(7)
//!     .with_max_slots(100_000);
//! let adversary = AdversarySpec::new(eps, 32, JamStrategyKind::Saturating);
//! let report = run_cohort(&config, &adversary, || LeskProtocol::new(0.5));
//! assert!(report.leader_elected());
//! println!("leader elected after {} slots", report.slots);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jle_adversary as adversary;
pub use jle_analysis as analysis;
pub use jle_engine as engine;
pub use jle_protocols as protocols;
pub use jle_radio as radio;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use jle_adversary::{AdversarySpec, JamBudget, JamStrategy, JamStrategyKind, Rate};
    pub use jle_analysis::{linear_fit, log2_fit, Series, Summary, Table};
    pub use jle_engine::{
        panic_count, run_cohort, run_cohort_with, run_exact, run_exact_churn, run_exact_faulty,
        run_fast_exact_churn, ChurnPlan, FaultPlan, FaultyStation, LeaderLedger, MonteCarlo,
        Outcome, PerStation, Protocol, RunReport, SimConfig, SplitBrainObserver, SplitBrainStats,
        StationChurn, StationFaults, StopRule, TrialOutcome,
    };
    pub use jle_protocols::{
        lewk, lewu, ArssMacProtocol, BackoffProtocol, EstimationProtocol, LeaseConfig,
        LeaseLossCause, LeaseProtocol, LeskProtocol, LesuProtocol, Notification, SlotTaxonomy,
        Supervisor, SupervisorMetrics, WillardProtocol,
    };
    pub use jle_radio::{CdModel, ChannelState, Observation, SlotTruth};
}
