//! Leader election with imperfect stations: crashes, late wakeups, and
//! sensing errors injected on top of a saturating jammer, with a
//! restart supervisor wrapped around every station.
//!
//! ```text
//! cargo run --release --example faulty_election
//! ```

use jamming_leader_election::prelude::*;

fn main() {
    let n = 24;
    let eps = 0.5;
    let adversary = AdversarySpec::new(Rate::from_f64(eps), 32, JamStrategyKind::Saturating);
    let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(100_000);

    // A seed-driven fault plan: ~25% of stations crash somewhere in the
    // first 1024 slots, everyone wakes staggered, and every station
    // flips 2% of its Null/Collision sensings.
    let plan = FaultPlan::new(42)
        .with_random_crashes(n, 0.25, 1_024)
        .with_staggered_wakeups(n, 256)
        .with_sensing_flips(n, 0.02);
    println!("fault plan covers {} of {n} stations", plan.len());

    // Bare LESK under the same faults vs the supervised wrapper
    // (watchdog 4096 slots, doubling after each restart).
    let bare = run_exact_faulty(&config, &adversary, &plan, move |_| {
        Box::new(PerStation::new(LeskProtocol::new(eps)))
    });
    let supervised = run_exact_faulty(&config, &adversary, &plan, move |_| {
        Box::new(Supervisor::over_lesk(eps, 4_096))
    });

    for (label, report) in [("bare", &bare), ("supervised", &supervised)] {
        println!(
            "{label:>10}: outcome {:?} after {} slots (winner {:?}, jammed {}, leader crashed: {})",
            report.outcome(),
            report.slots,
            report.winner,
            report.counts.jammed,
            report.leader_crashed,
        );
    }

    // The degradation taxonomy, spelled out.
    for o in Outcome::ALL {
        println!("  taxonomy: {:<18} -> {}", format!("{o:?}"), o.label());
    }
}
