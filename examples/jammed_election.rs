//! Full weak-CD leader election (LEWK) under adversarial jamming.
//!
//! Under weak-CD a transmitter cannot hear its own Single — the winner
//! doesn't know it won. The paper's `Notification` transformation fixes
//! this with the C1/C2/C3 interval handshake; this example runs it on the
//! exact per-station engine against three adversaries and shows that
//! every station terminates with exactly one leader.
//!
//! ```text
//! cargo run --release --example jammed_election
//! ```

use jamming_leader_election::prelude::*;

fn main() {
    let n = 24;
    let eps = 0.5;
    let t_window = 16;

    let adversaries = vec![
        AdversarySpec::passive(),
        AdversarySpec::new(Rate::from_f64(eps), t_window, JamStrategyKind::Saturating),
        AdversarySpec::new(Rate::from_f64(eps), t_window, JamStrategyKind::ReactiveNull),
        AdversarySpec::new(
            Rate::from_f64(eps),
            t_window,
            JamStrategyKind::Burst { on: t_window, off: t_window },
        ),
    ];

    println!("LEWK: weak-CD leader election, n = {n}, eps = {eps}, T = {t_window}\n");
    println!("{:<42} {:>10} {:>8} {:>8}  outcome", "adversary", "slots", "jammed", "singles");
    for adv in adversaries {
        let config = SimConfig::new(n, CdModel::Weak)
            .with_seed(7)
            .with_max_slots(10_000_000)
            .with_stop(StopRule::AllTerminated);
        let report = run_exact(&config, &adv, |_| Box::new(lewk(eps)));
        assert!(report.all_terminated, "all stations must terminate");
        assert_eq!(report.leaders.len(), 1, "exactly one leader");
        println!(
            "{:<42} {:>10} {:>8} {:>8}  station #{} leads; first C1-single by #{}",
            adv.label(),
            report.slots,
            report.counts.jammed,
            report.counts.singles,
            report.leaders[0],
            report.winner.unwrap(),
        );
    }
    println!(
        "\nThe handshake: C1-single picks the leader (it doesn't know) → C2-single tells it → \
         it saturates C3 until everyone heard → C1 falls silent and it terminates."
    );
}
