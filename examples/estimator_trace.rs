//! Visualize LESK's estimate `u` walking toward `log₂ n` — the biased
//! random walk at the heart of the paper's analysis (Section 2.2).
//!
//! Prints an ASCII strip chart of `u` over time, jam-free vs jammed.
//!
//! ```text
//! cargo run --release --example estimator_trace
//! ```

use jamming_leader_election::prelude::*;

fn render(trace: &[f64], u0: f64, label: &str) {
    const ROWS: usize = 12;
    const COLS: usize = 96;
    let max_u = trace.iter().cloned().fold(u0, f64::max) * 1.1 + 1.0;
    let mut grid = vec![vec![' '; COLS]; ROWS];
    for (i, &u) in trace.iter().enumerate() {
        let col = i * COLS / trace.len();
        let row = ROWS - 1 - ((u / max_u) * (ROWS - 1) as f64).round() as usize;
        grid[row.min(ROWS - 1)][col.min(COLS - 1)] = '*';
    }
    // Mark the target u0 = log2 n.
    let target_row = ROWS - 1 - ((u0 / max_u) * (ROWS - 1) as f64).round() as usize;
    for c in grid[target_row.min(ROWS - 1)].iter_mut() {
        if *c == ' ' {
            *c = '-';
        }
    }
    println!("{label}  (u over {} slots; ---- marks log2 n = {u0:.1})", trace.len());
    for row in grid {
        println!("  |{}", row.into_iter().collect::<String>());
    }
    println!("  +{}", "-".repeat(COLS));
}

fn main() {
    let n = 4096u64;
    let eps = 0.5;
    let u0 = (n as f64).log2();

    for (label, adv) in [
        ("clean channel".to_string(), AdversarySpec::passive()),
        (
            "saturating (T=32, 1-eps=1/2) jammer".to_string(),
            AdversarySpec::new(Rate::from_f64(eps), 32, JamStrategyKind::Saturating),
        ),
    ] {
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(11)
            .with_max_slots(1_000_000)
            .with_trace(true);
        let report = run_cohort(&config, &adv, || LeskProtocol::new(eps));
        assert!(report.leader_elected());
        let trace = report.trace.unwrap();
        render(&trace.estimates, u0, &label);
        println!(
            "  elected at slot {} with u = {:.2} (jammed slots: {})\n",
            report.slots,
            trace.estimates.last().unwrap(),
            report.counts.jammed
        );
    }
    println!("Nulls pull u down by 1; collisions (and every jam) push it up by eps/8.");
    println!("The jammer accelerates the climb but cannot push u out of the regular band.");
}
