//! Adversary duel: which jamming strategy hurts LESK the most, at the
//! same (T, 1−ε) budget?
//!
//! ```text
//! cargo run --release --example adversary_duel
//! ```

use jamming_leader_election::prelude::*;

fn main() {
    let n = 1024u64;
    let eps = 0.3;
    let t_window = 64u64;
    let trials = 40u64;
    let rate = Rate::from_f64(eps);

    let strategies = vec![
        ("none", JamStrategyKind::None),
        ("random p=0.7", JamStrategyKind::Random { prob: 0.7 }),
        ("burst T/T", JamStrategyKind::Burst { on: t_window, off: t_window }),
        ("periodic-front (Lemma 2.7)", JamStrategyKind::PeriodicFront),
        ("reactive-null", JamStrategyKind::ReactiveNull),
        ("saturating", JamStrategyKind::Saturating),
        (
            "adaptive-estimator",
            JamStrategyKind::AdaptiveEstimator { n, protocol_eps: eps, band: 3.0, initial_u: 0.0 },
        ),
    ];

    println!("LESK (n={n}, eps={eps}, T={t_window}), {trials} trials per strategy\n");
    println!("{:<30} {:>12} {:>12} {:>10}", "strategy", "median slots", "p90 slots", "jam frac");
    let mut baseline = None;
    for (name, kind) in strategies {
        let spec = AdversarySpec::new(rate, t_window, kind);
        let mc = MonteCarlo::new(trials, 7000);
        let results: Vec<(f64, f64)> = mc.run(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(100_000_000);
            let r = run_cohort(&config, &spec, || LeskProtocol::new(eps));
            assert!(r.leader_elected());
            (r.slots as f64, r.jam_fraction())
        });
        let slots: Vec<f64> = results.iter().map(|r| r.0).collect();
        let summary = Summary::of(&slots).unwrap();
        let frac: f64 = results.iter().map(|r| r.1).sum::<f64>() / results.len() as f64;
        if baseline.is_none() {
            baseline = Some(summary.median);
        }
        println!(
            "{:<30} {:>12.0} {:>12.0} {:>9.1}%  ({:.1}x slowdown)",
            name,
            summary.median,
            summary.p90,
            frac * 100.0,
            summary.median / baseline.unwrap()
        );
    }
    println!("\nAll strategies sit inside the Theorem 2.6 envelope — LESK's asymmetric");
    println!("update rule neutralizes the *budget*, not any particular spending pattern.");
}
