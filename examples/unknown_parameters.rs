//! LESU: electing with *zero* global knowledge.
//!
//! The stations know none of `n`, `ε`, `T`. LESU first calibrates a time
//! unit with `Estimation(2)` (Lemma 2.8), then sweeps time-boxed LESK
//! runs over candidate ε values `2^{-j/3}` on a doubling schedule
//! (Algorithm 2). This example surfaces the internals: the estimation
//! round, the derived `t₀`, and the `(i, j)` sweep position at election.
//!
//! ```text
//! cargo run --release --example unknown_parameters
//! ```

use jamming_leader_election::prelude::*;

fn main() {
    println!("LESU under a hidden (T=24, 1-eps=0.7)-bounded adversary\n");
    let hidden_eps = 0.3;
    let hidden_t = 24;
    let adversary =
        AdversarySpec::new(Rate::from_f64(hidden_eps), hidden_t, JamStrategyKind::Saturating);

    println!("{:>8} {:>10} {:>12} {:>10} {:>14}", "n", "slots", "t0", "sweep(i,j)", "eps_j vs eps");
    for k in [7u32, 9, 11, 13] {
        let n = 1u64 << k;
        let config = SimConfig::new(n, CdModel::Strong).with_seed(99).with_max_slots(100_000_000);
        let (report, proto) = run_cohort_with(&config, &adversary, LesuProtocol::new);
        assert!(report.leader_elected());
        match proto.current_run() {
            Some((i, j, eps_j)) => println!(
                "{:>8} {:>10} {:>12.0} {:>10} {:>7.3} vs {:.1}",
                n,
                report.slots,
                proto.t0().unwrap(),
                format!("({i},{j})"),
                eps_j,
                hidden_eps,
            ),
            // Lemma 2.8: Estimation itself may luck into a Single — the
            // leader is then elected before any LESK run starts.
            None => println!(
                "{:>8} {:>10} {:>12} {:>10} {:>14}",
                n, report.slots, "-", "(est.)", "single during Estimation"
            ),
        }
    }
    println!(
        "\nThe sweep stops once a run uses eps_j <= true eps with a long enough time box — \
         no station ever learned n, eps or T."
    );
}
