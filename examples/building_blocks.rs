//! The paper's §4 building-block claim, realized: k-selection and
//! network-size approximation from the same LESK dynamics, both under
//! jamming.
//!
//! ```text
//! cargo run --release --example building_blocks
//! ```

use jamming_leader_election::prelude::*;
use jamming_leader_election::protocols::{run_k_selection, SizeApproxProtocol};

fn main() {
    let eps = 0.5;
    let adversary = AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::Saturating);

    // ---- k-selection: 10 leaders out of 4096 stations -----------------
    let n = 4096u64;
    let k = 10u64;
    let config = SimConfig::new(n, CdModel::Strong).with_seed(41).with_max_slots(1_000_000);
    let r = run_k_selection(&config, &adversary, k, eps);
    assert!(r.completed);
    println!("k-selection: {k} leaders among {n} stations, saturating jammer");
    println!("  election slots : {:?}", r.election_slots);
    println!("  gaps           : {:?}", r.gaps());
    println!(
        "  -> first leader pays the O(log n) climb ({} slots); the other {} cost {} slots total\n",
        r.gaps()[0],
        k - 1,
        r.slots - r.election_slots[0] - 1,
    );

    // ---- size approximation -------------------------------------------
    println!("size approximation: 2^u-bar after a fixed horizon (same dynamics, no stopping)");
    println!("{:>10} {:>14} {:>10}", "true n", "estimate", "ratio");
    for k in [6u32, 10, 14, 18] {
        let n = 1u64 << k;
        let horizon = 400 + 40 * k as u64;
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(17)
            .with_max_slots(horizon + 10)
            .with_continue_past_singles(true);
        let (_, proto) =
            run_cohort_with(&config, &adversary, || SizeApproxProtocol::new(eps, horizon));
        let est = proto.estimate_n();
        println!("{:>10} {:>14.0} {:>10.3}", n, est, est / n as f64);
    }
    println!("\nBoth blocks inherit LESK's jamming robustness: jams read as busy slots and");
    println!("are paid for by the asymmetric (-1 on Null, +eps/8 on Collision) update rule.");
}
