//! Quickstart: elect a leader among 1000 stations while a jammer owns
//! half of every 32-slot window.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jamming_leader_election::prelude::*;

fn main() {
    let n = 1000;
    let eps = 0.5; // the adversary must leave an eps fraction of slots usable
    let t_window = 32;

    // The adversary: requests a jam every slot; the (T, 1-eps) budget
    // clamp turns that into the maximally aggressive admissible jammer.
    let adversary = AdversarySpec::new(Rate::from_f64(eps), t_window, JamStrategyKind::Saturating);

    // LESK (Algorithm 1 of the paper): stations share an estimate u of
    // log2(n), transmit with probability 2^-u, and nudge u down on silence
    // (-1) and up on collision (+eps/8).
    let config = SimConfig::new(n, CdModel::Strong).with_seed(2024).with_max_slots(1_000_000);
    let report = run_cohort(&config, &adversary, || LeskProtocol::new(eps));

    assert!(report.leader_elected());
    println!("network size      : {n} stations (unknown to the protocol)");
    println!("adversary         : {}", adversary.label());
    println!("slots to election : {}", report.slots);
    println!(
        "slots jammed      : {} ({:.0}%)",
        report.counts.jammed,
        report.jam_fraction() * 100.0
    );
    println!(
        "channel stats     : {} null / {} single / {} collision",
        report.counts.nulls, report.counts.singles, report.counts.collisions
    );
    println!("leader            : station #{}", report.winner.unwrap());
    println!(
        "theory envelope   : O(log n / (eps^3 log(1/eps))) = O({:.0}) slots",
        jamming_leader_election::protocols::math::lesk_runtime_shape(n, eps, t_window)
    );
}
