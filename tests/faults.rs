//! End-to-end properties of the fault-injection subsystem and the
//! restart supervisor (experiment E24's substrate).
//!
//! * An empty (or all-benign) [`FaultPlan`] is *invisible*: the faulty
//!   runner reproduces the pristine exact-engine run bit for bit.
//! * Supervision never helps the adversary: a supervisor-wrapped LESK
//!   run — even with a watchdog small enough to fire restarts — stays
//!   inside the `(T, 1−ε)` jamming allowance on every window, verified
//!   against the full trace by an independent referee.

use jamming_leader_election::prelude::*;
use proptest::prelude::*;

/// Brute-force window referee: no window of length ≥ `t` may contain
/// more jams than the `(T, 1−ε)` allowance grants it.
fn assert_budget_respected(jams: &[bool], eps: Rate, t: u64) {
    let prefix: Vec<u64> = std::iter::once(0)
        .chain(jams.iter().scan(0u64, |acc, &j| {
            *acc += j as u64;
            Some(*acc)
        }))
        .collect();
    let n = jams.len();
    for s in 0..n {
        for e in (s + t as usize - 1).min(n)..n {
            let w = (e - s + 1) as u64;
            if w < t {
                continue;
            }
            let count = prefix[e + 1] - prefix[s];
            assert!(
                count <= eps.allowance(w),
                "window [{s},{e}] has {count} jams > allowance {}",
                eps.allowance(w)
            );
        }
    }
}

fn assert_reports_identical(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.slots, b.slots, "slots differ: {ctx}");
    assert_eq!(a.resolved_at, b.resolved_at, "resolved_at differs: {ctx}");
    assert_eq!(a.winner, b.winner, "winner differs: {ctx}");
    assert_eq!(a.leaders, b.leaders, "leaders differ: {ctx}");
    assert_eq!(a.counts, b.counts, "slot counts differ: {ctx}");
    assert_eq!(a.energy, b.energy, "energy differs: {ctx}");
    assert_eq!(a.timed_out, b.timed_out, "timed_out differs: {ctx}");
    assert_eq!(a.cap_hit, b.cap_hit, "cap_hit differs: {ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The faulty runner with an empty plan is slot-for-slot identical to
    /// the pristine exact engine, for any (n, seed, jammer on/off).
    #[test]
    fn empty_fault_plan_is_invisible(
        n in 1u64..48,
        seed in any::<u64>(),
        jammed in any::<bool>(),
    ) {
        let adv = if jammed {
            AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating)
        } else {
            AdversarySpec::passive()
        };
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(200_000);
        let pristine = run_exact(&config, &adv, |_| {
            Box::new(PerStation::new(LeskProtocol::new(0.5)))
        });
        let faulty = run_exact_faulty(&config, &adv, &FaultPlan::empty(), |_| {
            Box::new(PerStation::new(LeskProtocol::new(0.5)))
        });
        assert_reports_identical(&pristine, &faulty, &format!("n={n} seed={seed}"));
        prop_assert!(!faulty.leader_crashed);
        prop_assert_eq!(faulty.outcome(), pristine.outcome());
    }

    /// Benign plan entries (scheduled but no-op faults) are invisible too
    /// — wrapping in `FaultyStation` must not perturb the RNG stream.
    #[test]
    fn benign_fault_entries_are_invisible(
        n in 2u64..32,
        seed in any::<u64>(),
    ) {
        let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(200_000);
        let mut plan = FaultPlan::new(seed);
        for i in 0..n {
            plan = plan.with_station(i, StationFaults::none());
        }
        let pristine = run_exact(&config, &adv, |_| {
            Box::new(PerStation::new(LeskProtocol::new(0.5)))
        });
        let faulty = run_exact_faulty(&config, &adv, &plan, |_| {
            Box::new(PerStation::new(LeskProtocol::new(0.5)))
        });
        assert_reports_identical(&pristine, &faulty, &format!("n={n} seed={seed}"));
    }

    /// A supervised election never drives the adversary past its
    /// `(T, 1−ε)` budget: every window of the trace stays within the
    /// allowance, even when the tiny watchdog fires real restarts.
    #[test]
    fn supervised_lesk_stays_within_jamming_budget(
        n in 2u64..24,
        seed in any::<u64>(),
    ) {
        let eps = Rate::from_f64(0.5);
        let t = 16u64;
        let adv = AdversarySpec::new(eps, t, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(50_000)
            .with_trace(true);
        // Watchdog 32 is far below typical election times, so restarts
        // genuinely occur in most drawn runs.
        let r = run_exact(&config, &adv, |_| Box::new(Supervisor::over_lesk(0.5, 32)));
        prop_assert!(r.leader_elected(), "n={n} seed={seed}");
        let jams: Vec<bool> =
            r.trace.as_ref().unwrap().iter().map(|p| p.jammed()).collect();
        assert_budget_respected(&jams, eps, t);
    }

    /// Supervision with a sane (large) watchdog is transparent: the
    /// supervised run equals the bare run on every observable.
    #[test]
    fn supervision_is_transparent_for_healthy_elections(
        n in 2u64..32,
        seed in any::<u64>(),
    ) {
        let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(200_000);
        let bare = run_exact(&config, &adv, |_| {
            Box::new(PerStation::new(LeskProtocol::new(0.5)))
        });
        let supervised =
            run_exact(&config, &adv, |_| Box::new(Supervisor::over_lesk(0.5, 1 << 20)));
        assert_reports_identical(&bare, &supervised, &format!("n={n} seed={seed}"));
    }
}

#[test]
fn crash_wipeout_is_classified_not_crashed() {
    // Every station crashes at slot 0: the run must hit the cap and be
    // classified DeadlineExceeded — never a panic, never a bogus winner.
    let mut plan = FaultPlan::new(9);
    for i in 0..8 {
        plan = plan.with_station(i, StationFaults::none().crash(0));
    }
    let config = SimConfig::new(8, CdModel::Strong).with_seed(9).with_max_slots(500);
    let r = run_exact_faulty(&config, &AdversarySpec::passive(), &plan, |_| {
        Box::new(PerStation::new(LeskProtocol::new(0.5)))
    });
    assert_eq!(r.outcome(), Outcome::DeadlineExceeded);
    assert!(r.cap_hit);
    assert_eq!(r.winner, None);
    assert_eq!(r.energy.total(), 0, "crashed stations spend no energy");
}
