//! End-to-end election matrix: protocol × adversary × CD model.
//!
//! The safety property everywhere: at most one leader; the liveness
//! property wherever the theory promises it: exactly one leader within
//! the slot cap.

use jamming_leader_election::prelude::*;

fn adversaries(eps: f64, t: u64, n: u64) -> Vec<AdversarySpec> {
    let r = Rate::from_f64(eps);
    vec![
        AdversarySpec::passive(),
        AdversarySpec::new(r, t, JamStrategyKind::Saturating),
        AdversarySpec::new(r, t, JamStrategyKind::PeriodicFront),
        AdversarySpec::new(r, t, JamStrategyKind::Random { prob: 0.8 }),
        AdversarySpec::new(r, t, JamStrategyKind::ReactiveNull),
        AdversarySpec::new(r, t, JamStrategyKind::Burst { on: t, off: t }),
        AdversarySpec::new(
            r,
            t,
            JamStrategyKind::AdaptiveEstimator { n, protocol_eps: eps, band: 3.0, initial_u: 0.0 },
        ),
    ]
}

#[test]
fn lesk_elects_against_every_adversary_strong_cd() {
    let n = 256u64;
    let eps = 0.4;
    for (ai, adv) in adversaries(eps, 32, n).into_iter().enumerate() {
        for seed in 0..5u64 {
            let config = SimConfig::new(n, CdModel::Strong)
                .with_seed(seed * 31 + ai as u64)
                .with_max_slots(5_000_000);
            let r = run_cohort(&config, &adv, || LeskProtocol::new(eps));
            assert!(r.leader_elected(), "LESK failed vs {} seed {seed}", adv.label());
            assert_eq!(r.leaders.len(), 1);
        }
    }
}

#[test]
fn lesu_elects_against_every_adversary_strong_cd() {
    let n = 200u64;
    let eps = 0.5;
    for (ai, adv) in adversaries(eps, 16, n).into_iter().enumerate() {
        for seed in 0..3u64 {
            let config = SimConfig::new(n, CdModel::Strong)
                .with_seed(seed * 37 + ai as u64)
                .with_max_slots(50_000_000);
            let r = run_cohort(&config, &adv, LesuProtocol::new);
            assert!(r.leader_elected(), "LESU failed vs {} seed {seed}", adv.label());
        }
    }
}

#[test]
fn lewk_full_election_weak_cd_matrix() {
    let n = 12u64;
    let eps = 0.5;
    for (ai, adv) in adversaries(eps, 8, n).into_iter().enumerate() {
        for seed in 0..3u64 {
            let config = SimConfig::new(n, CdModel::Weak)
                .with_seed(seed * 41 + ai as u64)
                .with_max_slots(10_000_000)
                .with_stop(StopRule::AllTerminated);
            let r = run_exact(&config, &adv, |_| Box::new(lewk(eps)));
            assert!(r.all_terminated, "LEWK stalled vs {} seed {seed}", adv.label());
            assert_eq!(r.leaders.len(), 1, "leader count vs {} seed {seed}", adv.label());
            assert!(!r.timed_out);
        }
    }
}

#[test]
fn lewu_full_election_weak_cd() {
    let n = 8u64;
    for seed in 0..3u64 {
        let adv = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Weak)
            .with_seed(seed)
            .with_max_slots(50_000_000)
            .with_stop(StopRule::AllTerminated);
        let r = run_exact(&config, &adv, |_| Box::new(lewu()));
        assert!(r.all_terminated && r.leaders.len() == 1, "LEWU failed seed {seed}");
    }
}

#[test]
fn baselines_elect_on_clean_channel() {
    let n = 256u64;
    let config = SimConfig::new(n, CdModel::Strong).with_seed(5).with_max_slots(2_000_000);
    let adv = AdversarySpec::passive();
    assert!(run_cohort(&config, &adv, BackoffProtocol::new).leader_elected());
    assert!(run_cohort(&config, &adv, WillardProtocol::new).leader_elected());
    assert!(run_cohort(&config, &adv, || ArssMacProtocol::new(0.2)).leader_elected());
}

#[test]
fn exact_engine_runs_uniform_protocols_per_station() {
    // The same protocols, run per-station: no shared state, yet the
    // election still works (uniformity is a property, not a mechanism).
    let n = 64u64;
    for seed in 0..5u64 {
        let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(2_000_000);
        let r = run_exact(&config, &AdversarySpec::passive(), |_| {
            Box::new(jamming_leader_election::engine::PerStation::new(LeskProtocol::new(0.5)))
        });
        assert!(r.leader_elected());
        assert_eq!(r.leaders.len(), 1);
        assert_eq!(r.leaders[0], r.winner.unwrap());
    }
}

#[test]
fn no_cd_channel_is_supported_but_hard() {
    // Under no-CD the backoff baseline (which never reads the channel)
    // still elects; LESK cannot use its Null signal and is expected to
    // struggle — but safety must hold.
    let n = 64u64;
    let config = SimConfig::new(n, CdModel::NoCd).with_seed(3).with_max_slots(500_000);
    let adv = AdversarySpec::passive();
    let r = run_cohort(&config, &adv, BackoffProtocol::new);
    assert!(r.leader_elected());
    let r2 = run_cohort(&config, &adv, || LeskProtocol::new(0.5));
    assert!(r2.leaders.len() <= 1);
}
