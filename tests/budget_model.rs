//! The adversary model, verified end-to-end: no window of any simulated
//! run ever exceeds the `(T, 1−ε)` allowance — checked against full
//! traces with an independent brute-force referee.

use jamming_leader_election::prelude::*;

fn referee(jams: &[bool], eps: Rate, t: u64) {
    let prefix: Vec<u64> = std::iter::once(0)
        .chain(jams.iter().scan(0u64, |acc, &j| {
            *acc += j as u64;
            Some(*acc)
        }))
        .collect();
    let n = jams.len();
    for s in 0..n {
        // Windows ending at each e >= s + T - 1.
        for e in (s + t as usize - 1).min(n)..n {
            let w = (e - s + 1) as u64;
            if w < t {
                continue;
            }
            let count = prefix[e + 1] - prefix[s];
            assert!(
                count <= eps.allowance(w),
                "window [{s},{e}] has {count} > {}",
                eps.allowance(w)
            );
        }
    }
}

fn jams_of(trace: &jamming_leader_election::radio::Trace) -> Vec<bool> {
    trace.iter().map(|p| p.jammed()).collect()
}

#[test]
fn saturating_jammer_never_violates_the_window_bound() {
    for (p, q, t) in [(1u64, 2u64, 4u64), (1, 4, 16), (7, 10, 8)] {
        let eps = Rate::from_ratio(p, q);
        let spec = AdversarySpec::new(eps, t, JamStrategyKind::Saturating);
        let config =
            SimConfig::new(64, CdModel::Strong).with_seed(5).with_max_slots(2_000).with_trace(true);
        // Always-collide workload so the run never ends early.
        #[derive(Clone)]
        struct Collide;
        impl jamming_leader_election::engine::UniformProtocol for Collide {
            fn tx_prob(&mut self, _: u64) -> f64 {
                1.0
            }
            fn on_state(&mut self, _: u64, _: ChannelState) {}
        }
        let r = run_cohort(&config, &spec, || Collide);
        let jams = jams_of(r.trace.as_ref().unwrap());
        assert_eq!(jams.len(), 2_000);
        referee(&jams, eps, t);
        // And the jammer actually uses a meaningful share of its budget.
        // At small T the *admissible* density is strictly below (1-eps)
        // — odd-length windows bind (e.g. T=4, eps=1/2: any length-5
        // window allows only 2 jams, capping density at 2/5) — so the
        // floor here is deliberately loose; the tight check lives in the
        // jam_fraction tests at larger T.
        let total: usize = jams.iter().filter(|&&j| j).count();
        assert!(
            total as f64 >= 0.4 * eps.allowance(2_000) as f64,
            "only {total} jams used of allowance {}",
            eps.allowance(2_000)
        );
    }
}

#[test]
fn adaptive_jammer_respects_budget_too() {
    let eps = Rate::from_f64(0.3);
    let spec = AdversarySpec::new(
        eps,
        32,
        JamStrategyKind::AdaptiveEstimator { n: 256, protocol_eps: 0.3, band: 4.0, initial_u: 0.0 },
    );
    let config = SimConfig::new(256, CdModel::Strong)
        .with_seed(8)
        .with_max_slots(1_000_000)
        .with_trace(true);
    let r = run_cohort(&config, &spec, || LeskProtocol::new(0.3));
    assert!(r.leader_elected());
    referee(&jams_of(r.trace.as_ref().unwrap()), eps, 32);
}

#[test]
fn jammed_slots_read_as_collisions() {
    // Every jammed slot in a trace must be observed as Collision — the
    // indistinguishability axiom of the model.
    let spec = AdversarySpec::new(Rate::from_f64(0.5), 8, JamStrategyKind::Saturating);
    let config =
        SimConfig::new(32, CdModel::Strong).with_seed(3).with_max_slots(100_000).with_trace(true);
    let r = run_cohort(&config, &spec, || LeskProtocol::new(0.5));
    for slot in r.trace.as_ref().unwrap().iter() {
        if slot.jammed() {
            assert_eq!(slot.state(), ChannelState::Collision);
            assert!(!slot.clean_single());
        }
    }
    assert!(r.counts.jammed > 0, "jammer must have fired");
}

#[test]
fn adversary_cannot_create_singles_or_nulls() {
    // With all stations silent and a saturating jammer, the channel shows
    // only Nulls (unjammed) and Collisions (jammed) — never a Single.
    #[derive(Clone)]
    struct Silent;
    impl jamming_leader_election::engine::UniformProtocol for Silent {
        fn tx_prob(&mut self, _: u64) -> f64 {
            0.0
        }
        fn on_state(&mut self, _: u64, _: ChannelState) {}
    }
    let spec = AdversarySpec::new(Rate::from_f64(0.5), 4, JamStrategyKind::Saturating);
    let config =
        SimConfig::new(16, CdModel::Strong).with_seed(1).with_max_slots(5_000).with_trace(true);
    let r = run_cohort(&config, &spec, || Silent);
    assert_eq!(r.counts.singles, 0);
    assert_eq!(r.resolved_at, None);
    for slot in r.trace.as_ref().unwrap().iter() {
        match slot.state() {
            ChannelState::Null => assert!(!slot.jammed()),
            ChannelState::Collision => assert!(slot.jammed()),
            ChannelState::Single => panic!("adversary created a Single"),
        }
    }
}
