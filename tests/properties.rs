//! Property-based end-to-end tests: safety and liveness hold across
//! randomly drawn configurations, not just hand-picked ones.

use jamming_leader_election::prelude::*;
use proptest::prelude::*;

fn arbitrary_adversary(eps: f64, t: u64, n: u64) -> impl Strategy<Value = AdversarySpec> {
    let r = Rate::from_f64(eps);
    prop_oneof![
        Just(AdversarySpec::passive()),
        Just(AdversarySpec::new(r, t, JamStrategyKind::Saturating)),
        Just(AdversarySpec::new(r, t, JamStrategyKind::PeriodicFront)),
        Just(AdversarySpec::new(r, t, JamStrategyKind::ReactiveNull)),
        (0.1f64..0.9).prop_map(move |p| AdversarySpec::new(
            r,
            t,
            JamStrategyKind::Random { prob: p }
        )),
        Just(AdversarySpec::new(
            r,
            t,
            JamStrategyKind::AdaptiveEstimator { n, protocol_eps: eps, band: 3.0, initial_u: 0.0 }
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LESK elects exactly one leader for any drawn configuration.
    #[test]
    fn lesk_always_elects(
        n in 1u64..600,
        seed in any::<u64>(),
        eps_pct in 15u32..90,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let adv = AdversarySpec::new(
            Rate::from_f64(eps), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(20_000_000);
        let r = run_cohort(&config, &adv, || LeskProtocol::new(eps));
        prop_assert!(r.leader_elected(), "n={n} eps={eps} seed={seed}");
        prop_assert_eq!(r.leaders.len(), 1);
        prop_assert!(r.resolved_at.is_some());
        prop_assert!(r.winner.unwrap() < n);
    }

    /// LEWK terminates with exactly one leader for any drawn adversary
    /// (weak-CD full election; Lemma 3.1 needs n >= 3).
    #[test]
    fn lewk_safety_and_liveness(
        n in 3u64..24,
        seed in any::<u64>(),
        adv in arbitrary_adversary(0.5, 8, 16),
    ) {
        let config = SimConfig::new(n, CdModel::Weak)
            .with_seed(seed)
            .with_max_slots(20_000_000)
            .with_stop(StopRule::AllTerminated);
        let r = run_exact(&config, &adv, |_| Box::new(lewk(0.5)));
        prop_assert!(r.all_terminated, "n={n} adv={} seed={seed}", adv.label());
        prop_assert_eq!(r.leaders.len(), 1);
        // The leader is the station that transmitted the first clean
        // Single (which is in C1).
        prop_assert_eq!(r.leaders[0], r.winner.unwrap());
    }

    /// The first clean Single's slot is consistent between the report and
    /// the trace, and no clean Single precedes it.
    #[test]
    fn resolution_slot_is_the_first_clean_single(
        n in 2u64..256,
        seed in any::<u64>(),
    ) {
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(5_000_000)
            .with_trace(true);
        let adv = AdversarySpec::new(
            Rate::from_f64(0.4), 8, JamStrategyKind::Saturating);
        let r = run_cohort(&config, &adv, || LeskProtocol::new(0.4));
        prop_assert!(r.leader_elected());
        let trace = r.trace.as_ref().unwrap();
        prop_assert_eq!(trace.first_clean_single(), r.resolved_at.map(|s| s as usize));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fault-plan generators draw from tagged, independent RNG
    /// streams (`TAG_CRASH`/`TAG_WAKE`/`TAG_DEAF`), so composing them in
    /// any order yields the same plan. The canonical JSON form is the
    /// witness: byte-equal serialization means byte-equal plans.
    #[test]
    fn fault_generators_compose_order_independently(
        seed in any::<u64>(),
        n in 1u64..64,
        crash_pct in 0u32..=100,
        deaf_pct in 0u32..=100,
        stagger in 0u64..4_096,
        window in 1u64..8_192,
    ) {
        let crash = crash_pct as f64 / 100.0;
        let deaf = deaf_pct as f64 / 100.0;
        let a = FaultPlan::new(seed)
            .with_random_crashes(n, crash, window)
            .with_staggered_wakeups(n, stagger)
            .with_random_deafness(n, deaf, window, 64);
        let b = FaultPlan::new(seed)
            .with_random_deafness(n, deaf, window, 64)
            .with_staggered_wakeups(n, stagger)
            .with_random_crashes(n, crash, window);
        let c = FaultPlan::new(seed)
            .with_staggered_wakeups(n, stagger)
            .with_random_crashes(n, crash, window)
            .with_random_deafness(n, deaf, window, 64);
        let ja = serde_json::to_string(&a).unwrap();
        prop_assert_eq!(&ja, &serde_json::to_string(&b).unwrap());
        prop_assert_eq!(&ja, &serde_json::to_string(&c).unwrap());
        // Recoveries post-process existing crashes, so they commute with
        // the other generators as long as they follow the crashes.
        let ar = serde_json::to_string(
            &a.with_recoveries(100)).unwrap();
        let br = serde_json::to_string(
            &b.with_recoveries(100)).unwrap();
        prop_assert_eq!(ar, br);
    }

    /// Churn generators share the stream discipline (`TAG_JOIN`/
    /// `TAG_LEAVE`), and a churn plan's canonical JSON round-trips to the
    /// same bytes — the property the orchestrator's cache fingerprints
    /// rely on.
    #[test]
    fn churn_plan_json_is_canonical_and_order_independent(
        seed in any::<u64>(),
        n in 1u64..64,
        join_pct in 0u32..=100,
        leave_pct in 0u32..=100,
        window in 1u64..8_192,
    ) {
        let join = join_pct as f64 / 100.0;
        let leave = leave_pct as f64 / 100.0;
        let a = ChurnPlan::new(seed)
            .with_staggered_joins(n, join, window)
            .with_random_leaves(n, leave, window);
        let b = ChurnPlan::new(seed)
            .with_random_leaves(n, leave, window)
            .with_staggered_joins(n, join, window)
            .with_rejoins(64);
        // Round trip: serialize -> deserialize -> serialize is a fixed
        // point (canonical form), and parsing reproduces the plan.
        let ja = serde_json::to_string(&a).unwrap();
        let back: ChurnPlan = serde_json::from_str(&ja).unwrap();
        prop_assert_eq!(&ja, &serde_json::to_string(&back).unwrap());
        let jb = serde_json::to_string(&b).unwrap();
        let back_b: ChurnPlan = serde_json::from_str(&jb).unwrap();
        prop_assert_eq!(&jb, &serde_json::to_string(&back_b).unwrap());
        // Order independence of the generator streams: rebuild `b`'s
        // schedule in the opposite call order.
        let b2 = ChurnPlan::new(seed)
            .with_staggered_joins(n, join, window)
            .with_random_leaves(n, leave, window)
            .with_rejoins(64);
        prop_assert_eq!(jb, serde_json::to_string(&b2).unwrap());
    }

    /// A lease-wrapped cohort under churn converges: once the churn
    /// schedule is exhausted, the ledger ends with at most one live
    /// believer, and with exactly one whenever any station is present.
    #[test]
    fn leases_converge_after_churn(
        seed in any::<u64>(),
        churn_pct in 0u32..=60,
    ) {
        use std::sync::Arc;
        let n = 16u64;
        let horizon = 12_288u64;
        let eps = 0.5;
        let churn = churn_pct as f64 / 100.0;
        let plan = ChurnPlan::new(seed ^ 0xC4C4)
            .with_staggered_joins(n, churn, horizon / 8)
            .with_random_leaves(n, churn, horizon / 4)
            .with_rejoins(horizon / 8);
        let adv = AdversarySpec::new(
            Rate::from_f64(eps), 32, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(horizon)
            .with_stop(StopRule::Horizon);
        let ledger = LeaderLedger::new(512);
        let factory = {
            let ledger = Arc::clone(&ledger);
            move |i: u64| -> Box<dyn Protocol> {
                Box::new(LeaseProtocol::over_supervised_lesk(
                    i, eps, 16_384,
                    LeaseConfig::new(8, 10, 512),
                    Arc::clone(&ledger),
                ))
            }
        };
        let mut split = SplitBrainObserver::new(Arc::clone(&ledger));
        let fplan = plan.overlay(&FaultPlan::empty());
        let mut stations = jamming_leader_election::engine::FaultyStations::new(
            &config, &fplan, factory);
        let r = jamming_leader_election::engine::SimCore::new(&config, &adv)
            .observe(&mut split)
            .run(&mut stations);
        prop_assert_eq!(r.slots, horizon);
        prop_assert!(!r.timed_out && !r.cap_hit);
        prop_assert!(r.split_brain.tracked);
        let live = plan.live_at(horizon - 1, n);
        if live > 0 {
            prop_assert_eq!(
                r.split_brain.believers.len(), 1,
                "live={} split={:?} seed={}", live, r.split_brain, seed);
        } else {
            prop_assert!(r.split_brain.believers.is_empty());
        }
    }
}
