//! Property-based end-to-end tests: safety and liveness hold across
//! randomly drawn configurations, not just hand-picked ones.

use jamming_leader_election::prelude::*;
use proptest::prelude::*;

fn arbitrary_adversary(eps: f64, t: u64, n: u64) -> impl Strategy<Value = AdversarySpec> {
    let r = Rate::from_f64(eps);
    prop_oneof![
        Just(AdversarySpec::passive()),
        Just(AdversarySpec::new(r, t, JamStrategyKind::Saturating)),
        Just(AdversarySpec::new(r, t, JamStrategyKind::PeriodicFront)),
        Just(AdversarySpec::new(r, t, JamStrategyKind::ReactiveNull)),
        (0.1f64..0.9).prop_map(move |p| AdversarySpec::new(
            r,
            t,
            JamStrategyKind::Random { prob: p }
        )),
        Just(AdversarySpec::new(
            r,
            t,
            JamStrategyKind::AdaptiveEstimator { n, protocol_eps: eps, band: 3.0, initial_u: 0.0 }
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LESK elects exactly one leader for any drawn configuration.
    #[test]
    fn lesk_always_elects(
        n in 1u64..600,
        seed in any::<u64>(),
        eps_pct in 15u32..90,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let adv = AdversarySpec::new(
            Rate::from_f64(eps), 16, JamStrategyKind::Saturating);
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(20_000_000);
        let r = run_cohort(&config, &adv, || LeskProtocol::new(eps));
        prop_assert!(r.leader_elected(), "n={n} eps={eps} seed={seed}");
        prop_assert_eq!(r.leaders.len(), 1);
        prop_assert!(r.resolved_at.is_some());
        prop_assert!(r.winner.unwrap() < n);
    }

    /// LEWK terminates with exactly one leader for any drawn adversary
    /// (weak-CD full election; Lemma 3.1 needs n >= 3).
    #[test]
    fn lewk_safety_and_liveness(
        n in 3u64..24,
        seed in any::<u64>(),
        adv in arbitrary_adversary(0.5, 8, 16),
    ) {
        let config = SimConfig::new(n, CdModel::Weak)
            .with_seed(seed)
            .with_max_slots(20_000_000)
            .with_stop(StopRule::AllTerminated);
        let r = run_exact(&config, &adv, |_| Box::new(lewk(0.5)));
        prop_assert!(r.all_terminated, "n={n} adv={} seed={seed}", adv.label());
        prop_assert_eq!(r.leaders.len(), 1);
        // The leader is the station that transmitted the first clean
        // Single (which is in C1).
        prop_assert_eq!(r.leaders[0], r.winner.unwrap());
    }

    /// The first clean Single's slot is consistent between the report and
    /// the trace, and no clean Single precedes it.
    #[test]
    fn resolution_slot_is_the_first_clean_single(
        n in 2u64..256,
        seed in any::<u64>(),
    ) {
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(5_000_000)
            .with_trace(true);
        let adv = AdversarySpec::new(
            Rate::from_f64(0.4), 8, JamStrategyKind::Saturating);
        let r = run_cohort(&config, &adv, || LeskProtocol::new(0.4));
        prop_assert!(r.leader_elected());
        let trace = r.trace.as_ref().unwrap();
        prop_assert_eq!(trace.first_clean_single(), r.resolved_at.map(|s| s as usize));
    }
}
