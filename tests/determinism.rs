//! Reproducibility: a seed fully determines a run, on both engines, with
//! and without adversaries — the property every experiment in
//! EXPERIMENTS.md relies on.

use jamming_leader_election::prelude::*;

fn spec() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.4), 16, JamStrategyKind::Saturating)
}

#[test]
fn cohort_runs_are_bit_identical() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let config = SimConfig::new(500, CdModel::Strong)
            .with_seed(seed)
            .with_max_slots(5_000_000)
            .with_trace(true);
        let a = run_cohort(&config, &spec(), || LeskProtocol::new(0.4));
        let b = run_cohort(&config, &spec(), || LeskProtocol::new(0.4));
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.resolved_at, b.resolved_at);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.energy, b.energy);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(ta.estimates, tb.estimates);
        assert!(ta.iter().zip(tb.iter()).all(|(x, y)| x == y));
    }
}

#[test]
fn exact_runs_are_bit_identical() {
    let config = SimConfig::new(24, CdModel::Weak)
        .with_seed(9)
        .with_max_slots(5_000_000)
        .with_stop(StopRule::AllTerminated);
    let a = run_exact(&config, &spec(), |_| Box::new(lewk(0.4)));
    let b = run_exact(&config, &spec(), |_| Box::new(lewk(0.4)));
    assert_eq!(a.slots, b.slots);
    assert_eq!(a.leaders, b.leaders);
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.counts, b.counts);
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        let config = SimConfig::new(500, CdModel::Strong).with_seed(seed).with_max_slots(5_000_000);
        run_cohort(&config, &spec(), || LeskProtocol::new(0.4))
    };
    // At least one of 8 consecutive seeds must produce a different
    // election time (all-equal would indicate a seeding bug).
    let base = mk(100).slots;
    assert!((101..108).any(|s| mk(s).slots != base), "8 seeds produced identical runs");
}

#[test]
fn monte_carlo_is_order_independent() {
    // Rayon scheduling must not leak into results: two runs of the same
    // Monte Carlo return identical vectors.
    let mc = MonteCarlo::new(64, 5);
    let f = |seed: u64| {
        let config = SimConfig::new(128, CdModel::Strong).with_seed(seed).with_max_slots(5_000_000);
        run_cohort(&config, &spec(), || LeskProtocol::new(0.4)).slots
    };
    assert_eq!(mc.run(f), mc.run(f));
}
