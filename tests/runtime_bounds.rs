//! Smoke checks of the headline runtime claims (the full sweeps live in
//! the E1–E9 experiments; these are fast invariant guards for CI).

use jamming_leader_election::prelude::*;
use jamming_leader_election::protocols::math;

#[test]
fn lesk_scales_logarithmically_not_linearly() {
    // Quadrupling n by 256x must grow the election time by far less than
    // 256x (log growth ⇒ roughly +8/(eps/8) slots per 256x).
    let eps = 0.5;
    let adv = AdversarySpec::new(Rate::from_f64(eps), 32, JamStrategyKind::Saturating);
    let mc = MonteCarlo::new(30, 77);
    let med = |n: u64| {
        let xs = mc.collect_f64(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(10_000_000);
            run_cohort(&config, &adv, || LeskProtocol::new(eps)).slots as f64
        });
        jamming_leader_election::analysis::percentile(&xs, 0.5)
    };
    let small = med(1 << 6);
    let large = med(1 << 14);
    assert!(large > small, "more stations must take longer");
    assert!(
        large < small * 6.0,
        "256x stations may only cost a small factor (got {small} -> {large})"
    );
}

#[test]
fn lesk_beats_the_theorem_envelope() {
    // Median election time must sit below a generous constant times the
    // Theorem 2.6 shape across a parameter grid.
    let mc = MonteCarlo::new(20, 3);
    for &(n, eps, t) in &[(256u64, 0.5f64, 16u64), (1024, 0.3, 64), (4096, 0.7, 16)] {
        let adv = AdversarySpec::new(Rate::from_f64(eps), t, JamStrategyKind::Saturating);
        let xs = mc.collect_f64(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(50_000_000);
            run_cohort(&config, &adv, || LeskProtocol::new(eps)).slots as f64
        });
        let med = jamming_leader_election::analysis::percentile(&xs, 0.5);
        let envelope = 100.0 * math::lesk_runtime_shape(n, eps, t);
        assert!(med <= envelope, "n={n} eps={eps} T={t}: median {med} above envelope {envelope}");
    }
}

#[test]
fn lower_bound_adversary_forces_at_least_t_ish_time() {
    // With T = 5000 and eps = 1/2, the periodic-front jammer blacks out
    // the first half of each block; electing faster than ~T/2 slots would
    // require the impossible.
    let t = 5_000u64;
    let n = 64u64;
    let adv = AdversarySpec::new(Rate::from_f64(0.5), t, JamStrategyKind::PeriodicFront);
    let mc = MonteCarlo::new(10, 44);
    let xs = mc.collect_f64(|seed| {
        let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(50_000_000);
        let r = run_cohort(&config, &adv, || LeskProtocol::new(0.5));
        assert!(r.leader_elected());
        r.slots as f64
    });
    // LESK needs ~log2(n)/(eps/8) = 96 useful slots to climb; the first
    // 2500 slots are fully jammed, so no election can beat slot 2500...
    // unless the climb finishes inside the jammed prefix — it cannot,
    // because jammed slots are collisions that *raise* u past log n.
    // What the lower bound really forbids: electing with fewer than
    // Omega(log n) *unjammed* slots. Check the weaker, airtight form.
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min >= 96.0, "election in {min} slots would beat the information-theoretic minimum");
    // And the median must exceed the jammed prefix length.
    let med = jamming_leader_election::analysis::percentile(&xs, 0.5);
    assert!(med >= 2_500.0, "median {med} inside the fully-jammed prefix");
}

#[test]
fn estimation_is_logarithmic_in_n() {
    // Estimation(2) finishes in O(max{log n, T}) slots (Lemma 2.8).
    let mc = MonteCarlo::new(20, 19);
    for k in [8u32, 16] {
        let n = 1u64 << k;
        let xs = mc.collect_f64(|seed| {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(1_000_000);
            run_cohort(&config, &AdversarySpec::passive(), EstimationProtocol::paper).slots as f64
        });
        let p90 = jamming_leader_election::analysis::percentile(&xs, 0.9);
        assert!(p90 <= 64.0 * k as f64, "Estimation at n=2^{k} took {p90} slots (cap {})", 64 * k);
    }
}
