//! Statistical agreement between the cohort and the exact engine — the
//! cohort engine's O(1)-per-slot shortcut must not change the dynamics.

use jamming_leader_election::engine::PerStation;
use jamming_leader_election::prelude::*;

fn means(n: u64, trials: u64) -> (f64, f64) {
    let adv = AdversarySpec::new(Rate::from_f64(0.5), 16, JamStrategyKind::Saturating);
    let mc = MonteCarlo::new(trials, 1000);
    let cohort = mc.collect_f64(|seed| {
        let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(5_000_000);
        run_cohort(&config, &adv, || LeskProtocol::new(0.5)).slots as f64
    });
    let exact = mc.collect_f64(|seed| {
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(seed ^ 0x5555_5555)
            .with_max_slots(5_000_000);
        run_exact(&config, &adv, |_| Box::new(PerStation::new(LeskProtocol::new(0.5)))).slots as f64
    });
    let m = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    (m(&cohort), m(&exact))
}

#[test]
fn election_time_means_agree_within_noise() {
    for n in [4u64, 32, 128] {
        let (c, e) = means(n, 120);
        let ratio = c / e;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "n={n}: cohort mean {c} vs exact mean {e} (ratio {ratio})"
        );
    }
}

#[test]
fn channel_statistics_match_the_binomial_law() {
    // State fractions over a long non-resolving exact-engine run must
    // match the closed-form binomial probabilities (and therefore the
    // cohort engine, which samples that law directly).
    use jamming_leader_election::engine::{Action, Protocol, Status};
    use jamming_leader_election::radio::Observation;
    use rand::{Rng, RngCore};

    /// Transmits with fixed probability forever; never terminates.
    struct NonTerminating(f64);
    impl Protocol for NonTerminating {
        fn act(&mut self, _: u64, rng: &mut dyn RngCore) -> Action {
            if rng.gen_bool(self.0) {
                Action::Transmit
            } else {
                Action::Listen
            }
        }
        fn feedback(&mut self, _: u64, _: bool, _: Observation) {}
        fn status(&self) -> Status {
            Status::Running
        }
    }

    let n = 64u64;
    let p = 0.02; // E[k] = 1.28: rich mix of Null/Single/Collision
    let slots = 30_000u64;
    let config = SimConfig::new(n, CdModel::Weak)
        .with_seed(12)
        .with_max_slots(slots)
        .with_stop(StopRule::AllTerminated);
    let exact = run_exact(&config, &AdversarySpec::passive(), |_| Box::new(NonTerminating(p)));
    assert_eq!(exact.slots, slots);
    let p_null = jamming_leader_election::protocols::math::p_null(n, p);
    let p_single = jamming_leader_election::protocols::math::p_single(n, p);
    let total = exact.slots as f64;
    let null_frac = exact.counts.nulls as f64 / total;
    let single_frac = exact.counts.singles as f64 / total;
    assert!((null_frac - p_null).abs() < 0.02, "null {null_frac} vs {p_null}");
    assert!((single_frac - p_single).abs() < 0.02, "single {single_frac} vs {p_single}");
}

#[test]
fn winner_distribution_is_uniformish_in_exact_engine() {
    // Symmetry: each of 8 stations should win a fair share of elections.
    let n = 8u64;
    let trials = 400u64;
    let mc = MonteCarlo::new(trials, 9_999);
    let winners = mc.run(|seed| {
        let config = SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(1_000_000);
        let r = run_exact(&config, &AdversarySpec::passive(), |_| {
            Box::new(PerStation::new(LeskProtocol::new(0.5)))
        });
        r.winner.unwrap()
    });
    let mut counts = [0u64; 8];
    for w in winners {
        counts[w as usize] += 1;
    }
    let expected = trials as f64 / 8.0;
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64) > expected * 0.4 && (c as f64) < expected * 1.9,
            "station {i} won {c} of {trials} (expected ≈ {expected})"
        );
    }
}
