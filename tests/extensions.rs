//! Integration tests for the §4 building-block extensions, exercised
//! through the public facade.

use jamming_leader_election::prelude::*;
use jamming_leader_election::protocols::{
    run_fair_use, run_k_selection, targeted_tdma_jammer, SizeApproxProtocol,
};

#[test]
fn k_selection_across_adversaries() {
    let eps = 0.5;
    let n = 512u64;
    let k = 12u64;
    for (name, adv) in [
        ("none", AdversarySpec::passive()),
        ("saturating", AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::Saturating)),
        ("periodic", AdversarySpec::new(Rate::from_f64(eps), 16, JamStrategyKind::PeriodicFront)),
    ] {
        for seed in 0..4u64 {
            let config =
                SimConfig::new(n, CdModel::Strong).with_seed(seed).with_max_slots(2_000_000);
            let r = run_k_selection(&config, &adv, k, eps);
            assert!(r.completed, "{name} seed {seed}");
            assert_eq!(r.election_slots.len() as u64, k);
            // Leaders are crowned at distinct slots in order.
            assert!(r.election_slots.windows(2).all(|w| w[1] > w[0]));
        }
    }
}

#[test]
fn k_selection_amortizes() {
    // Total slots for k leaders must be far below k independent runs.
    let eps = 0.5;
    let n = 1024u64;
    let config = SimConfig::new(n, CdModel::Strong).with_seed(7).with_max_slots(2_000_000);
    let one = run_k_selection(&config, &AdversarySpec::passive(), 1, eps);
    let many = run_k_selection(&config, &AdversarySpec::passive(), 20, eps);
    assert!(many.completed);
    assert!(
        (many.slots as f64) < 20.0 * 0.5 * one.slots as f64,
        "20 leaders in {} slots vs one in {}",
        many.slots,
        one.slots
    );
}

#[test]
fn size_approx_is_monotone_in_n() {
    // Estimates must grow with the true n (monotone up to noise).
    let eps = 0.5;
    let mut prev = 0.0;
    for k in [6u32, 10, 14] {
        let n = 1u64 << k;
        let horizon = 400 + 40 * k as u64;
        let config = SimConfig::new(n, CdModel::Strong)
            .with_seed(3)
            .with_max_slots(horizon + 10)
            .with_continue_past_singles(true);
        let (_, proto) = run_cohort_with(&config, &AdversarySpec::passive(), || {
            SizeApproxProtocol::new(eps, horizon)
        });
        let est = proto.estimate_n();
        assert!(est > prev, "estimate must grow with n (n={n}, est={est})");
        prev = est;
    }
}

#[test]
fn fair_use_targeting_starves_exactly_the_victim() {
    let n = 8u64;
    let eps = 0.5;
    let base = AdversarySpec::new(Rate::from_f64(eps), 4, JamStrategyKind::Saturating);
    for victim in 0..n {
        let adv = targeted_tdma_jammer(&base, n, victim);
        let config = SimConfig::new(n, CdModel::Strong).with_seed(11).with_max_slots(1_000_000);
        let r = run_fair_use(&config, &adv, 25, eps);
        assert!(r.setup_completed);
        for (rank, &d) in r.deliveries.iter().enumerate() {
            if rank as u64 == victim {
                assert_eq!(d, 0, "victim {victim} must be starved");
            } else {
                assert_eq!(d, 25, "rank {rank} must be untouched (victim {victim})");
            }
        }
    }
}

#[test]
fn oracle_negative_control_through_facade() {
    use jamming_leader_election::engine::run_cohort_against_oracle;
    let config = SimConfig::new(128, CdModel::Strong).with_seed(2).with_max_slots(50_000);
    let r = run_cohort_against_oracle(&config, Rate::from_f64(0.1), 32, || LeskProtocol::new(0.1));
    assert!(r.timed_out, "oracle must block");
    assert_eq!(r.counts.singles, 0);
    // Identical budget, fair rules: election succeeds.
    let fair = AdversarySpec::new(Rate::from_f64(0.1), 32, JamStrategyKind::Saturating);
    let ok = run_cohort(&config, &fair, || LeskProtocol::new(0.1));
    assert!(ok.leader_elected());
}
