//! Section 3's simulation claim, verified: "Using such a modified
//! Broadcast function we can deploy our algorithms for strong-CD … in
//! weak-CD and they will give the same result until the first Single."

use jamming_leader_election::prelude::*;

fn spec() -> AdversarySpec {
    AdversarySpec::new(Rate::from_f64(0.4), 16, JamStrategyKind::Saturating)
}

#[test]
fn lesk_runs_identically_under_weak_and_strong_cd_until_first_single() {
    for seed in [1u64, 7, 42, 1234] {
        let mk =
            |cd| SimConfig::new(300, cd).with_seed(seed).with_max_slots(5_000_000).with_trace(true);
        let strong = run_cohort(&mk(CdModel::Strong), &spec(), || LeskProtocol::new(0.4));
        let weak = run_cohort(&mk(CdModel::Weak), &spec(), || LeskProtocol::new(0.4));
        assert_eq!(strong.slots, weak.slots, "seed {seed}");
        assert_eq!(strong.resolved_at, weak.resolved_at);
        assert_eq!(strong.counts, weak.counts);
        let (ts, tw) = (strong.trace.unwrap(), weak.trace.unwrap());
        assert_eq!(ts.estimates, tw.estimates, "u trajectories must match exactly");
        assert!(ts.iter().zip(tw.iter()).all(|(a, b)| a == b));
    }
}

#[test]
fn lesu_runs_identically_under_weak_and_strong_cd() {
    for seed in [3u64, 99] {
        let mk = |cd| SimConfig::new(150, cd).with_seed(seed).with_max_slots(50_000_000);
        let strong = run_cohort(&mk(CdModel::Strong), &spec(), LesuProtocol::new);
        let weak = run_cohort(&mk(CdModel::Weak), &spec(), LesuProtocol::new);
        assert_eq!(strong.slots, weak.slots, "seed {seed}");
        assert_eq!(strong.resolved_at, weak.resolved_at);
    }
}

#[test]
fn only_leader_knowledge_differs() {
    // The *difference* between the models is exactly who ends up knowing:
    // strong-CD yields a leader immediately, weak-CD needs Notification.
    let mk = |cd| SimConfig::new(64, cd).with_seed(5).with_max_slots(5_000_000);
    let strong = run_cohort(&mk(CdModel::Strong), &spec(), || LeskProtocol::new(0.4));
    let weak = run_cohort(&mk(CdModel::Weak), &spec(), || LeskProtocol::new(0.4));
    assert_eq!(strong.leaders.len(), 1, "strong-CD winner sees its own Single");
    assert!(weak.leaders.is_empty(), "weak-CD winner does not know it won");
    assert_eq!(strong.resolved_at, weak.resolved_at);
}
